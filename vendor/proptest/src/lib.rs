//! Offline stand-in for the `proptest` crate.
//!
//! The build environment resolves crates without network access, so the
//! real `proptest` cannot be downloaded. This crate re-implements the
//! subset of its API the workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! - [`Strategy`](strategy::Strategy) with `prop_map`, implemented for
//!   integer/float ranges and tuples,
//! - [`collection::btree_map`] / [`collection::vec`] and [`option::of`].
//!
//! Semantics match proptest's: each test body runs for `cases` random
//! inputs; a failed `prop_assert*` fails the test with the offending
//! inputs' case number and seed; `prop_assume!` discards the case.
//! **Shrinking is not implemented** — a failure reports the raw case.
//! Case generation is deterministic per (test, case index) so CI failures
//! reproduce locally; set `PROPTEST_SEED` to explore different streams,
//! and `PROPTEST_CASES` to override the per-test case count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest there is no value tree / shrinking: a
    /// strategy is just a seeded generator.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            // Closed interval: the measure-zero endpoint is included by
            // sampling over the half-open range and relying on rounding;
            // nudge a tiny fraction of draws onto the exact bounds so
            // boundary behavior actually gets exercised.
            match rng.gen_range(0u32..100) {
                0 => *self.start(),
                1 => *self.end(),
                _ => rng.gen_range(*self.start()..*self.end()),
            }
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$idx:tt),+),)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A / 0),
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
        (A / 0, B / 1, C / 2, D / 3, E / 4),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
    );

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    /// Generates `BTreeMap`s with `size.start..size.end` *attempted*
    /// insertions (duplicate keys collapse, exactly as in real proptest).
    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            let mut out = BTreeMap::new();
            for _ in 0..n {
                out.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            out
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Strategies for `Option`.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    /// Generates `None` about a quarter of the time, `Some(inner)`
    /// otherwise — the real crate's default weighting.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Runner configuration and the execution loop behind [`proptest!`].

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections tolerated before
        /// the test errors out as too narrow.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` cases, other settings default.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(64);
            Self {
                cases,
                max_global_rejects: 4096,
            }
        }
    }

    /// Outcome of one case body. `Err` carries the failure message;
    /// [`ASSUME_REJECTED`] marks a `prop_assume!` discard.
    pub type CaseResult = Result<(), String>;

    /// Sentinel message distinguishing an assumption failure from an
    /// assertion failure.
    pub const ASSUME_REJECTED: &str = "\u{1}__proptest_assume_rejected__";

    /// Drives one property test: runs `body` on freshly seeded RNGs until
    /// `config.cases` cases pass. Panics (failing the `#[test]`) on the
    /// first assertion failure, reporting the case and seed.
    pub fn run(test_name: &str, config: &Config, body: impl Fn(&mut StdRng) -> CaseResult) {
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0x5EED_CF5F_u64);
        // Mix the test name in so sibling tests explore different streams.
        let name_tag = test_name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });

        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while passed < config.cases {
            let seed = base_seed ^ name_tag ^ case.wrapping_mul(0x9E3779B97F4A7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(msg) if msg == ASSUME_REJECTED => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "{test_name}: too many prop_assume! rejections \
                         ({rejected}); the property is vacuous"
                    );
                }
                Err(msg) => panic!(
                    "{test_name}: property failed at case {case} \
                     (PROPTEST_SEED={base_seed}, case seed {seed:#x})\n{msg}"
                ),
            }
            case += 1;
        }
    }
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Supports the same surface syntax as the real
/// crate for simple argument patterns:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn holds(x in 0u32..10, y in 0.0f64..=1.0) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            $crate::test_runner::run(stringify!($name), &config, |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body; failure fails the
/// case (with the optional formatted message) instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}` ({}:{})",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `left != right`, both `{:?}` ({}:{})",
                l,
                file!(),
                line!()
            ));
        }
    }};
}

/// Discards the current case when `cond` is false, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err(String::from($crate::test_runner::ASSUME_REJECTED));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -5i64..=5, f in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u32..4, 0u32..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(pair <= 33);
            prop_assert_eq!(pair % 10, pair - pair / 10 * 10);
        }

        #[test]
        fn assume_discards(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_attribute_is_honored(_x in 0u32..2) {
            prop_assert!(true);
        }
    }

    #[test]
    fn btree_map_strategy_sizes_and_option() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let strat = crate::collection::btree_map(0u32..50, 0.0f64..1.0, 10..20);
        let mut nones = 0;
        for _ in 0..50 {
            let m = strat.generate(&mut rng);
            assert!(m.len() <= 20);
            assert!(m.keys().all(|&k| k < 50));
            let o = crate::option::of(0u32..5).generate(&mut rng);
            if o.is_none() {
                nones += 1;
            }
        }
        assert!(nones > 0, "option::of never produced None");
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_case_info() {
        crate::test_runner::run(
            "always_fails",
            &crate::test_runner::Config::with_cases(3),
            |_rng| Err(String::from("nope")),
        );
    }
}
