//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace resolves crates without
//! network access, so the real `rand` cannot be downloaded. This crate
//! re-implements exactly the slice of the 0.8 API the workspace uses:
//!
//! - [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — the only
//!   construction path used anywhere in the workspace,
//! - [`Rng::gen`] for `f64` (and the other standard types as a courtesy),
//! - [`Rng::gen_range`] over half-open and inclusive integer ranges,
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), which is fine: the workspace
//! only relies on *same-seed reproducibility*, never on specific values.
//! No crypto claims whatsoever.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s. Object-safe core of [`Rng`].
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seedable generators. Only the `seed_from_u64`
/// entry point of the real trait is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the
    /// full domain; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range. Panics when empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw,
/// far below anything the workspace's statistical tests can resolve.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // full-domain i64/u64 range: every u64 is valid
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span as u64) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Fast, 256-bit state, passes BigCrush — and, unlike
    /// the real `StdRng`, fully specified here so seeds stay stable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices. Only `shuffle` is provided.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.gen_range(1..=5);
            assert!((1..=5).contains(&v));
        }
        // negative / i64 ranges
        for _ in 0..100 {
            let v: i64 = rng.gen_range(-10i64..=10);
            assert!((-10..=10).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let base: Vec<u32> = (0..50).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base);
        let mut c = base.clone();
        c.shuffle(&mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }
}
