//! Offline stand-in for the `criterion` crate.
//!
//! The build environment resolves crates without network access, so the
//! real `criterion` cannot be downloaded. This crate provides the subset
//! of the 0.5 API the workspace's benches use — [`criterion_group!`],
//! [`criterion_main!`], [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`Bencher::iter`]/[`Bencher::iter_with_setup`],
//! [`BenchmarkId`], [`Throughput`] — backed by a simple wall-clock
//! harness: warm up briefly, pick an iteration count that fills the
//! measurement window, report mean/min/median ns per iteration (and
//! elements/s when a throughput is set).
//!
//! Passing `--test` (as `cargo test --benches` does) or setting
//! `CRITERION_TEST_MODE=1` runs every routine exactly once — smoke-test
//! mode. `CRITERION_MEASURE_MS` / `CRITERION_WARMUP_MS` tune the windows.
//! Results are printed to stdout; there are no plots, baselines, or
//! statistical significance tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(default),
    )
}

/// Top-level harness state, one per process.
pub struct Criterion {
    test_mode: bool,
    warmup: Duration,
    measure: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test")
            || std::env::var("CRITERION_TEST_MODE").is_ok_and(|v| v == "1");
        Self {
            test_mode,
            warmup: env_ms("CRITERION_WARMUP_MS", 60),
            measure: env_ms("CRITERION_MEASURE_MS", 300),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (compatibility shim; argument
    /// parsing already happens in [`Criterion::default`]).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label();
        run_one(self, &label, None, self.sample_size, f);
        self
    }
}

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter`-style id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self {
            function: Some(s),
            parameter: None,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the throughput annotation used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(self.criterion, &label, self.throughput, samples, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report lines are emitted eagerly; this is a
    /// compatibility no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; routines register through
/// [`Bencher::iter`] or [`Bencher::iter_with_setup`].
pub struct Bencher<'a> {
    harness: &'a HarnessConfig,
    result: Option<Sample>,
}

struct HarnessConfig {
    test_mode: bool,
    warmup: Duration,
    measure: Duration,
    samples: usize,
}

struct Sample {
    iters: u64,
    mean_ns: f64,
    min_ns: f64,
    median_ns: f64,
}

impl Bencher<'_> {
    /// Measures `routine` over the harness's measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.harness.test_mode {
            black_box(routine());
            self.result = Some(Sample {
                iters: 1,
                mean_ns: 0.0,
                min_ns: 0.0,
                median_ns: 0.0,
            });
            return;
        }
        // Warmup while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.harness.warmup || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Split the measurement window into `samples` timed batches.
        let samples = self.harness.samples.max(5);
        let budget_ns = self.harness.measure.as_nanos() as f64;
        let iters_per_sample = ((budget_ns / samples as f64) / est_ns).ceil().max(1.0) as u64;

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            total_iters += iters_per_sample;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        self.result = Some(Sample {
            iters: total_iters,
            mean_ns,
            min_ns: per_iter[0],
            median_ns: per_iter[per_iter.len() / 2],
        });
    }

    /// Like [`Bencher::iter`], but re-creates an input with `setup`
    /// before every call; only `routine` time is measured... approximately:
    /// this harness times setup+routine batches and subtracts a timed
    /// setup-only estimate, clamping at zero.
    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        if self.harness.test_mode {
            black_box(routine(setup()));
            self.result = Some(Sample {
                iters: 1,
                mean_ns: 0.0,
                min_ns: 0.0,
                median_ns: 0.0,
            });
            return;
        }
        // Estimate setup cost alone.
        let t = Instant::now();
        let mut setup_iters = 0u64;
        while t.elapsed() < self.harness.warmup / 4 || setup_iters == 0 {
            black_box(setup());
            setup_iters += 1;
        }
        let setup_ns = t.elapsed().as_nanos() as f64 / setup_iters as f64;

        self.iter(|| routine(setup()));
        if let Some(s) = &mut self.result {
            s.mean_ns = (s.mean_ns - setup_ns).max(0.0);
            s.min_ns = (s.min_ns - setup_ns).max(0.0);
            s.median_ns = (s.median_ns - setup_ns).max(0.0);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F>(
    criterion: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let harness = HarnessConfig {
        test_mode: criterion.test_mode,
        warmup: criterion.warmup,
        measure: criterion.measure,
        samples,
    };
    let mut bencher = Bencher {
        harness: &harness,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        None => println!("{label}: no routine registered"),
        Some(s) if harness.test_mode => {
            let _ = s;
            println!("{label}: ok (test mode, 1 iteration)");
        }
        Some(s) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!(" thrpt: {:.0} elem/s", n as f64 * 1e9 / s.mean_ns)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(" thrpt: {:.0} B/s", n as f64 * 1e9 / s.mean_ns)
                }
                None => String::new(),
            };
            println!(
                "{label}: time: [min {} median {} mean {}] ({} iters){rate}",
                format_ns(s.min_ns),
                format_ns(s.median_ns),
                format_ns(s.mean_ns),
                s.iters,
            );
        }
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            test_mode: false,
            warmup: Duration::from_millis(2),
            measure: Duration::from_millis(10),
            sample_size: 10,
        }
    }

    #[test]
    fn measures_a_cheap_routine() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 5, "routine should have run many times, ran {ran}");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = fast_criterion();
        c.test_mode = true;
        let mut ran = 0u64;
        c.bench_function("once", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(8).label(), "8");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }

    #[test]
    fn iter_with_setup_runs_setup_per_iteration() {
        let mut c = fast_criterion();
        c.test_mode = true;
        let mut setups = 0u64;
        c.bench_function("setup", |b| {
            b.iter_with_setup(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
            )
        });
        assert_eq!(setups, 1);
    }
}
