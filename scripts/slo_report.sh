#!/usr/bin/env bash
# Regenerates BENCH_slo.json: a sample SLO report from a healthy live
# two-shard fleet. Fully offline — the dataset is synthetic, the model
# is trained on the spot, and `cfsf-cli probe` drives the traffic the
# SLO engine measures.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_slo.json}"
WORK="target/slo_report"
mkdir -p "$WORK"

cargo build --release --offline -q --bin cfsf_cli --bin cfsf_router
CLI=target/release/cfsf_cli
ROUTER=target/release/cfsf_router

cleanup() {
  kill "${PIDS[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
}
PIDS=()
trap cleanup EXIT

echo "==> synthetic dataset + model"
"$CLI" synth --small --out "$WORK/u.synth.data"
"$CLI" train "$WORK/u.synth.data" --out "$WORK/model.cfsf"

echo "==> two shards + router (SLO engine on a 200ms poll)"
"$CLI" serve "$WORK/model.cfsf" --serve 127.0.0.1:0 --shard-id 0 \
  >"$WORK/shard0.log" 2>&1 &
PIDS+=($!)
"$CLI" serve "$WORK/model.cfsf" --serve 127.0.0.1:0 --shard-id 1 \
  >"$WORK/shard1.log" 2>&1 &
PIDS+=($!)

shard_addr() { # shard_addr LOGFILE
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on //p' "$1" | head -1)
    [ -n "$addr" ] && { echo "$addr"; return; }
    sleep 0.1
  done
  echo "error: shard never printed its listening line" >&2
  exit 1
}
S0=$(shard_addr "$WORK/shard0.log")
S1=$(shard_addr "$WORK/shard1.log")

"$ROUTER" --shards "$S0,$S1" --listen 127.0.0.1:0 \
  --serve-metrics 127.0.0.1:0 --trace-sample-every 8 \
  --stats-poll-ms 200 --slo-p999-ms 50 --slo-degrade-pm 100 \
  --slo-report "$WORK/BENCH_slo.json" \
  >"$WORK/router.log" 2>&1 &
PIDS+=($!)
R=$(shard_addr "$WORK/router.log")

echo "==> probing the router"
"$CLI" probe "$R" --requests 2000 --top-n 10
sleep 1 # let a final stats poll fold the probe traffic into the report

test -s "$WORK/BENCH_slo.json" || {
  echo "error: router never wrote the SLO report" >&2
  exit 1
}
cp "$WORK/BENCH_slo.json" "$OUT"
echo "wrote $OUT"
