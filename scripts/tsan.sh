#!/usr/bin/env bash
# ThreadSanitizer pass over the loom-lite model targets (the scheduler,
# the checked shim layer, and every built-in model): CI job `tsan`.
#
# TSan needs a nightly toolchain with the rustc -Zsanitizer flag and a
# rebuilt std (-Zbuild-std). When that toolchain is missing this script
# SKIPS with exit 0 — the deterministic loom-lite gate in cfsf-analyze
# is the always-on line of defense. When the toolchain IS present the
# job GATES: the shim layer is the foundation every model-checking
# result rests on, and a TSan finding there is real concurrency UB.
#
# The run is bounded to the loom-lite targets (not the workspace) and
# by a wall-clock budget, TSAN_BUDGET_SECS (default 600): sanitized
# exhaustive exploration is slow, and a hung sanitizer must fail the
# job, not wedge CI.
set -uo pipefail
cd "$(dirname "$0")/.."

TSAN_BUDGET_SECS="${TSAN_BUDGET_SECS:-600}"

if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
    echo "tsan: no nightly toolchain installed; skipping (exit 0)"
    exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
    echo "tsan: nightly rust-src not installed (needed for -Zbuild-std); skipping (exit 0)"
    exit 0
fi

host="$(rustc -vV | sed -n 's/^host: //p')"
echo "tsan: loom-lite model targets under ThreadSanitizer ($host, budget ${TSAN_BUDGET_SECS}s)"

run_target() {
    # $@ = cargo test target selection within cf-analysis.
    RUSTFLAGS="-Zsanitizer=thread" timeout "$TSAN_BUDGET_SECS" \
        cargo +nightly test -Zbuild-std --target "$host" -p cf-analysis "$@" -q
}

status=0
# The scheduler + shim + model unit tests, then the seed-replay suite.
run_target --lib || status=$?
if [ "$status" -eq 0 ]; then
    run_target --test loomlite || status=$?
fi

if [ "$status" -eq 124 ]; then
    echo "tsan: FAILED — wall-clock budget of ${TSAN_BUDGET_SECS}s exceeded" >&2
    echo "tsan: raise TSAN_BUDGET_SECS or shrink the model tree" >&2
    exit 1
fi
if [ "$status" -ne 0 ]; then
    echo "tsan: FAILED — ThreadSanitizer reported findings in the shim layer" >&2
    echo "tsan: reproduce the interleaving deterministically with:" >&2
    echo "tsan:   cargo run -p cf-analysis --bin cfsf-analyze -- --replay <model> <c0,c1,...>" >&2
    echo "tsan: (the failing test's output prints the model name and schedule)" >&2
    exit 1
fi
echo "tsan: clean"
