#!/usr/bin/env bash
# Best-effort ThreadSanitizer pass over the concurrency-heavy tests
# (loom-lite scheduler + sharded cache + trace sink). TSan needs a
# nightly toolchain with the rustc -Zsanitizer flag and a rebuilt std
# (-Zbuild-std); when any of that is missing this script SKIPS with exit
# 0 rather than failing — it is a supplementary signal on top of the
# gating loom-lite models, never a gate itself.
set -uo pipefail
cd "$(dirname "$0")/.."

if ! rustup toolchain list 2>/dev/null | grep -q nightly; then
    echo "tsan: no nightly toolchain installed; skipping (non-gating)"
    exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null | grep -q 'rust-src (installed)'; then
    echo "tsan: nightly rust-src not installed (needed for -Zbuild-std); skipping (non-gating)"
    exit 0
fi

host="$(rustc -vV | sed -n 's/^host: //p')"
echo "tsan: running concurrency tests under ThreadSanitizer ($host)"
if RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -Zbuild-std \
    --target "$host" -p cf-analysis --test loomlite -q; then
    echo "tsan: clean"
else
    echo "tsan: FAILED (non-gating; investigate before trusting the shim layer)"
    exit 1
fi
