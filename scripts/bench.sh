#!/usr/bin/env bash
# Builds and runs the online-serving throughput benchmark, writing the
# machine-readable report (BENCH_online.json by default, at repo root).
#
# Usage:
#   scripts/bench.sh            # full windows, tracked report
#   scripts/bench.sh --quick    # short windows (CI smoke)
#   scripts/bench.sh --out P    # write the report to P instead
#
# The committed BENCH_online.json is produced by a full run on an
# otherwise idle machine; quick mode is for smoke-testing that the
# benchmark itself still works, not for comparing numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p cfsf-bench --bin online_throughput
exec ./target/release/online_throughput "$@"
