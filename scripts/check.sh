#!/usr/bin/env bash
# The repo's full local gate, offline-safe: formatting, lints, and the
# tier-1 build+test cycle. CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test"
cargo test --workspace -q --offline

echo "All checks passed."
