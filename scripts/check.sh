#!/usr/bin/env bash
# The repo's full local gate, offline-safe: formatting, lints, and the
# tier-1 build+test cycle. CI runs exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release --offline

echo "==> tier-1: cargo test"
cargo test --workspace -q --offline

# Analysis gate: the repo lint engine (panic-free serving path, hot-path
# clock gating, float-eq, bare sync primitives, counter pairing, unwind
# captures, bounded frame-decode allocations) plus the loom-lite model
# checker running every built-in model exhaustively — including the
# seeded-race fixture the happens-before detector must catch. Zero
# unsuppressed diagnostics, no stale allowlist entries, and all models
# green, or the gate fails. The machine-readable report lands at
# target/analyze.json; under CI ($CI set) findings are also emitted as
# GitHub ::error annotations pinned to file/line.
echo "==> cfsf-analyze (lint + concurrency models, deny warnings)"
cargo run -q -p cf-analysis --bin cfsf-analyze --offline -- --deny-warnings \
    --json-out target/analyze.json ${CI:+--annotate}

# TSan job: the loom-lite shim layer under ThreadSanitizer, bounded to
# the model targets and a wall-clock budget (TSAN_BUDGET_SECS). Skips
# with exit 0 when no nightly toolchain is installed; gates when one is.
echo "==> tsan: loom-lite model targets under ThreadSanitizer"
./scripts/tsan.sh

# Sharded serving: the multi-process integration test spawns real shard
# and router processes from the built binaries and asserts (a) remote
# answers are bit-for-bit the in-process answers and (b) killing a shard
# mid-load costs zero router errors — users degrade down the ladder.
# It runs in the workspace pass too; calling it out keeps the fleet
# behavior visible as its own gate in CI logs.
echo "==> sharded serving: router + shard processes round-trip"
cargo test --offline -q --test sharded_serving

# Fleet observability: router + shard processes again, this time
# asserting the cross-process trace stitches under one trace id on
# /traces, the merged cfsf_fleet_* series equal the per-shard sums
# within a single scrape, and the SLO engine publishes burn-rate gauges
# and writes BENCH_slo.json.
echo "==> fleet observability: trace propagation + merged metrics + SLOs"
cargo test --offline -q --test fleet_tracing

# Chaos job: the deterministic fault-injection suite. The faultinject
# feature compiles the injection points into cfsf-core, so this runs as
# its own pass (and lints the gated code the default pass never sees).
echo "==> chaos: clippy with fault injection (deny warnings)"
cargo clippy -p cfsf-core --features faultinject --all-targets --offline -- -D warnings

echo "==> chaos: fault-injection suite"
cargo test -p cfsf-core --features faultinject -q --offline

echo "==> chaos: serving tier (shard connection drops)"
cargo clippy -p cf-serve --features faultinject --all-targets --offline -- -D warnings
cargo test -p cf-serve --features faultinject -q --offline

# Non-gating: smoke the throughput benchmark (quick windows) so a broken
# bench binary is caught here, without making noisy perf numbers a gate.
# --compare prints a BENCH REGRESSION WARNING for any measurement >10%
# below the committed BENCH_online.json, so the perf trajectory shows up
# in every check/CI log without noisy quick-mode numbers gating merges.
echo "==> bench smoke + regression compare (non-gating)"
./scripts/bench.sh --quick --out target/BENCH_online.smoke.json \
    --compare BENCH_online.json \
  || echo "WARNING: bench smoke failed (non-gating)"

# The strip-sorted batch scenario must actually run in the smoke pass —
# a silently dropped scenario would leave the batch engine unbenched.
# Likewise refresh_under_load: it is the only number that watches the
# zero-pause tail-latency promise of the background refresh path.
if [ -f target/BENCH_online.smoke.json ]; then
  grep -q '"mixed_batch_sorted_one_thread"' target/BENCH_online.smoke.json \
    || echo "WARNING: mixed_batch_sorted_one_thread scenario missing from bench smoke (non-gating)"
  grep -q '"refresh_under_load"' target/BENCH_online.smoke.json \
    || echo "WARNING: refresh_under_load scenario missing from bench smoke (non-gating)"
fi

echo "All checks passed."
