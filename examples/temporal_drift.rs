//! Preference drift demo: users whose tastes change over time, and how
//! time-decayed evidence tracks them where plain CF averages their past
//! and present selves — the paper's "dates associated with the ratings"
//! future-work item (§VI).
//!
//! ```text
//! cargo run --release --example temporal_drift
//! ```

use cf_matrix::Predictor;
use cfsf::temporal::{
    temporal_split, Decay, DecayMode, DriftConfig, TimeAwareSur, TimeAwareSurConfig,
};

fn main() {
    let cfg = DriftConfig {
        num_users: 200,
        num_items: 300,
        ratings_per_user: 60,
        drift_fraction: 0.5,
        noise_sd: 0.3,
        ..DriftConfig::default()
    };
    println!(
        "generating {} users ({}% of whom drift mid-history), {} ratings each...",
        cfg.num_users,
        (cfg.drift_fraction * 100.0) as u32,
        cfg.ratings_per_user
    );
    let (data, drifted) = cfg.generate();
    let split = temporal_split(&data, 0.75);
    println!(
        "chronological split: {} training ratings, {} future holdout ratings",
        split.train.matrix().num_ratings(),
        split.holdout.len()
    );

    let mae = |model: &TimeAwareSur, only_drifted: bool| {
        let mut err = 0.0;
        let mut n = 0usize;
        for &(u, i, r, _) in &split.holdout {
            if only_drifted && !drifted.contains(&u) {
                continue;
            }
            let p = model.predict(u, i).unwrap_or(3.0);
            err += (p - r).abs();
            n += 1;
        }
        err / n.max(1) as f64
    };

    println!(
        "\n{:<22} {:>10} {:>16}",
        "half-life", "MAE (all)", "MAE (drifted)"
    );
    for (label, half_life) in [
        ("no decay (plain SUR)", 1e15),
        ("full span", cfg.time_span as f64),
        ("span / 4", cfg.time_span as f64 / 4.0),
        ("span / 8", cfg.time_span as f64 / 8.0),
        ("span / 16", cfg.time_span as f64 / 16.0),
    ] {
        let model = TimeAwareSur::fit(
            &split.train,
            TimeAwareSurConfig {
                decay: Decay::with_half_life(half_life),
                mode: DecayMode::ActiveAge,
                decay_neighbor_ratings: false,
                neighborhood: Some(40),
            },
        );
        println!(
            "{:<22} {:>10.3} {:>16.3}",
            label,
            mae(&model, false),
            mae(&model, true)
        );
    }

    // Show one drifted user's story.
    if let Some(&u) = drifted.first() {
        let mid = (data.t_min() + data.t_max()) / 2;
        let (mut early, mut ec, mut late, mut lc) = (0.0, 0, 0.0, 0);
        for (_, r, t) in data.user_row_timed(u) {
            if t < mid {
                early += r;
                ec += 1;
            } else {
                late += r;
                lc += 1;
            }
        }
        println!(
            "\nexample drifted user {u}: mean rating {:.2} in the early half, {:.2} in the late half \
             — same catalog, different taste.",
            early / ec.max(1) as f64,
            late / lc.max(1) as f64
        );
    }
}
