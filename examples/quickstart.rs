//! Quickstart: generate data, run the paper's protocol, train CFSF,
//! report MAE and inspect one prediction.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cfsf::prelude::*;

fn main() {
    // 1. A MovieLens-like dataset (seeded: every run is identical).
    //    Swap in `cfsf::data::load_movielens("u.data")` for the real thing.
    let dataset = SyntheticConfig::small().generate();
    println!("dataset: {}", dataset.name);
    println!("{}", dataset.stats());

    // 2. The paper's protocol: train on the first 40 users' full profiles,
    //    reveal 5 ratings for each of the last 20 users, hold out the rest.
    let split = Protocol::new(TrainSize::Users(40), GivenN::Given5, 20)
        .split(&dataset)
        .expect("protocol fits the dataset");
    println!(
        "split {}: {} training ratings, {} holdout cells",
        split.label,
        split.train.num_ratings(),
        split.holdout.len()
    );

    // 3. Offline phase: GIS + clustering + smoothing + iCluster.
    let model = Cfsf::fit(&split.train, CfsfConfig::small()).expect("valid config");
    let summary = model.offline_summary();
    println!(
        "offline: {} clusters (k-means {} iters, converged={}), {} GIS pairs, {} smoothed cells",
        summary.clusters,
        summary.kmeans_iterations,
        summary.kmeans_converged,
        summary.gis_pairs,
        summary.smoothed_cells
    );

    // 4. Online phase: score the holdout.
    let eval = cfsf::eval::evaluate(&model, &split.holdout);
    println!(
        "CFSF: MAE {:.3}, RMSE {:.3}, coverage {:.1}%",
        eval.mae,
        eval.rmse,
        eval.coverage * 100.0
    );

    // 5. One prediction, dissected into the paper's Eq. 12 components.
    let cell = &split.holdout[0];
    let b = model
        .predict_with_breakdown(cell.user, cell.item)
        .expect("in-range cell");
    println!(
        "\nprediction for (user {}, item {}): {:.2} (truth {:.0})",
        cell.user, cell.item, b.fused, cell.rating
    );
    println!(
        "  SIR'  (same user, similar items)        = {}",
        b.sir.map_or("n/a".into(), |v| format!("{v:.2}")),
    );
    println!(
        "  SUR'  (like-minded users, same item)    = {}",
        b.sur.map_or("n/a".into(), |v| format!("{v:.2}")),
    );
    println!(
        "  SUIR' (like-minded users, similar items) = {}",
        b.suir.map_or("n/a".into(), |v| format!("{v:.2}")),
    );
    println!(
        "  local matrix: {} similar items × {} like-minded users",
        b.m_used, b.k_used
    );
}
