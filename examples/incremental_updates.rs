//! Live-service simulation: a fitted CFSF model absorbing a stream of new
//! ratings through incremental refreshes — the paper's "keep GIS
//! up-to-date" future-work item (§VI) in action.
//!
//! ```text
//! cargo run --release --example incremental_updates
//! ```

use std::time::Instant;

use cfsf::core::{IncrementalCfsf, RefreshKind};
use cfsf::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn main() {
    let dataset = SyntheticConfig {
        num_users: 250,
        num_items: 400,
        mean_ratings_per_user: 45.0,
        min_ratings_per_user: 25,
        ..SyntheticConfig::movielens()
    }
    .generate();

    println!("initial offline fit...");
    let t = Instant::now();
    let model = Cfsf::fit(
        &dataset.matrix,
        CfsfConfig {
            clusters: 12,
            ..CfsfConfig::paper()
        },
    )
    .expect("valid config");
    println!("  fit in {:.2}s", t.elapsed().as_secs_f64());

    let mut service = IncrementalCfsf::new(model);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // Simulate five days of traffic: each day users rate ~80 new items,
    // and the service refreshes overnight.
    let matrix = &dataset.matrix;
    let mut unrated: Vec<(UserId, ItemId)> = matrix
        .users()
        .flat_map(|u| {
            matrix
                .items()
                .filter(move |&i| !matrix.is_rated(u, i))
                .map(move |i| (u, i))
        })
        .collect();
    unrated.shuffle(&mut rng);

    let mut cursor = 0usize;
    for day in 1..=5 {
        let mut absorbed = 0;
        while absorbed < 80 && cursor < unrated.len() {
            let (u, i) = unrated[cursor];
            cursor += 1;
            let rating = rng.gen_range(1..=5) as f64;
            if service.add_rating(u, i, rating).is_ok() {
                absorbed += 1;
            }
        }
        let stats = service.refresh().expect("refresh succeeds");
        println!(
            "day {day}: absorbed {} ratings via {:?} refresh ({} GIS rows patched) in {:.3}s",
            stats.merged,
            stats.kind,
            stats.items_rebuilt,
            stats.elapsed.as_secs_f64()
        );
        if stats.kind == RefreshKind::Full {
            println!("         (churn threshold crossed — full refit ran)");
        }
    }

    // The service still predicts everywhere, reflecting all absorbed data.
    let user = UserId::new(3);
    let recs = service.model().recommend_top_n(user, 5);
    println!("\nafter 5 days, top-5 for user {user}:");
    for (item, score) in recs {
        println!("  item {:<5} predicted {score:.2}", item.raw());
    }
    println!(
        "training matrix now holds {} ratings",
        service.model().matrix().num_ratings()
    );
}
