//! Reproduces the Fig. 5 experiment as a standalone program: online
//! response time of CFSF vs SCBPCC vs plain SUR as the testset grows.
//!
//! ```text
//! cargo run --release --example scalability
//! ```

use std::time::Instant;

use cf_matrix::Predictor;
use cfsf::prelude::*;

fn serve(model: &dyn Predictor, holdout: &[cfsf::data::HoldoutCell]) -> f64 {
    let t = Instant::now();
    for cell in holdout {
        std::hint::black_box(model.predict(cell.user, cell.item));
    }
    t.elapsed().as_secs_f64()
}

fn main() {
    let dataset = SyntheticConfig::movielens().generate();
    let train_size = TrainSize::Users(300);

    // The training matrix is identical for every fraction; fit once.
    let full = Protocol::new(train_size, GivenN::Given20, 200)
        .split(&dataset)
        .expect("protocol fits");
    println!("fitting CFSF and SCBPCC on {} ...", full.label);
    let cfsf = Cfsf::fit(&full.train, CfsfConfig::paper()).expect("valid config");
    let scbpcc = Scbpcc::fit_default(&full.train);
    let sur = Sur::fit_default(&full.train);

    println!(
        "\n{:>9} {:>7} {:>10} {:>10} {:>10}",
        "testset", "cells", "CFSF (s)", "SCBPCC (s)", "SUR (s)"
    );
    let mut last: Option<(f64, f64)> = None;
    for pct in [10, 20, 40, 60, 80, 100] {
        let split = Protocol::new(train_size, GivenN::Given20, 200)
            .with_test_fraction(pct as f64 / 100.0)
            .split(&dataset)
            .expect("protocol fits");
        cfsf.clear_caches(); // cold serving run, like the paper's setup
        let t_cfsf = serve(&cfsf, &split.holdout);
        let t_scb = serve(&scbpcc, &split.holdout);
        let t_sur = serve(&sur, &split.holdout);
        println!(
            "{:>8}% {:>7} {:>10.3} {:>10.3} {:>10.3}",
            pct,
            split.holdout.len(),
            t_cfsf,
            t_scb,
            t_sur
        );
        last = Some((t_cfsf, t_scb));
    }

    if let Some((t_cfsf, t_scb)) = last {
        println!(
            "\nat the full testset SCBPCC takes {:.1}x the time of CFSF \
             (the paper reports ~2.4x: 260s vs 110s on 2009 hardware)",
            t_scb / t_cfsf.max(1e-9)
        );
    }
    println!(
        "CFSF's online phase is O(M*K) per request plus cached neighbor selection; \
         SCBPCC re-scans every user on every request."
    );
}
