//! A small movie-recommender service built on the public API: trains CFSF
//! once (offline phase), then serves ranked top-N recommendations — the
//! workload the paper's Amazon/Yahoo! motivation describes.
//!
//! ```text
//! cargo run --release --example movie_recommender [user_id]
//! ```

use cf_matrix::ItemId;
use cfsf::prelude::*;

/// A thin "service" wrapper: the kind of façade an application would put
/// in front of the model.
struct RecommenderService {
    model: Cfsf,
    titles: Vec<String>,
}

impl RecommenderService {
    fn new(dataset: &Dataset) -> Self {
        let model = Cfsf::fit(&dataset.matrix, CfsfConfig::paper()).expect("valid config");
        // Synthetic "titles": genre + index, from the generator's ground
        // truth, so the output reads like a catalog.
        let genres = [
            "Action",
            "Comedy",
            "Drama",
            "Sci-Fi",
            "Horror",
            "Romance",
            "Thriller",
            "Animation",
            "Documentary",
            "Fantasy",
            "Crime",
            "Western",
        ];
        let titles = match &dataset.item_genres {
            Some(gs) => gs
                .iter()
                .enumerate()
                .map(|(i, &g)| format!("{} #{i:04}", genres[g as usize % genres.len()]))
                .collect(),
            None => (0..dataset.matrix.num_items())
                .map(|i| format!("Item #{i:04}"))
                .collect(),
        };
        Self { model, titles }
    }

    fn recommend(&self, user: UserId, n: usize) -> Vec<(String, f64)> {
        self.model
            .recommend_top_n(user, n)
            .into_iter()
            .map(|(item, score)| (self.titles[item.index()].clone(), score))
            .collect()
    }

    fn explain(&self, user: UserId) {
        let top = self.model.top_k_users(user);
        println!(
            "  like-minded users: {}",
            top.iter()
                .take(5)
                .map(|(u, s)| format!("u{u} ({s:.2})"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    fn similar_movies(&self, item: ItemId, n: usize) -> Vec<(String, f64)> {
        self.model
            .gis()
            .top_m(item, n)
            .iter()
            .map(|&(i, s)| (self.titles[i.index()].clone(), s))
            .collect()
    }
}

fn main() {
    let user_id: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    println!("generating catalog + training CFSF (offline phase)...");
    let dataset = SyntheticConfig::movielens().generate();
    let service = RecommenderService::new(&dataset);
    let user = UserId::new(user_id);

    // The user's taste, from their highest-rated history.
    let mut history: Vec<(ItemId, f64)> = dataset.matrix.user_ratings(user).collect();
    history.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("\nuser {user} rated {} movies; favourites:", history.len());
    for (item, r) in history.iter().take(5) {
        println!("  {:<22} {r:.0}★", service.titles[item.index()]);
    }

    println!("\ntop-10 recommendations:");
    for (rank, (title, score)) in service.recommend(user, 10).iter().enumerate() {
        println!("  {:>2}. {:<22} predicted {score:.2}★", rank + 1, title);
    }
    service.explain(user);

    // Item-to-item: "because you watched ...".
    if let Some(&(fav, _)) = history.first() {
        println!(
            "\nbecause you liked {} you may also like:",
            service.titles[fav.index()]
        );
        for (title, sim) in service.similar_movies(fav, 5) {
            println!("  {title:<22} (similarity {sim:.2})");
        }
    }

    // Full explanation of the #1 recommendation: the exact Eq. 12
    // evidence the prediction was fused from.
    if let Some((top_item, _)) = service.model.recommend_top_n(user, 1).first().copied() {
        if let Some(explanation) = service.model.explain(user, top_item) {
            println!(
                "\nwhy {} (predicted {:.2}):",
                service.titles[top_item.index()],
                explanation.breakdown.fused
            );
            for e in explanation.item_evidence.iter().take(3) {
                println!(
                    "  you rated the similar movie {:<22} {:.0}★ (sim {:.2}, {}, weight {:.0}%)",
                    service.titles[e.item.index()],
                    e.rating,
                    e.similarity,
                    if e.original { "your rating" } else { "imputed" },
                    e.weight * 100.0
                );
            }
            for e in explanation.user_evidence.iter().take(3) {
                println!(
                    "  like-minded user u{} rated it {:.1}★ (sim {:.2}, weight {:.0}%)",
                    e.user,
                    e.rating,
                    e.similarity,
                    e.weight * 100.0
                );
            }
        }
    }
}
