//! Fits CFSF and all seven comparators from the paper on one protocol
//! split and prints an accuracy/latency scoreboard — a miniature of
//! Tables II/III plus Fig. 5 in one run.
//!
//! ```text
//! cargo run --release --example compare_approaches
//! ```

use std::time::Instant;

use cf_matrix::Predictor;
use cfsf::prelude::*;

fn main() {
    // A mid-sized dataset so the memory-based baselines finish promptly.
    let dataset = SyntheticConfig {
        num_users: 250,
        num_items: 400,
        mean_ratings_per_user: 50.0,
        min_ratings_per_user: 25,
        ..SyntheticConfig::movielens()
    }
    .generate();
    let split = Protocol::new(TrainSize::Users(170), GivenN::Given10, 80)
        .split(&dataset)
        .expect("protocol fits");
    println!(
        "split {}: {} training ratings, {} holdout cells\n",
        split.label,
        split.train.num_ratings(),
        split.holdout.len()
    );

    println!(
        "{:<8} {:>7} {:>7} {:>9} {:>9} {:>10}",
        "method", "MAE", "RMSE", "fit (s)", "serve (s)", "coverage"
    );

    let mut rows: Vec<(String, f64)> = Vec::new();
    for name in ["CFSF", "SUR", "SIR", "SF", "EMDP", "SCBPCC", "AM", "PD"] {
        let t_fit = Instant::now();
        let model: Box<dyn Predictor> = if name == "CFSF" {
            Box::new(
                Cfsf::fit(
                    &split.train,
                    CfsfConfig {
                        clusters: 20,
                        ..CfsfConfig::paper()
                    },
                )
                .expect("valid config"),
            )
        } else {
            fit_baseline(name, &split.train)
        };
        let fit_time = t_fit.elapsed();

        let t_serve = Instant::now();
        let eval = cfsf::eval::evaluate(model.as_ref(), &split.holdout);
        let serve_time = t_serve.elapsed();

        println!(
            "{:<8} {:>7.3} {:>7.3} {:>9.2} {:>9.2} {:>9.1}%",
            model.name(),
            eval.mae,
            eval.rmse,
            fit_time.as_secs_f64(),
            serve_time.as_secs_f64(),
            eval.coverage * 100.0
        );
        rows.push((name.to_string(), eval.mae));
    }

    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    println!(
        "\nbest MAE: {} ({:.3}) — the paper's Tables II/III report CFSF winning every cell",
        rows[0].0, rows[0].1
    );
}

fn fit_baseline(name: &str, train: &cf_matrix::RatingMatrix) -> Box<dyn Predictor> {
    match name {
        "SUR" => Box::new(Sur::fit_default(train)),
        "SIR" => Box::new(Sir::fit_default(train)),
        "SF" => Box::new(SimilarityFusion::fit_default(train)),
        "EMDP" => Box::new(Emdp::fit_default(train)),
        "SCBPCC" => Box::new(Scbpcc::fit_default(train)),
        "AM" => Box::new(AspectModel::fit_default(train)),
        "PD" => Box::new(PersonalityDiagnosis::fit_default(train)),
        _ => unreachable!(),
    }
}
