//! Grid search over the fusion weights (λ, δ) and the smoothing discount
//! w — the workflow behind the paper's Figs. 6–8, shown as a library use
//! case. Re-parameterization reuses the offline structures, so the whole
//! grid costs one fit plus cheap clones.
//!
//! ```text
//! cargo run --release --example parameter_tuning
//! ```

use cfsf::prelude::*;

fn main() {
    let dataset = SyntheticConfig {
        num_users: 200,
        num_items: 300,
        mean_ratings_per_user: 40.0,
        min_ratings_per_user: 21,
        ..SyntheticConfig::movielens()
    }
    .generate();

    // Tune on a validation split carved from the *training* users so the
    // final test holdout stays untouched.
    let validation = Protocol::new(TrainSize::Users(80), GivenN::Given10, 60)
        .with_seed(1)
        .split(&dataset)
        .expect("protocol fits");
    let test = Protocol::new(TrainSize::Users(140), GivenN::Given10, 60)
        .split(&dataset)
        .expect("protocol fits");

    println!("fitting the offline phase once...");
    let base = Cfsf::fit(
        &validation.train,
        CfsfConfig {
            clusters: 12,
            ..CfsfConfig::paper()
        },
    )
    .expect("valid config");

    let lambdas = [0.2, 0.4, 0.6, 0.8, 1.0];
    let deltas = [0.0, 0.1, 0.2, 0.4];
    let ws = [0.15, 0.35, 0.55, 0.75];

    let mut best = (f64::INFINITY, 0.0, 0.0, 0.0);
    println!(
        "grid: {} lambda x {} delta x {} w = {} variants",
        lambdas.len(),
        deltas.len(),
        ws.len(),
        lambdas.len() * deltas.len() * ws.len()
    );
    for &lambda in &lambdas {
        for &delta in &deltas {
            for &w in &ws {
                let model = base
                    .reparameterize(|c| {
                        c.lambda = lambda;
                        c.delta = delta;
                        c.w = w;
                    })
                    .expect("grid values are valid");
                let mae = evaluate_mae(&model, &validation.holdout);
                if mae < best.0 {
                    best = (mae, lambda, delta, w);
                    println!("  new best: MAE {mae:.4} at lambda={lambda} delta={delta} w={w}");
                }
            }
        }
    }
    let (val_mae, lambda, delta, w) = best;
    println!(
        "\nvalidation best: MAE {val_mae:.4} at lambda={lambda}, delta={delta}, w={w} \
         (paper defaults: 0.8, 0.1, 0.35)"
    );

    // Refit on the real training split with the tuned parameters.
    let tuned = Cfsf::fit(
        &test.train,
        CfsfConfig {
            lambda,
            delta,
            w,
            clusters: 12,
            ..CfsfConfig::paper()
        },
    )
    .expect("valid config");
    let defaults = Cfsf::fit(
        &test.train,
        CfsfConfig {
            clusters: 12,
            ..CfsfConfig::paper()
        },
    )
    .expect("valid config");
    println!(
        "test split {}: tuned MAE {:.4} vs paper-default MAE {:.4}",
        test.label,
        evaluate_mae(&tuned, &test.holdout),
        evaluate_mae(&defaults, &test.holdout)
    );
}
