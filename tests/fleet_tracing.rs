//! End-to-end test of fleet observability as real processes: two
//! `cfsf-cli serve` shards and one `cfsf_router` front, with head
//! sampling forced on.
//!
//! The acceptance criteria this file exists for:
//!
//! - a request through the router produces ONE trace whose shard-side
//!   spans (shipped back on the response frames) stitch under the
//!   router's trace id — visible as `remote shardN` groups on the
//!   router's `/traces` endpoint,
//! - the router's `/metrics` carries merged `cfsf_fleet_*` series that
//!   equal the sum of the per-shard (`shard="N"`) series scraped in the
//!   same pass,
//! - the SLO engine publishes multi-window burn-rate gauges and
//!   `--slo-report` writes the report JSON.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use cf_faultinject::ChildGuard;
use cf_serve::client::{ClientOptions, ShardClient};
use cf_serve::frame::{Request, Response};
use cfsf::prelude::*;

/// Reads lines from `pipe` until one contains `marker`, returning the
/// rest of that line, then hands the pipe to a drain thread (closing
/// the read end would SIGPIPE the child).
fn await_line(pipe: impl Read + Send + 'static, marker: &str) -> Option<String> {
    let mut reader = BufReader::new(pipe);
    let mut found = None;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                if let Some((_, rest)) = line.rsplit_once(marker) {
                    found = Some(rest.trim().to_string());
                    break;
                }
            }
        }
    }
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            match reader.read_line(&mut sink) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    });
    found
}

fn spawn_listening(mut cmd: Command, what: &str) -> (ChildGuard, String) {
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    let child = cmd.spawn().unwrap_or_else(|e| panic!("spawn {what}: {e}"));
    let mut guard = ChildGuard::new(child, what);
    let stdout = guard
        .child_mut()
        .and_then(|c| c.stdout.take())
        .expect("stdout piped");
    let addr = await_line(stdout, "listening on ")
        .unwrap_or_else(|| panic!("{what} never printed its listening line"));
    (guard, addr)
}

/// One HTTP GET against the router's telemetry endpoint.
fn scrape(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("metrics endpoint reachable");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut body = String::new();
    let _ = stream.read_to_string(&mut body);
    body
}

/// Extracts the value of the exactly-matching series line
/// (`name value` or `name{labels} value`) from a Prometheus scrape.
fn series_value(text: &str, series: &str) -> Option<u64> {
    text.lines().find_map(|l| {
        let rest = l.strip_prefix(series)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[test]
fn fleet_traces_stitch_and_merged_metrics_sum_per_shard() {
    // --- train and persist the model the whole fleet serves ------------
    let dataset = SyntheticConfig::small().generate();
    let model = Arc::new(Cfsf::fit(&dataset.matrix, CfsfConfig::small()).expect("valid config"));
    let dir = std::env::temp_dir().join(format!("cfsf-fleet-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.cfsf");
    model.save_to_file(&model_path).expect("model saves");
    let slo_path = dir.join("BENCH_slo.json");

    // --- spawn 2 shards + router from the real binaries -----------------
    let cli = env!("CARGO_BIN_EXE_cfsf_cli");
    let router_bin = env!("CARGO_BIN_EXE_cfsf_router");
    let mut shards = Vec::new();
    let mut shard_addrs = Vec::new();
    for shard_id in 0..2u32 {
        let mut cmd = Command::new(cli);
        cmd.arg("serve")
            .arg(&model_path)
            .args(["--serve", "127.0.0.1:0", "--shard-id"])
            .arg(shard_id.to_string());
        let (guard, addr) = spawn_listening(cmd, &format!("shard {shard_id}"));
        shards.push(guard);
        shard_addrs.push(addr);
    }
    let mut cmd = Command::new(router_bin);
    cmd.args(["--shards", &shard_addrs.join(",")])
        .args(["--listen", "127.0.0.1:0"])
        .args(["--serve-metrics", "127.0.0.1:0"])
        .args(["--trace-sample-every", "1"])
        .args(["--stats-poll-ms", "100"])
        .args(["--slo-p999-ms", "250", "--slo-degrade-pm", "100"])
        .arg("--slo-report")
        .arg(&slo_path)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let child = cmd.spawn().expect("spawn router");
    let mut router_guard = ChildGuard::new(child, "router");
    let stderr = router_guard
        .child_mut()
        .and_then(|c| c.stderr.take())
        .expect("stderr piped");
    let metrics_addr = await_line(stderr, "telemetry endpoint on http://")
        .expect("router never printed its telemetry line");
    let metrics_addr = metrics_addr.trim_end_matches('/').to_string();
    let stdout = router_guard
        .child_mut()
        .and_then(|c| c.stdout.take())
        .expect("stdout piped");
    let router_addr =
        await_line(stdout, "listening on ").expect("router never printed its listening line");

    // --- drive traffic through the router --------------------------------
    let mut client = ShardClient::connect(router_addr.as_str(), ClientOptions::default())
        .expect("router reachable");
    let users = model.matrix().num_users() as u32;
    for user in 0..users.min(32) {
        match client.request(&Request::predict(user, 1)).unwrap() {
            Response::Prediction(p) => assert!(p.fused.is_finite()),
            other => panic!("predict answered {other:?}"),
        }
    }
    match client
        .request(&Request::recommend_top_n(0, 5, 0, u32::MAX))
        .unwrap()
    {
        Response::TopN(items) => assert!(!items.is_empty()),
        other => panic!("recommend answered {other:?}"),
    }

    // --- one trace, stitched across processes ----------------------------
    // Head sampling is 1-in-1, so the very first predict was captured;
    // its shard answered with its spans on the response frame and the
    // router attached them under its own trace id.
    let traces = scrape(&metrics_addr, "/traces");
    assert!(
        traces.contains("router.shard_call"),
        "router-side span missing from /traces: {traces}"
    );
    assert!(
        traces.contains("remote shard"),
        "stitched shard-side spans missing from /traces: {traces}"
    );
    assert!(
        traces.contains("remote.request"),
        "shard-side request root missing from /traces: {traces}"
    );
    // The scatter path stitches too.
    assert!(
        traces.contains("router.scatter"),
        "scatter span missing from /traces: {traces}"
    );

    // --- merged fleet series == sum of per-shard series ------------------
    // Wait for at least one stats poll to land (100ms interval).
    let mut metrics = String::new();
    for _ in 0..50 {
        metrics = scrape(&metrics_addr, "/metrics");
        if series_value(&metrics, "cfsf_fleet_online_request_ns_count").is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    // Merged and per-shard series render from one locked snapshot, so
    // the identity is exact within a single scrape even under load.
    for family in [
        "cfsf_fleet_online_request_ns_count",
        "cfsf_fleet_online_request_ns_sum",
        "cfsf_fleet_online_predictions",
    ] {
        let merged = series_value(&metrics, family)
            .unwrap_or_else(|| panic!("{family} missing from scrape: {metrics}"));
        let per_shard: u64 = (0..2)
            .map(|s| {
                series_value(&metrics, &format!("{family}{{shard=\"{s}\"}}"))
                    .unwrap_or_else(|| panic!("{family}{{shard={s}}} missing: {metrics}"))
            })
            .sum();
        assert_eq!(
            merged, per_shard,
            "merged {family} must equal the bucket-wise per-shard sum"
        );
    }
    // Every routed predict recorded one request on its shard.
    assert!(series_value(&metrics, "cfsf_fleet_online_request_ns_count").unwrap() >= 32);
    assert_eq!(
        series_value(&metrics, "cfsf_fleet_shards_reachable"),
        Some(2)
    );
    assert_eq!(
        series_value(&metrics, "cfsf_fleet_generation_skew"),
        Some(0)
    );

    // --- SLO gauges + report file ----------------------------------------
    assert!(
        metrics.contains("cfsf_slo_latency_p999_burn_milli_1m"),
        "burn-rate gauge missing: {metrics}"
    );
    assert!(
        metrics.contains("cfsf_slo_degrade_rate_budget_pm 100"),
        "degrade budget gauge missing: {metrics}"
    );
    let report = std::fs::read_to_string(&slo_path).expect("--slo-report wrote the report");
    for needle in ["\"latency_p999\"", "\"degrade_rate\"", "\"burn_milli\""] {
        assert!(report.contains(needle), "missing {needle} in {report}");
    }

    // A healthy fleet run: no shard was down, so nothing degraded.
    let stats = scrape(&metrics_addr, "/stats.json");
    assert!(stats.contains("\"fleet\""), "{stats}");
    assert!(stats.contains("\"shards_reachable\": 2"), "{stats}");

    drop(client);
    router_guard.kill_now();
    for mut s in shards {
        s.kill_now();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
