//! Degenerate-input and failure-injection tests: every algorithm must
//! stay total, finite, and on-scale when the data carries no signal.

use cf_matrix::{MatrixBuilder, Predictor, RatingMatrix};
use cfsf::prelude::*;

/// Every user rated every item with the same value: zero variance
/// everywhere, every similarity undefined.
fn constant_matrix() -> RatingMatrix {
    let mut b = MatrixBuilder::new();
    for u in 0..10u32 {
        for i in 0..8u32 {
            b.push(UserId::new(u), ItemId::new(i), 3.0);
        }
    }
    b.build().unwrap()
}

/// Two user populations that share no items at all.
fn disjoint_matrix() -> RatingMatrix {
    let mut b = MatrixBuilder::with_dims(8, 10);
    for u in 0..4u32 {
        for i in 0..5u32 {
            b.push(UserId::new(u), ItemId::new(i), 1.0 + ((u + i) % 5) as f64);
        }
    }
    for u in 4..8u32 {
        for i in 5..10u32 {
            b.push(UserId::new(u), ItemId::new(i), 1.0 + ((u * i) % 5) as f64);
        }
    }
    b.build().unwrap()
}

/// A single user with a handful of ratings.
fn single_user_matrix() -> RatingMatrix {
    let mut b = MatrixBuilder::with_dims(1, 6);
    for i in 0..4u32 {
        b.push(UserId::new(0), ItemId::new(i), 1.0 + i as f64);
    }
    b.build().unwrap()
}

fn all_models(m: &RatingMatrix) -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(
            Cfsf::fit(
                m,
                CfsfConfig {
                    clusters: 2,
                    k: 3,
                    m: 3,
                    ..CfsfConfig::paper()
                },
            )
            .unwrap(),
        ),
        Box::new(Sur::fit_default(m)),
        Box::new(Sir::fit_default(m)),
        Box::new(SimilarityFusion::fit_default(m)),
        Box::new(Emdp::fit_default(m)),
        Box::new(Scbpcc::fit_default(m)),
        Box::new(AspectModel::fit_default(m)),
        Box::new(PersonalityDiagnosis::fit_default(m)),
    ]
}

fn assert_total_and_on_scale(m: &RatingMatrix) {
    for model in all_models(m) {
        for u in m.users() {
            for i in m.items() {
                let r = model
                    .predict(u, i)
                    .unwrap_or_else(|| panic!("{} abstained at ({u:?},{i:?})", model.name()));
                assert!(
                    r.is_finite() && (1.0..=5.0).contains(&r),
                    "{}: ({u:?},{i:?}) -> {r}",
                    model.name()
                );
            }
        }
    }
}

#[test]
fn constant_ratings_never_produce_nan() {
    let m = constant_matrix();
    assert_total_and_on_scale(&m);
    // and the sensible answer is the constant itself
    let cfsf = Cfsf::fit(
        &m,
        CfsfConfig {
            clusters: 2,
            k: 3,
            m: 3,
            ..CfsfConfig::paper()
        },
    )
    .unwrap();
    let r = cfsf.predict(UserId::new(0), ItemId::new(7)).unwrap();
    assert!((r - 3.0).abs() < 1e-9, "got {r}");
}

#[test]
fn disjoint_populations_fall_back_gracefully() {
    let m = disjoint_matrix();
    assert_total_and_on_scale(&m);
}

#[test]
fn single_user_matrix_works_everywhere() {
    let m = single_user_matrix();
    assert_total_and_on_scale(&m);
}

#[test]
fn extreme_cfsf_parameters_stay_sane() {
    let d = SyntheticConfig::small().generate();
    let m = &d.matrix;
    for config in [
        CfsfConfig {
            lambda: 0.0,
            delta: 0.0,
            ..CfsfConfig::small()
        },
        CfsfConfig {
            lambda: 1.0,
            delta: 1.0,
            ..CfsfConfig::small()
        },
        CfsfConfig {
            w: 0.999,
            ..CfsfConfig::small()
        },
        CfsfConfig {
            w: 0.001,
            ..CfsfConfig::small()
        },
        CfsfConfig {
            k: 1,
            m: 1,
            ..CfsfConfig::small()
        },
        CfsfConfig {
            clusters: 1,
            ..CfsfConfig::small()
        },
        CfsfConfig {
            clusters: 1000,
            ..CfsfConfig::small()
        },
        CfsfConfig {
            candidate_factor: 1,
            ..CfsfConfig::small()
        },
    ] {
        let model = Cfsf::fit(m, config.clone()).unwrap();
        for u in (0..m.num_users()).step_by(19) {
            for i in (0..m.num_items()).step_by(23) {
                if let Some(r) = model.predict(UserId::from(u), ItemId::from(i)) {
                    assert!(
                        r.is_finite() && (1.0..=5.0).contains(&r),
                        "{config:?}: got {r}"
                    );
                }
            }
        }
    }
}

#[test]
fn loader_rejects_garbage_but_never_panics() {
    for garbage in [
        "not a rating file",
        "1\t2",
        "1\t2\tNaN\t0",
        "0\t0\t0\t0",
        "1\t1\t99\t0",
        "\u{0}\u{1}\u{2}",
        "1 1 5 extra fields here are fine 123",
    ] {
        // must return Err or Ok, never panic
        let _ = cfsf::data::load_movielens_str(garbage, "fuzz");
    }
    // empty input errors cleanly
    assert!(cfsf::data::load_movielens_str("", "empty").is_err());
}

#[test]
fn whole_pipeline_works_on_a_non_movielens_scale() {
    // Nothing in the stack may hardcode 1..=5: run end-to-end on 1..=10.
    use cf_matrix::RatingScale;
    let d = SyntheticConfig {
        scale: RatingScale::new(1.0, 10.0),
        base_rating: 5.5,
        affinity_strength: 2.0,
        user_bias_sd: 1.0,
        noise_sd: 1.0,
        ..SyntheticConfig::small()
    }
    .generate();
    let split = Protocol::new(TrainSize::Users(40), GivenN::Given5, 20)
        .split(&d)
        .unwrap();
    let model = Cfsf::fit(&split.train, CfsfConfig::small()).unwrap();
    let eval = cfsf::eval::evaluate(&model, &split.holdout);
    assert!(eval.mae.is_finite() && eval.mae < 4.0, "MAE {}", eval.mae);
    for u in (0..d.matrix.num_users()).step_by(9) {
        for i in (0..d.matrix.num_items()).step_by(13) {
            if let Some(r) = model.predict(UserId::from(u), ItemId::from(i)) {
                assert!((1.0..=10.0).contains(&r), "({u},{i}) -> {r}");
            }
        }
    }
    // baselines respect the scale too
    let sur = Sur::fit_default(&split.train);
    for cell in split.holdout.iter().take(50) {
        let r = sur.predict(cell.user, cell.item).unwrap();
        assert!((1.0..=10.0).contains(&r));
    }
}

#[test]
fn protocol_with_minimal_populations() {
    let d = SyntheticConfig::small().generate();
    // 1 training user, 1 test user
    let split = Protocol::new(TrainSize::Users(1), GivenN::Custom(1), 1)
        .split(&d)
        .unwrap();
    assert!(!split.holdout.is_empty());
    let model = Cfsf::fit(
        &split.train,
        CfsfConfig {
            clusters: 1,
            k: 1,
            m: 1,
            ..CfsfConfig::paper()
        },
    )
    .unwrap();
    let eval = cfsf::eval::evaluate(&model, &split.holdout);
    assert!(eval.mae.is_finite());
}

#[test]
fn recommendations_on_a_user_who_rated_everything() {
    let mut b = MatrixBuilder::with_dims(3, 4);
    for i in 0..4u32 {
        b.push(UserId::new(0), ItemId::new(i), 4.0 - (i % 3) as f64);
        b.push(UserId::new(1), ItemId::new(i), 2.0 + (i % 3) as f64);
    }
    b.push(UserId::new(2), ItemId::new(0), 5.0);
    let m = b.build().unwrap();
    let model = Cfsf::fit(
        &m,
        CfsfConfig {
            clusters: 1,
            k: 2,
            m: 2,
            ..CfsfConfig::paper()
        },
    )
    .unwrap();
    // user 0 rated every item: nothing to recommend
    assert!(model.recommend_top_n(UserId::new(0), 5).is_empty());
    // user 2 rated one item: three candidates
    assert_eq!(model.recommend_top_n(UserId::new(2), 5).len(), 3);
}
