//! End-to-end integration: dataset → protocol → offline fit → online
//! predictions → MAE, across crate boundaries.

use cfsf::prelude::*;

fn dataset() -> Dataset {
    SyntheticConfig {
        num_users: 150,
        num_items: 200,
        mean_ratings_per_user: 35.0,
        min_ratings_per_user: 22,
        ..SyntheticConfig::movielens()
    }
    .with_seed(99)
    .generate()
}

fn config() -> CfsfConfig {
    // The substrate-tuned operating point (see EXPERIMENTS.md): fewer,
    // larger clusters than the paper's MovieLens extract wanted, a wider
    // neighborhood, and a higher original-rating weight.
    CfsfConfig {
        clusters: 8,
        k: 30,
        m: 30,
        w: 0.6,
        lambda: 0.9,
        ..CfsfConfig::paper()
    }
}

#[test]
fn full_pipeline_produces_sane_mae() {
    let data = dataset();
    let split = Protocol::new(TrainSize::Users(100), GivenN::Given10, 50)
        .split(&data)
        .unwrap();
    let model = Cfsf::fit(&split.train, config()).unwrap();
    let eval = cfsf::eval::evaluate(&model, &split.holdout);
    // On a 1–5 scale, anything near or above 1.0 means the model learned
    // nothing; the generator's structure supports far better.
    assert!(eval.mae < 0.95, "MAE {}", eval.mae);
    assert!(
        eval.rmse >= eval.mae,
        "RMSE {} < MAE {}",
        eval.rmse,
        eval.mae
    );
    assert!(eval.coverage > 0.99, "coverage {}", eval.coverage);
}

#[test]
fn cfsf_beats_plain_item_and_user_baselines() {
    let data = dataset();
    let split = Protocol::new(TrainSize::Users(100), GivenN::Given10, 50)
        .split(&data)
        .unwrap();
    let cfsf = Cfsf::fit(&split.train, config()).unwrap();
    let sur = Sur::fit_default(&split.train);
    let sir = Sir::fit_default(&split.train);
    let mae_cfsf = evaluate_mae(&cfsf, &split.holdout);
    let mae_sur = evaluate_mae(&sur, &split.holdout);
    let mae_sir = evaluate_mae(&sir, &split.holdout);
    assert!(
        mae_cfsf < mae_sur && mae_cfsf < mae_sir,
        "CFSF {mae_cfsf} vs SUR {mae_sur} / SIR {mae_sir}"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let data = dataset();
        let split = Protocol::new(TrainSize::Users(100), GivenN::Given5, 50)
            .split(&data)
            .unwrap();
        let model = Cfsf::fit(&split.train, config()).unwrap();
        evaluate_mae(&model, &split.holdout)
    };
    assert_eq!(run(), run());
}

#[test]
fn every_algorithm_handles_the_same_split() {
    let data = dataset();
    let split = Protocol::new(TrainSize::Users(100), GivenN::Given5, 50)
        .split(&data)
        .unwrap();
    let train = &split.train;
    let models: Vec<Box<dyn cf_matrix::Predictor>> = vec![
        Box::new(Cfsf::fit(train, config()).unwrap()),
        Box::new(Sur::fit_default(train)),
        Box::new(Sir::fit_default(train)),
        Box::new(SimilarityFusion::fit_default(train)),
        Box::new(Emdp::fit_default(train)),
        Box::new(Scbpcc::fit_default(train)),
        Box::new(AspectModel::fit_default(train)),
        Box::new(PersonalityDiagnosis::fit_default(train)),
    ];
    for model in &models {
        let eval = cfsf::eval::evaluate(model.as_ref(), &split.holdout);
        assert!(
            eval.mae > 0.0 && eval.mae < 1.6,
            "{}: implausible MAE {}",
            model.name(),
            eval.mae
        );
    }
    // names are the paper's labels, all distinct
    let mut names: Vec<&str> = models.iter().map(|m| m.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), models.len());
}

#[test]
fn recommendations_come_from_unrated_items_and_respect_n() {
    let data = dataset();
    let model = Cfsf::fit(&data.matrix, config()).unwrap();
    for u in [0usize, 7, 42] {
        let user = UserId::from(u);
        let recs = model.recommend_top_n(user, 7);
        assert!(recs.len() <= 7);
        for (item, score) in recs {
            assert!(!data.matrix.is_rated(user, item));
            assert!((1.0..=5.0).contains(&score));
        }
    }
}

#[test]
fn movielens_roundtrip_preserves_model_input() {
    let data = dataset();
    let mut buf = Vec::new();
    cfsf::data::save_movielens(&data.matrix, &mut buf).unwrap();
    let reloaded =
        cfsf::data::load_movielens_str(std::str::from_utf8(&buf).unwrap(), "rt").unwrap();
    assert_eq!(reloaded.matrix.num_ratings(), data.matrix.num_ratings());
    // identical MAE on an identical protocol proves the matrices agree
    let p = Protocol::new(TrainSize::Users(100), GivenN::Given5, 50);
    let a = p.split(&data).unwrap();
    let b = p.split(&reloaded).unwrap();
    let ma = Cfsf::fit(&a.train, config()).unwrap();
    let mb = Cfsf::fit(&b.train, config()).unwrap();
    assert_eq!(evaluate_mae(&ma, &a.holdout), evaluate_mae(&mb, &b.holdout));
}
