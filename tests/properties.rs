//! Cross-crate property-based tests: the protocol and the full CFSF
//! pipeline under arbitrary (but valid) inputs.

use cfsf::prelude::*;
use proptest::prelude::*;

/// Strategy: a small random rating dataset via the seeded generator —
/// proptest explores seeds and dimensions, the generator guarantees a
/// valid matrix.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (20usize..60, 30usize..80, 0u64..1000).prop_map(|(users, items, seed)| {
        SyntheticConfig {
            num_users: users,
            num_items: items,
            mean_ratings_per_user: 12.0,
            min_ratings_per_user: 8,
            taste_groups: 3,
            genres: 4,
            ..SyntheticConfig::movielens()
        }
        .with_seed(seed)
        .generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn protocol_partitions_test_profiles(
        dataset in arb_dataset(),
        given in 1usize..6,
        seed in 0u64..100,
    ) {
        let test_users = dataset.matrix.num_users() / 4;
        let train_users = dataset.matrix.num_users() / 2;
        let split = Protocol::new(
            TrainSize::Users(train_users),
            GivenN::Custom(given),
            test_users,
        )
        .with_seed(seed)
        .split(&dataset)
        .unwrap();

        // 1. Holdout cells never appear in the training matrix and carry
        //    the true rating.
        for cell in &split.holdout {
            prop_assert_eq!(split.train.get(cell.user, cell.item), None);
            prop_assert_eq!(dataset.matrix.get(cell.user, cell.item), Some(cell.rating));
        }
        // 2. Every test user's profile splits exactly into revealed +
        //    held-out.
        for user in split.test_users() {
            let revealed = split.train.user_count(user);
            let held = split.holdout.iter().filter(|c| c.user == user).count();
            prop_assert_eq!(revealed + held, dataset.matrix.user_count(user));
            prop_assert!(revealed <= given);
        }
        // 3. Training users keep full profiles.
        for u in 0..train_users {
            let u = UserId::from(u);
            prop_assert_eq!(split.train.user_count(u), dataset.matrix.user_count(u));
        }
    }

    #[test]
    fn cfsf_predictions_always_land_on_scale(
        dataset in arb_dataset(),
        lambda in 0.0f64..=1.0,
        delta in 0.0f64..=1.0,
        w in 0.01f64..=0.99,
    ) {
        let config = CfsfConfig {
            clusters: 4,
            k: 8,
            m: 12,
            lambda,
            delta,
            w,
            ..CfsfConfig::paper()
        };
        let model = Cfsf::fit(&dataset.matrix, config).unwrap();
        for u in (0..dataset.matrix.num_users()).step_by(11) {
            for i in (0..dataset.matrix.num_items()).step_by(13) {
                if let Some(r) = cf_matrix::Predictor::predict(
                    &model,
                    UserId::from(u),
                    ItemId::from(i),
                ) {
                    prop_assert!((1.0..=5.0).contains(&r), "({u},{i}) -> {r}");
                }
            }
        }
    }

    #[test]
    fn evaluation_is_invariant_to_holdout_order(
        dataset in arb_dataset(),
        seed in 0u64..50,
    ) {
        let test_users = dataset.matrix.num_users() / 4;
        let split = Protocol::new(
            TrainSize::Users(dataset.matrix.num_users() / 2),
            GivenN::Custom(4),
            test_users,
        )
        .with_seed(seed)
        .split(&dataset)
        .unwrap();
        prop_assume!(!split.holdout.is_empty());
        let model = Sur::fit_default(&split.train);
        let forward = evaluate_mae(&model, &split.holdout);
        let mut reversed = split.holdout.clone();
        reversed.reverse();
        let backward = evaluate_mae(&model, &reversed);
        prop_assert!((forward - backward).abs() < 1e-12);
    }

    #[test]
    fn stats_are_internally_consistent(dataset in arb_dataset()) {
        let s = dataset.stats();
        prop_assert!(s.active_users <= s.num_users);
        prop_assert!(s.active_items <= s.num_items);
        prop_assert!(s.density >= 0.0 && s.density <= 1.0);
        prop_assert!(s.min_rating >= 1.0 && s.max_rating <= 5.0);
        prop_assert!(s.min_ratings_per_user <= s.max_ratings_per_user);
        let implied = s.avg_ratings_per_user * s.active_users as f64;
        prop_assert!((implied - s.num_ratings as f64).abs() < 1e-6);
    }
}
