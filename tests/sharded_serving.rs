//! End-to-end test of the sharded serving fleet as real processes: two
//! `cfsf-cli serve --serve` shards and one `cfsf_router` front, spawned
//! from the built binaries, speaking the wire protocol over loopback.
//!
//! The acceptance criterion this file exists for: killing one of N
//! shards mid-load causes ZERO router request errors — the dead shard's
//! users degrade down the ladder (`online.degrade.*` rises on the
//! router's metrics endpoint) while every request keeps answering.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use cf_faultinject::ChildGuard;
use cf_serve::client::{ClientOptions, ShardClient};
use cf_serve::frame::{Request, Response};
use cf_serve::router::shard_for_user;
use cfsf::prelude::*;

/// Reads lines from `pipe` until one contains `marker`, returning the
/// rest of that line, then hands the pipe to a drain thread: closing the
/// read end would SIGPIPE/panic the child on its next print.
fn await_line(pipe: impl Read + Send + 'static, marker: &str) -> Option<String> {
    let mut reader = BufReader::new(pipe);
    let mut found = None;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                if let Some((_, rest)) = line.rsplit_once(marker) {
                    found = Some(rest.trim().to_string());
                    break;
                }
            }
        }
    }
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            match reader.read_line(&mut sink) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    });
    found
}

/// Spawns a binary and parses the `... listening on ADDR` line from its
/// stdout, returning the guard and the bound address.
fn spawn_listening(mut cmd: Command, what: &str) -> (ChildGuard, String) {
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    let child = cmd.spawn().unwrap_or_else(|e| panic!("spawn {what}: {e}"));
    let mut guard = ChildGuard::new(child, what);
    let stdout = guard
        .child_mut()
        .and_then(|c| c.stdout.take())
        .expect("stdout piped");
    let addr = await_line(stdout, "listening on ")
        .unwrap_or_else(|| panic!("{what} never printed its listening line"));
    (guard, addr)
}

/// Scrapes `GET /stats.json` from the router's metrics endpoint.
fn scrape_stats(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("metrics endpoint reachable");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    write!(
        stream,
        "GET /stats.json HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut body = String::new();
    let _ = stream.read_to_string(&mut body);
    body
}

/// Pulls counter `name` out of a `/stats.json` scrape.
fn counter_in(stats: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let at = stats
        .find(&needle)
        .unwrap_or_else(|| panic!("{name} missing from stats: {stats}"));
    stats[at + needle.len()..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not a number in stats"))
}

fn degrade_total_in(stats: &str) -> u64 {
    [
        "online.degrade.full",
        "online.degrade.partial_fusion",
        "online.degrade.single_estimator",
        "online.degrade.cluster_smoothed",
        "online.degrade.user_mean",
        "online.degrade.global_mean",
    ]
    .iter()
    .map(|n| {
        let needle = format!("\"{n}\":");
        stats.find(&needle).map_or(0, |at| {
            stats[at + needle.len()..]
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap_or(0)
        })
    })
    .sum()
}

#[test]
fn sharded_fleet_round_trips_and_survives_shard_kill() {
    // --- train and persist the model the whole fleet serves ------------
    let dataset = SyntheticConfig::small().generate();
    let model = Arc::new(Cfsf::fit(&dataset.matrix, CfsfConfig::small()).expect("valid config"));
    let dir = std::env::temp_dir().join(format!("cfsf-sharded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.cfsf");
    model.save_to_file(&model_path).expect("model saves");

    // --- spawn 2 shards + router from the real binaries -----------------
    let cli = env!("CARGO_BIN_EXE_cfsf_cli");
    let router_bin = env!("CARGO_BIN_EXE_cfsf_router");
    let mut shards = Vec::new();
    let mut shard_addrs = Vec::new();
    for shard_id in 0..2u32 {
        let mut cmd = Command::new(cli);
        cmd.arg("serve")
            .arg(&model_path)
            .args(["--serve", "127.0.0.1:0", "--shard-id"])
            .arg(shard_id.to_string());
        let (guard, addr) = spawn_listening(cmd, &format!("shard {shard_id}"));
        shards.push(guard);
        shard_addrs.push(addr);
    }
    let mut cmd = Command::new(router_bin);
    cmd.args(["--shards", &shard_addrs.join(",")])
        .args(["--listen", "127.0.0.1:0"])
        .args(["--serve-metrics", "127.0.0.1:0"])
        .args(["--retries", "1", "--down-cooldown-ms", "200"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let child = cmd.spawn().expect("spawn router");
    let mut router_guard = ChildGuard::new(child, "router");
    // The telemetry line goes to stderr before the router connects to its
    // shards; the listening line goes to stdout after. Both are tiny, so
    // reading them in that order cannot deadlock on pipe buffers.
    let stderr = router_guard
        .child_mut()
        .and_then(|c| c.stderr.take())
        .expect("stderr piped");
    let metrics_addr = await_line(stderr, "telemetry endpoint on http://")
        .expect("router never printed its telemetry line");
    let metrics_addr = metrics_addr.trim_end_matches('/');
    let stdout = router_guard
        .child_mut()
        .and_then(|c| c.stdout.take())
        .expect("stdout piped");
    let router_addr =
        await_line(stdout, "listening on ").expect("router never printed its listening line");

    // --- phase 1: the fleet answers bit-for-bit ------------------------
    let mut client = ShardClient::connect(router_addr.as_str(), ClientOptions::default())
        .expect("router reachable");
    let users = model.matrix().num_users() as u32;
    let items = model.matrix().num_items() as u32;
    for user in (0..users).step_by(5) {
        for item in (0..items).step_by(11) {
            let local = model
                .predict_with_breakdown(UserId::new(user), ItemId::new(item))
                .unwrap();
            match client.request(&Request::predict(user, item)).unwrap() {
                Response::Prediction(p) => {
                    assert_eq!(
                        p.fused.to_bits(),
                        local.fused.to_bits(),
                        "remote predict for ({user},{item}) must be bit-for-bit"
                    );
                }
                other => panic!("predict answered {other:?}"),
            }
        }
        let local: Vec<(u32, u64)> = model
            .recommend_top_n(UserId::new(user), 5)
            .iter()
            .map(|(i, s)| (i.raw(), s.to_bits()))
            .collect();
        match client
            .request(&Request::recommend_top_n(user, 5, 0, u32::MAX))
            .unwrap()
        {
            Response::TopN(remote) => {
                let remote: Vec<(u32, u64)> =
                    remote.iter().map(|(i, s)| (*i, s.to_bits())).collect();
                assert_eq!(
                    remote, local,
                    "scatter-gather top-N for user {user} must merge bit-for-bit"
                );
            }
            other => panic!("recommend answered {other:?}"),
        }
    }

    let stats = scrape_stats(metrics_addr);
    assert_eq!(counter_in(&stats, "router.request_errors"), 0);
    let degrade_before = degrade_total_in(&stats);

    // --- phase 2: murder shard 1 mid-load -------------------------------
    shards[1].kill_now();

    let mut dead_users = 0u64;
    for user in 0..users {
        match client.request(&Request::predict(user, 0)).unwrap() {
            Response::Prediction(p) => {
                assert!(p.fused.is_finite());
                if shard_for_user(user, 2) == 1 {
                    dead_users += 1;
                    assert!(
                        p.fallback,
                        "user {user} lives on the dead shard: must be served degraded"
                    );
                }
            }
            other => panic!("predict after shard kill answered {other:?}"),
        }
    }
    assert!(dead_users > 0, "the hash must place users on shard 1");

    // Recommends still answer from the surviving stripe.
    match client
        .request(&Request::recommend_top_n(0, 5, 0, u32::MAX))
        .unwrap()
    {
        Response::TopN(items) => {
            assert!(!items.is_empty(), "surviving stripe must contribute items")
        }
        other => panic!("recommend after shard kill answered {other:?}"),
    }

    // --- the acceptance criterion ---------------------------------------
    let stats = scrape_stats(metrics_addr);
    assert_eq!(
        counter_in(&stats, "router.request_errors"),
        0,
        "a dead shard must cost zero router errors"
    );
    assert!(
        degrade_total_in(&stats) >= degrade_before + dead_users,
        "every dead-shard user must step down the online.degrade.* ladder"
    );
    assert!(counter_in(&stats, "router.fallback_served") >= dead_users);

    let _ = std::fs::remove_dir_all(&dir);
}
