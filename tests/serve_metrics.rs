//! End-to-end telemetry: the live endpoint serves valid Prometheus text,
//! the JSON snapshot, and captured traces — including an exemplar trace
//! for a forced-degraded request — both in-process (the component the
//! `--serve-metrics` flag binds) and through the actual CLI binary.

use cfsf::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Minimal HTTP GET against the telemetry endpoint.
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry endpoint");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).expect("status line");
    let mut content_len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some(v) = trimmed
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_len = v;
        }
    }
    let mut body = vec![0u8; content_len];
    reader.read_exact(&mut body).expect("body");
    (
        status.trim().to_string(),
        String::from_utf8(body).expect("utf8 body"),
    )
}

/// A model where `DEGRADED_USER` is forced onto the fallback region of
/// the degradation ladder: the user has no ratings (so no estimator can
/// fire) and smoothing is off (so the smoothed-cell rung is skipped) —
/// every prediction for them is served from user/global mean, which is
/// `DegradeLevel::is_fallback()` territory.
const DEGRADED_USER: usize = 79;

fn forced_degraded_model() -> Cfsf {
    let dataset = SyntheticConfig::small().generate();
    let m = &dataset.matrix;
    let mut b = cf_matrix::MatrixBuilder::with_dims(m.num_users(), m.num_items()).scale(m.scale());
    for u in 0..m.num_users() {
        if u == DEGRADED_USER {
            continue;
        }
        let (items, vals) = m.user_row(UserId::from(u));
        for (&i, &r) in items.iter().zip(vals) {
            b.push(UserId::from(u), i, r);
        }
    }
    let matrix = b.build().expect("rebuilt matrix is valid");
    let mut cfg = CfsfConfig::small();
    cfg.use_smoothing = false;
    Cfsf::fit(&matrix, cfg).expect("fit succeeds")
}

/// Every non-comment exposition line must be `name{labels} value` with a
/// Prometheus-grammar metric name and a parseable float value.
fn assert_prometheus_format(text: &str) {
    let mut series = 0usize;
    for line in text.lines() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let name_end = line
            .find([' ', '{'])
            .unwrap_or_else(|| panic!("series line without name/value separator: {line:?}"));
        let name = &line[..name_end];
        assert!(
            !name.is_empty()
                && !name.starts_with(|c: char| c.is_ascii_digit())
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name in line {line:?}"
        );
        let value = line.rsplit(' ').next().expect("value field");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in line {line:?}"
        );
        series += 1;
    }
    assert!(series > 10, "suspiciously few series: {series}");
}

#[test]
fn endpoint_serves_metrics_and_a_degraded_exemplar_trace() {
    let model = forced_degraded_model();

    // Drive a mixed workload: healthy users plus the degraded one. The
    // degraded user's requests are tail-kept regardless of head sampling.
    for u in 0..40usize {
        for i in (0..model.matrix().num_items()).step_by(13) {
            let _ = model.predict_with_breakdown(UserId::from(u), ItemId::from(i));
        }
    }
    let degraded = model
        .predict_with_breakdown(UserId::from(DEGRADED_USER), ItemId::from(3usize))
        .expect("ladder always serves in-range requests");
    assert!(
        degraded.used_fallback,
        "user without ratings must be served from the fallback region, got {:?}",
        degraded.level
    );

    let server = cf_obs::serve::MetricsServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    // --- /metrics: valid Prometheus text carrying the serving metrics,
    // derived gauges, and at least one trace exemplar.
    let (status, metrics) = http_get(&addr, "/metrics");
    assert!(status.contains("200 OK"), "{status}");
    assert_prometheus_format(&metrics);
    assert!(
        metrics.contains("cfsf_online_predictions_total"),
        "{metrics}"
    );
    assert!(metrics.contains("cfsf_online_request_ns{quantile=\"0.99\"}"));
    assert!(metrics.contains("cfsf_online_degrade_global_mean_total"));
    assert!(
        metrics.contains("cfsf_online_cache_hit_ratio_pm"),
        "derived gauges must refresh on scrape"
    );
    assert!(
        metrics.contains("cfsf_trace_exemplar{metric=\"online.request_ns\""),
        "p99 buckets must link to captured traces:\n{metrics}"
    );

    // --- /stats.json: dotted names untouched.
    let (status, json) = http_get(&addr, "/stats.json");
    assert!(status.contains("200 OK"), "{status}");
    assert!(json.contains("\"online.predictions\""), "{json}");
    assert!(json.contains("\"online.request_ns\""), "{json}");

    // --- /traces: the forced-degraded request is captured with full
    // attribution, and its trace id matches an exported exemplar.
    let (status, traces) = http_get(&addr, "/traces");
    assert!(status.contains("200 OK"), "{status}");
    assert!(
        traces.contains(&format!("user={DEGRADED_USER}")),
        "degraded user's trace must be tail-kept:\n{traces}"
    );
    assert!(
        traces.contains("[degraded]") || traces.contains("+degraded"),
        "{traces}"
    );
    let exemplar_ids: Vec<u64> = cf_obs::trace::exemplars()
        .iter()
        .map(|(_, _, e)| e.trace_id)
        .collect();
    let dump = cf_obs::trace::snapshot();
    let captured: Vec<u64> = dump
        .slow
        .iter()
        .chain(&dump.degraded)
        .chain(&dump.recent)
        .map(|t| t.id)
        .collect();
    assert!(
        exemplar_ids.iter().any(|id| captured.contains(id)),
        "every exemplar must reference a captured trace"
    );

    let (status, _) = http_get(&addr, "/definitely-not-a-route");
    assert!(status.contains("404"), "{status}");

    server.shutdown();
}

#[test]
fn cli_serve_metrics_flag_binds_and_serves() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_cfsf_cli"))
        .args([
            "--serve-metrics",
            "127.0.0.1:0",
            "--trace-sample-every",
            "4",
            "demo",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cfsf_cli");

    // The CLI prints the bound address before running the command.
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("stderr closed before announcing the endpoint")
            .expect("read stderr");
        if let Some(rest) = line.strip_prefix("telemetry endpoint on http://") {
            break rest.trim_end_matches('/').to_string();
        }
    };

    // Scrape while (or after) the demo runs; either way the listener must
    // answer with well-formed Prometheus text.
    let (status, metrics) = http_get(&addr, "/metrics");
    assert!(status.contains("200 OK"), "{status}");
    assert_prometheus_format(&metrics);

    let (status, _traces) = http_get(&addr, "/traces");
    assert!(status.contains("200 OK"), "{status}");

    child.kill().expect("kill serving CLI");
    let _ = child.wait();
}
