//! Fast shape checks of the paper's qualitative claims, run at the
//! harness's quick scale. The full paper-scale evidence lives in
//! EXPERIMENTS.md; these tests keep the claims from silently regressing.

use cfsf::eval::experiments::{ablations, scalability, sweeps, tables};
use cfsf::eval::{ExperimentContext, Scale};

fn ctx() -> ExperimentContext {
    ExperimentContext::new(Scale::Quick, 42, None)
}

fn parse_maes(rows: &[Vec<String>], method: &str) -> Vec<f64> {
    rows.iter()
        .filter(|r| r[1] == method)
        .flat_map(|r| r[2..].iter().map(|c| c.parse::<f64>().unwrap()))
        .collect()
}

#[test]
fn table2_cfsf_beats_sir_and_sur_on_most_cells() {
    let out = tables::table2(&ctx());
    let rows = &out.tables[0].rows;
    let cfsf = parse_maes(rows, "CFSF");
    let sur = parse_maes(rows, "SUR");
    let sir = parse_maes(rows, "SIR");
    assert_eq!(cfsf.len(), 9);
    let wins = cfsf
        .iter()
        .zip(sur.iter().zip(&sir))
        .filter(|(c, (u, i))| *c < u && *c < i)
        .count();
    assert!(wins >= 7, "CFSF won only {wins}/9 cells");
}

#[test]
fn table2_mae_improves_with_more_evidence() {
    let out = tables::table2(&ctx());
    let cfsf = parse_maes(&out.tables[0].rows, "CFSF");
    // chunks of 3 = (Given5, Given10, Given20) per training size
    for chunk in cfsf.chunks(3) {
        assert!(
            chunk[0] >= chunk[2],
            "Given20 should beat Given5: {chunk:?}"
        );
    }
    // largest training set at least matches the smallest, per GivenN
    for g in 0..3 {
        assert!(
            cfsf[6 + g] <= cfsf[g] + 0.02,
            "ML grows but MAE worsened: {} -> {}",
            cfsf[g],
            cfsf[6 + g]
        );
    }
}

#[test]
fn fig3_k_sweep_has_interior_optimum_shape() {
    let out = sweeps::fig3_k(&ctx());
    // column 1 = Given5 series
    let series: Vec<f64> = out.tables[0]
        .rows
        .iter()
        .map(|r| r[1].parse().unwrap())
        .collect();
    // the smallest K must not be the best: tiny neighborhoods starve
    let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        series[0] > min,
        "K sweep should improve past the smallest K"
    );
}

#[test]
fn fig7_delta_one_is_worse_than_small_delta() {
    let out = sweeps::fig7_delta(&ctx());
    for g in 1..=3 {
        let series: Vec<f64> = out.tables[0]
            .rows
            .iter()
            .map(|r| r[g].parse().unwrap())
            .collect();
        let first = series[0];
        let last = *series.last().unwrap();
        assert!(
            last > first,
            "pure SUIR' (delta=1) must be worse than delta=0: {first} vs {last}"
        );
    }
}

#[test]
fn fig5_cfsf_is_faster_than_scbpcc() {
    let out = scalability::fig5(&ctx());
    // The last row of each training set block is the 100% point:
    // columns are [train, pct, cells, cfsf, scbpcc].
    let mut checked = 0;
    for row in &out.tables[0].rows {
        if row[1] == "100%" {
            let cfsf: f64 = row[3].parse().unwrap();
            let scb: f64 = row[4].parse().unwrap();
            assert!(
                cfsf < scb,
                "CFSF ({cfsf}s) should be faster than SCBPCC ({scb}s)"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 3);
}

#[test]
fn ablation_table_is_complete_and_local_beats_global_latency() {
    let out = ablations::ablations(&ctx());
    let rows = &out.tables[0].rows;
    assert_eq!(rows.len(), 5);
    let time = |label: &str| -> f64 {
        rows.iter()
            .find(|r| r[0].starts_with(label))
            .unwrap_or_else(|| panic!("row {label}"))[2]
            .parse()
            .unwrap()
    };
    // The local M×K online phase must be faster than SF's global fusion.
    assert!(time("CFSF (full)") < time("global fusion"));
}

#[test]
fn table1_matches_generator_contract() {
    let c = ctx();
    let out = tables::table1(&c);
    let rows = &out.tables[0].rows;
    let get = |label: &str| -> String {
        rows.iter()
            .find(|r| r[0] == label)
            .unwrap_or_else(|| panic!("row {label}"))[1]
            .clone()
    };
    assert_eq!(get("No. of users"), "200");
    assert_eq!(get("No. of items"), "300");
    assert_eq!(get("No. of rating values"), "5");
}
