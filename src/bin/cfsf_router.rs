//! `cfsf_router` — the front tier of the sharded serving fleet.
//!
//! ```text
//! cfsf_router --shards HOST:PORT,HOST:PORT,... --listen ADDR
//!             [--serve-metrics ADDR] [--max-in-flight N]
//!             [--retries N] [--down-cooldown-ms N]
//!             [--profile-poll-ms N] [--stats-poll-ms N]
//!             [--slo-p999-ms N] [--slo-degrade-pm N]
//!             [--slo-report PATH] [--trace-sample-every N]
//! ```
//!
//! Connects to every shard (each a `cfsf-cli serve <model> --serve ADDR`
//! process), verifies they serve the same model shape, and then speaks
//! the identical wire protocol to downstream clients on `--listen`:
//! predicts route to the user's owning shard, top-N recommendations
//! scatter-gather across all shard stripes, and a dead or saturated
//! shard load-sheds onto the degradation ladder (`online.degrade.*`)
//! instead of surfacing errors.
//!
//! `--serve-metrics ADDR` binds the usual observability endpoint
//! (`/metrics`, `/stats.json`, `/traces`) so `router.*` health counters
//! are scrapeable while the router runs.
//!
//! `--profile-poll-ms N` (default 5000, 0 disables) polls a live
//! shard's health frame every N ms and, when the shard reports a newer
//! model generation — a self-healing shard rebuilt in the background —
//! re-fetches the fallback profile so the router's degradation table
//! tracks the served model instead of the one from boot.
//!
//! `--stats-poll-ms N` (default 1000, 0 disables) polls every shard's
//! mergeable metrics snapshot (`Stats` frames) and folds them into the
//! fleet aggregator: `/metrics` then carries merged `cfsf_fleet_*`
//! series plus the same families labelled `shard="N"`, `/stats.json`
//! gains a `"fleet"` section, and the SLO engine — request p999 ≤
//! `--slo-p999-ms` (default 50) and degrade rate ≤ `--slo-degrade-pm`
//! per mille (default 100) — publishes multi-window burn-rate gauges.
//! `--slo-report PATH` additionally rewrites the SLO report JSON at
//! PATH on every poll. `--trace-sample-every N` head-samples every Nth
//! request into a captured trace (0 disables; sampled requests also
//! propagate their trace context to the shards, which ship their spans
//! back for stitching on `/traces`).

use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage("");
    }

    let shards: Vec<String> = flag(&args, "--shards")
        .unwrap_or_else(|| usage("--shards HOST:PORT,... is required"))
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if shards.is_empty() {
        usage("--shards needs at least one address");
    }
    let listen = flag(&args, "--listen").unwrap_or_else(|| usage("--listen ADDR is required"));

    let mut cfg = cf_serve::RouterConfig {
        shards,
        ..cf_serve::RouterConfig::default()
    };
    cfg.max_in_flight_per_shard = flag_num(&args, "--max-in-flight", cfg.max_in_flight_per_shard);
    cfg.retries = flag_num(&args, "--retries", cfg.retries);
    cfg.down_cooldown = Duration::from_millis(flag_num(
        &args,
        "--down-cooldown-ms",
        cfg.down_cooldown.as_millis() as u64,
    ));

    // Bind telemetry before connecting so even startup failures leave a
    // scrapeable endpoint for the few milliseconds they take.
    let metrics = flag(&args, "--serve-metrics").map(|addr| {
        let server = cf_obs::serve::MetricsServer::bind(addr.as_str()).unwrap_or_else(|e| {
            eprintln!("error: cannot bind telemetry endpoint {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!("telemetry endpoint on http://{}/", server.local_addr());
        server
    });

    let router = match cf_serve::Router::connect(cfg) {
        Ok(r) => std::sync::Arc::new(r),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let (total, _) = router.shards_up();
    eprintln!(
        "router fronting {total} shard(s): {} users x {} items",
        router.num_users(),
        router.num_items()
    );

    // Background staleness poll: keeps the fallback table tracking the
    // shards' live model generation (see module docs).
    let poll_ms: u64 = flag_num(&args, "--profile-poll-ms", 5000);
    if poll_ms > 0 {
        let router = std::sync::Arc::clone(&router);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(poll_ms));
            if router.refresh_profile_if_stale() {
                eprintln!(
                    "router: fallback profile refreshed to generation {}",
                    router.profile_generation()
                );
            }
        });
    }

    // Head-sampled tracing: every Nth request is captured, and because
    // the router propagates trace context on shard frames, the shards'
    // spans come back and stitch into one cross-process tree.
    let sample_every: u32 = flag_num(&args, "--trace-sample-every", 0);
    cf_obs::trace::set_head_sample_every(sample_every);

    // Fleet aggregation + SLO poll: merged metrics, per-shard labels,
    // burn-rate gauges, optional report file (see module docs).
    let stats_poll_ms: u64 = flag_num(&args, "--stats-poll-ms", 1000);
    let slo_report = flag(&args, "--slo-report");
    if stats_poll_ms > 0 {
        let p999_ms: u64 = flag_num(&args, "--slo-p999-ms", 50);
        let degrade_pm: u32 = flag_num(&args, "--slo-degrade-pm", 100);
        let agg = std::sync::Arc::new(cf_serve::FleetAggregator::new(
            std::sync::Arc::clone(&router),
            cf_obs::slo::serving_slos(p999_ms, degrade_pm),
        ));
        cf_obs::serve::set_scrape_extra(
            std::sync::Arc::clone(&agg) as std::sync::Arc<dyn cf_obs::serve::ScrapeExtra>
        );
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(stats_poll_ms));
            let now = std::time::Instant::now();
            agg.poll(now);
            if let Some(path) = &slo_report {
                if let Err(e) = std::fs::write(path, agg.slo_report(now)) {
                    eprintln!("router: cannot write SLO report {path}: {e}");
                }
            }
        });
    }

    let front =
        cf_serve::RouterServer::bind(listen.as_str(), router, cf_serve::ServerOptions::default())
            .unwrap_or_else(|e| {
                eprintln!("error: cannot bind router on {listen}: {e}");
                std::process::exit(1);
            });
    // The `listening on` line is the contract scripts (and the sharded
    // integration test) parse; flush it past the pipe buffer immediately.
    println!("router listening on {}", front.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let _keep_metrics = metrics;
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|p| args.get(p + 1).cloned())
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| usage(&format!("{name} needs a number"))),
        None => default,
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}\n");
    }
    eprintln!(
        "usage:\n  cfsf_router --shards HOST:PORT,HOST:PORT,... --listen ADDR\n\
         \x20             [--serve-metrics ADDR] [--max-in-flight N]\n\
         \x20             [--retries N] [--down-cooldown-ms N]\n\
         \x20             [--profile-poll-ms N]  (default 5000; 0 disables the\n\
         \x20              generation-staleness poll of the fallback profile)\n\
         \x20             [--stats-poll-ms N]  (default 1000; 0 disables fleet\n\
         \x20              metric aggregation and SLO evaluation)\n\
         \x20             [--slo-p999-ms N] [--slo-degrade-pm N]  (objectives:\n\
         \x20              request p999 ≤ N ms, degrade rate ≤ N per mille)\n\
         \x20             [--slo-report PATH]  (rewrite the SLO report JSON\n\
         \x20              at PATH on every stats poll)\n\
         \x20             [--trace-sample-every N]  (capture every Nth request\n\
         \x20              as a stitched cross-process trace; 0 disables)\n\
         \n\
         Each shard is a `cfsf-cli serve <model.cfsf> --serve ADDR` process\n\
         serving the same model. The router answers the same wire protocol\n\
         on --listen; a dead shard degrades its users onto the fallback\n\
         ladder (online.degrade.*) instead of erroring."
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}
