//! `cfsf_router` — the front tier of the sharded serving fleet.
//!
//! ```text
//! cfsf_router --shards HOST:PORT,HOST:PORT,... --listen ADDR
//!             [--serve-metrics ADDR] [--max-in-flight N]
//!             [--retries N] [--down-cooldown-ms N]
//!             [--profile-poll-ms N]
//! ```
//!
//! Connects to every shard (each a `cfsf-cli serve <model> --serve ADDR`
//! process), verifies they serve the same model shape, and then speaks
//! the identical wire protocol to downstream clients on `--listen`:
//! predicts route to the user's owning shard, top-N recommendations
//! scatter-gather across all shard stripes, and a dead or saturated
//! shard load-sheds onto the degradation ladder (`online.degrade.*`)
//! instead of surfacing errors.
//!
//! `--serve-metrics ADDR` binds the usual observability endpoint
//! (`/metrics`, `/stats.json`, `/traces`) so `router.*` health counters
//! are scrapeable while the router runs.
//!
//! `--profile-poll-ms N` (default 5000, 0 disables) polls a live
//! shard's health frame every N ms and, when the shard reports a newer
//! model generation — a self-healing shard rebuilt in the background —
//! re-fetches the fallback profile so the router's degradation table
//! tracks the served model instead of the one from boot.

use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage("");
    }

    let shards: Vec<String> = flag(&args, "--shards")
        .unwrap_or_else(|| usage("--shards HOST:PORT,... is required"))
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if shards.is_empty() {
        usage("--shards needs at least one address");
    }
    let listen = flag(&args, "--listen").unwrap_or_else(|| usage("--listen ADDR is required"));

    let mut cfg = cf_serve::RouterConfig {
        shards,
        ..cf_serve::RouterConfig::default()
    };
    cfg.max_in_flight_per_shard = flag_num(&args, "--max-in-flight", cfg.max_in_flight_per_shard);
    cfg.retries = flag_num(&args, "--retries", cfg.retries);
    cfg.down_cooldown = Duration::from_millis(flag_num(
        &args,
        "--down-cooldown-ms",
        cfg.down_cooldown.as_millis() as u64,
    ));

    // Bind telemetry before connecting so even startup failures leave a
    // scrapeable endpoint for the few milliseconds they take.
    let metrics = flag(&args, "--serve-metrics").map(|addr| {
        let server = cf_obs::serve::MetricsServer::bind(addr.as_str()).unwrap_or_else(|e| {
            eprintln!("error: cannot bind telemetry endpoint {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!("telemetry endpoint on http://{}/", server.local_addr());
        server
    });

    let router = match cf_serve::Router::connect(cfg) {
        Ok(r) => std::sync::Arc::new(r),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let (total, _) = router.shards_up();
    eprintln!(
        "router fronting {total} shard(s): {} users x {} items",
        router.num_users(),
        router.num_items()
    );

    // Background staleness poll: keeps the fallback table tracking the
    // shards' live model generation (see module docs).
    let poll_ms: u64 = flag_num(&args, "--profile-poll-ms", 5000);
    if poll_ms > 0 {
        let router = std::sync::Arc::clone(&router);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(poll_ms));
            if router.refresh_profile_if_stale() {
                eprintln!(
                    "router: fallback profile refreshed to generation {}",
                    router.profile_generation()
                );
            }
        });
    }

    let front =
        cf_serve::RouterServer::bind(listen.as_str(), router, cf_serve::ServerOptions::default())
            .unwrap_or_else(|e| {
                eprintln!("error: cannot bind router on {listen}: {e}");
                std::process::exit(1);
            });
    // The `listening on` line is the contract scripts (and the sharded
    // integration test) parse; flush it past the pipe buffer immediately.
    println!("router listening on {}", front.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let _keep_metrics = metrics;
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|p| args.get(p + 1).cloned())
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| usage(&format!("{name} needs a number"))),
        None => default,
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}\n");
    }
    eprintln!(
        "usage:\n  cfsf_router --shards HOST:PORT,HOST:PORT,... --listen ADDR\n\
         \x20             [--serve-metrics ADDR] [--max-in-flight N]\n\
         \x20             [--retries N] [--down-cooldown-ms N]\n\
         \x20             [--profile-poll-ms N]  (default 5000; 0 disables the\n\
         \x20              generation-staleness poll of the fallback profile)\n\
         \n\
         Each shard is a `cfsf-cli serve <model.cfsf> --serve ADDR` process\n\
         serving the same model. The router answers the same wire protocol\n\
         on --listen; a dead shard degrades its users onto the fallback\n\
         ladder (online.degrade.*) instead of erroring."
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}
