//! `cfsf-cli` — command-line front end for the CFSF library.
//!
//! ```text
//! cfsf-cli stats <u.data>
//! cfsf-cli evaluate <u.data> [--algo cfsf|sur|sir|sf|emdp|scbpcc|am|pd]
//!                            [--train-users N] [--test-users N] [--given N]
//! cfsf-cli recommend <u.data> --user ID [--n 10]
//! cfsf-cli train <u.data> --out model.cfsf      # persist a fitted model
//! cfsf-cli serve <model.cfsf> --user ID [--n N] # recommend from a saved model
//! cfsf-cli serve <model.cfsf> --serve ADDR [--shard-id N] [--self-heal]
//!                                               # run a wire-protocol shard server
//!                                               # (front it with cfsf_router)
//! cfsf-cli refresh-demo                         # drift-triggered zero-pause refresh
//! cfsf-cli synth [--out u.synth.data] [--small] [--seed N]
//!                                               # write a synthetic dataset in u.data format
//! cfsf-cli probe ADDR [--requests N] [--top-n N]
//!                                               # drive live traffic at a shard/router
//! cfsf-cli demo
//! ```
//!
//! `--self-heal` serves the shard through the RCU generation cell so a
//! background refresh can swap model generations without a restart;
//! drift thresholds are tunable with `--drift-mae-trip-pm`,
//! `--drift-mae-clear-pm`, `--drift-hist-trip-pm`,
//! `--drift-hist-clear-pm`, `--drift-fallback-trip-pm`,
//! `--drift-fallback-clear-pm`, `--drift-trip-windows`,
//! `--drift-cooldown-ms`, `--drift-min-observations` and
//! `--drift-full-refit-fraction`.
//!
//! `<u.data>` is the GroupLens tab-separated rating format
//! (`user item rating timestamp`, 1-based ids). `demo` runs the whole
//! pipeline on a synthetic dataset so the tool works without a download.
//!
//! Every command additionally accepts `--stats` (dump runtime metrics —
//! offline phase timings, online latency quantiles, cache hit rates — as
//! JSON on stderr when the command finishes) and `--stats-out <path>`
//! (write the same snapshot to a file, e.g. `results/obs_snapshot.json`).
//!
//! Telemetry flags (also global):
//!
//! - `--serve-metrics <addr>` — bind a live endpoint (e.g.
//!   `127.0.0.1:9898`, port `0` picks a free one) serving `/metrics`
//!   (Prometheus text), `/stats.json` and `/traces`, then keep serving
//!   after the command finishes until the process is killed;
//! - `--traces` — print the captured trace reservoirs on stderr when the
//!   command finishes;
//! - `--trace-sample-every N` — head-sample every N-th prediction
//!   (default 64; 0 disables tracing);
//! - `trace dump [--demo]` — print the reservoirs without HTTP, for
//!   headless/CI debugging (`--demo` runs a synthetic workload first).

use cf_matrix::RatingMatrix;
use cfsf::prelude::*;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Observability flags are global: strip them before dispatch so the
    // subcommands' positional parsing never sees them.
    let print_stats = take_flag(&mut args, "--stats");
    let stats_out = take_flag_value(&mut args, "--stats-out");
    let print_traces = take_flag(&mut args, "--traces");
    let serve_metrics = take_flag_value(&mut args, "--serve-metrics");
    if let Some(every) = take_flag_value(&mut args, "--trace-sample-every") {
        let n: u32 = every
            .parse()
            .unwrap_or_else(|_| usage("--trace-sample-every needs a number"));
        cf_obs::trace::set_head_sample_every(n);
    }

    // Bind before the command runs so scrapes see the offline phase live.
    let server = serve_metrics.map(|addr| {
        let server = cf_obs::serve::MetricsServer::bind(addr.as_str()).unwrap_or_else(|e| {
            eprintln!("error: cannot bind telemetry endpoint {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!("telemetry endpoint on http://{}/", server.local_addr());
        server
    });

    let Some(command) = args.first() else {
        usage("no command");
    };
    match command.as_str() {
        "stats" => cmd_stats(&args[1..]),
        "evaluate" => cmd_evaluate(&args[1..]),
        "recommend" => cmd_recommend(&args[1..]),
        "train" => cmd_train(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "refresh-demo" => cmd_refresh_demo(&args[1..]),
        "synth" => cmd_synth(&args[1..]),
        "probe" => cmd_probe(&args[1..]),
        "demo" => cmd_demo(),
        "--help" | "-h" => usage(""),
        other => usage(&format!("unknown command {other:?}")),
    }

    if print_stats {
        cf_obs::quality::refresh_derived_gauges();
        eprint!("{}", cf_obs::global().snapshot().to_json());
    }
    if let Some(path) = stats_out {
        cf_obs::quality::refresh_derived_gauges();
        if let Err(e) = cf_obs::write_snapshot_file(&path) {
            eprintln!("error: cannot write stats snapshot {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("stats snapshot written to {path}");
    }
    if print_traces {
        eprint!("{}", cf_obs::trace::render_current());
    }
    if let Some(server) = server {
        // Keep scraping available after the command's own work is done;
        // the process is ended by the operator (SIGINT/SIGKILL).
        eprintln!(
            "command finished; still serving telemetry on http://{}/ (ctrl-c to exit)",
            server.local_addr()
        );
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
}

/// `trace dump [--demo]` — print the captured trace reservoirs. With
/// `--demo`, run a synthetic workload first so the rings have content
/// (useful in CI and for trying the feature without a dataset).
fn cmd_trace(args: &[String]) {
    match args.first().map(String::as_str) {
        Some("dump") => {
            if args.iter().any(|a| a == "--demo") {
                cf_obs::trace::set_head_sample_every(8);
                let dataset = SyntheticConfig::small().generate();
                let model = Cfsf::fit(&dataset.matrix, CfsfConfig::small()).expect("valid config");
                for u in 0..dataset.matrix.num_users() {
                    for i in (0..dataset.matrix.num_items()).step_by(7) {
                        let _ = model.predict_with_breakdown(UserId::from(u), ItemId::from(i));
                    }
                }
            }
            let dump = cf_obs::trace::snapshot();
            if dump.is_empty() {
                println!(
                    "no traces captured (run with --demo for a synthetic workload, \
                     or lower --trace-sample-every)"
                );
            } else {
                print!("{}", cf_obs::trace::render(&dump));
            }
        }
        _ => usage("trace needs a subcommand: trace dump [--demo]"),
    }
}

/// Removes a boolean flag from `args`, reporting whether it was present.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}

/// Removes `name VALUE` from `args`, returning the value.
fn take_flag_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == name)?;
    if pos + 1 >= args.len() {
        usage(&format!("{name} needs a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn load(path: &str) -> Dataset {
    match cfsf::data::load_movielens(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot load {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|p| args.get(p + 1).cloned())
}

fn flag_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| usage(&format!("{name} needs a number"))),
        None => default,
    }
}

fn cmd_stats(args: &[String]) {
    let Some(path) = args.first() else {
        usage("stats needs a file");
    };
    let dataset = load(path);
    println!("dataset: {}", dataset.name);
    print!("{}", dataset.stats());
}

fn cmd_evaluate(args: &[String]) {
    let Some(path) = args.first() else {
        usage("evaluate needs a file");
    };
    let dataset = load(path);
    let total = dataset.matrix.num_users();
    let test_users = flag_num(args, "--test-users", (total / 4).max(1));
    let train_users = flag_num(args, "--train-users", total.saturating_sub(test_users));
    let given = flag_num(args, "--given", 10usize);
    let algo = flag(args, "--algo").unwrap_or_else(|| "cfsf".into());

    let split = match Protocol::new(
        TrainSize::Users(train_users),
        GivenN::Custom(given),
        test_users,
    )
    .split(&dataset)
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "split {}: {} training ratings, {} holdout cells",
        split.label,
        split.train.num_ratings(),
        split.holdout.len()
    );
    let model = fit(&algo, &split.train);
    let eval = cfsf::eval::evaluate(model.as_ref(), &split.holdout);
    println!(
        "{}: MAE {:.4}, RMSE {:.4}, coverage {:.1}%",
        model.name(),
        eval.mae,
        eval.rmse,
        eval.coverage * 100.0
    );
}

fn cmd_recommend(args: &[String]) {
    let Some(path) = args.first() else {
        usage("recommend needs a file");
    };
    let dataset = load(path);
    let user: u32 = flag_num(args, "--user", u32::MAX);
    if user == u32::MAX {
        usage("recommend needs --user ID (1-based, as in the file)");
    }
    let n = flag_num(args, "--n", 10usize);
    // File ids are 1-based; internal are 0-based.
    let uid = UserId::new(user.saturating_sub(1));
    if uid.index() >= dataset.matrix.num_users() {
        eprintln!("error: user {user} not in the dataset");
        std::process::exit(1);
    }
    let model = Cfsf::fit(&dataset.matrix, CfsfConfig::paper()).expect("valid config");
    println!("top-{n} recommendations for user {user}:");
    for (rank, (item, score)) in model.recommend_top_n(uid, n).into_iter().enumerate() {
        println!(
            "  {:>2}. item {:<6} predicted {score:.2}",
            rank + 1,
            item.raw() + 1
        );
    }
}

fn cmd_train(args: &[String]) {
    let Some(path) = args.first() else {
        usage("train needs a file");
    };
    let out = flag(args, "--out").unwrap_or_else(|| "model.cfsf".into());
    let dataset = load(path);
    println!(
        "training CFSF on {} ({} ratings)...",
        dataset.name,
        dataset.matrix.num_ratings()
    );
    let t = std::time::Instant::now();
    let model = Cfsf::fit(&dataset.matrix, CfsfConfig::paper()).expect("valid config");
    println!("offline phase done in {:.2}s", t.elapsed().as_secs_f64());
    model.save_to_file(&out).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!("saved {out} ({:.1} MiB)", bytes as f64 / (1024.0 * 1024.0));
}

/// `synth [--out PATH] [--small] [--seed N]` — write a seeded synthetic
/// MovieLens-like dataset in `u.data` format. Every downstream command
/// (`stats`/`evaluate`/`train`) accepts the output, so the whole
/// pipeline — including the sharded fleet — runs offline without a
/// download.
fn cmd_synth(args: &[String]) {
    let out = flag(args, "--out").unwrap_or_else(|| "u.synth.data".into());
    let mut cfg = if args.iter().any(|a| a == "--small") {
        SyntheticConfig::small()
    } else {
        SyntheticConfig::movielens()
    };
    cfg.seed = flag_num(args, "--seed", cfg.seed);
    let dataset = cfg.generate();
    let mut buf = Vec::new();
    cfsf::data::save_movielens(&dataset.matrix, &mut buf).expect("in-memory write cannot fail");
    std::fs::write(&out, &buf).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!(
        "wrote {out}: {} users × {} items, {} ratings (seed {})",
        dataset.matrix.num_users(),
        dataset.matrix.num_items(),
        dataset.matrix.num_ratings(),
        cfg.seed
    );
}

/// `probe ADDR [--requests N] [--top-n N]` — drive live predict and
/// top-N traffic at a shard or router over the wire protocol and print
/// a latency summary. The shell-scriptable load source for fleet smoke
/// tests and SLO report generation (`scripts/slo_report.sh`).
fn cmd_probe(args: &[String]) {
    use cf_serve::client::{ClientOptions, ShardClient};
    use cf_serve::frame::{Request, Response};
    let Some(addr) = args.first() else {
        usage("probe needs an address (HOST:PORT of a shard or router)");
    };
    let requests: u32 = flag_num(args, "--requests", 200);
    let top_n: u32 = flag_num(args, "--top-n", 10);
    let mut client =
        ShardClient::connect(addr.as_str(), ClientOptions::default()).unwrap_or_else(|e| {
            eprintln!("error: cannot connect to {addr}: {e}");
            std::process::exit(1);
        });
    let (users, items) = match client.request(&Request::Health) {
        Ok(Response::Health(h)) => (h.num_users.max(1) as u32, h.num_items.max(1) as u32),
        Ok(other) => {
            eprintln!("error: health probe answered {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: health probe failed: {e}");
            std::process::exit(1);
        }
    };
    let mut lat = Vec::with_capacity(requests as usize);
    let mut fallbacks = 0u64;
    for i in 0..requests {
        // Coprime strides spread the probes across users and items.
        let user = i.wrapping_mul(7919) % users;
        let req = if top_n > 0 && i % 16 == 0 {
            Request::recommend_top_n(user, top_n, 0, u32::MAX)
        } else {
            Request::predict(user, i.wrapping_mul(104_729) % items)
        };
        let t = std::time::Instant::now();
        match client.request(&req) {
            Ok(Response::Prediction(p)) => fallbacks += u64::from(p.fallback),
            Ok(Response::TopN(_)) => {}
            Ok(other) => {
                eprintln!("error: probe answered {other:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: probe request failed: {e}");
                std::process::exit(1);
            }
        }
        lat.push(t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }
    if lat.is_empty() {
        println!("probed {addr}: 0 requests");
        return;
    }
    lat.sort_unstable();
    let q = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    println!(
        "probed {addr}: {requests} requests, {fallbacks} fallback answers, \
         p50 {}ns p99 {}ns max {}ns",
        q(0.50),
        q(0.99),
        q(1.0)
    );
}

fn cmd_serve(args: &[String]) {
    let Some(path) = args.first() else {
        usage("serve needs a model file");
    };
    let serve_addr = flag(args, "--serve");
    let user: u32 = flag_num(args, "--user", u32::MAX);
    if serve_addr.is_none() && user == u32::MAX {
        usage("serve needs --user ID (1-based) or --serve ADDR");
    }
    let n = flag_num(args, "--n", 10usize);
    let t = std::time::Instant::now();
    let model = Cfsf::load_from_file(path).unwrap_or_else(|e| {
        eprintln!("error: cannot load {path}: {e}");
        std::process::exit(1);
    });
    println!(
        "model loaded in {:.2}s (no offline recompute)",
        t.elapsed().as_secs_f64()
    );
    if let Some(addr) = serve_addr {
        // Shard mode: answer wire-protocol frames from the loaded model
        // until killed. Port 0 picks a free one; the `listening on` line
        // is the contract scripts (and the sharded integration test)
        // parse, so flush it past the pipe buffer immediately.
        let shard_id: u32 = flag_num(args, "--shard-id", 0);
        // With --self-heal the shard serves through the RCU generation
        // cell of a drift-monitored wrapper, so a background refresh can
        // swap model generations under live traffic; without it the
        // model is pinned at generation 0.
        let (handle, _healing) = if args.iter().any(|a| a == "--self-heal") {
            let cfg = drift_config(args, cfsf::core::DriftConfig::default());
            let healing = cfsf::core::SelfHealingCfsf::new(model, cfg).unwrap_or_else(|e| {
                eprintln!("error: invalid drift config: {e}");
                std::process::exit(1);
            });
            (
                cf_serve::ModelHandle::from_cell(healing.cell()),
                Some(healing),
            )
        } else {
            (
                cf_serve::ModelHandle::fixed(std::sync::Arc::new(model)),
                None,
            )
        };
        let shard = cf_serve::ShardServer::bind(
            addr.as_str(),
            handle,
            cf_serve::ShardOptions {
                shard_id,
                server: cf_serve::ServerOptions::default(),
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("error: cannot bind shard on {addr}: {e}");
            std::process::exit(1);
        });
        println!("shard {shard_id} listening on {}", shard.local_addr());
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    let uid = UserId::new(user.saturating_sub(1));
    if uid.index() >= model.matrix().num_users() {
        eprintln!("error: user {user} not in the model");
        std::process::exit(1);
    }
    println!("top-{n} recommendations for user {user}:");
    for (rank, (item, score)) in model.recommend_top_n(uid, n).into_iter().enumerate() {
        println!(
            "  {:>2}. item {:<6} predicted {score:.2}",
            rank + 1,
            item.raw() + 1
        );
    }
}

/// Applies the `--drift-*` threshold flags over `base`, so operators
/// tune hysteresis without recompiling (thresholds are per-mille).
fn drift_config(args: &[String], base: cfsf::core::DriftConfig) -> cfsf::core::DriftConfig {
    let mut cfg = base;
    cfg.mae_trip_pm = flag_num(args, "--drift-mae-trip-pm", cfg.mae_trip_pm);
    cfg.mae_clear_pm = flag_num(args, "--drift-mae-clear-pm", cfg.mae_clear_pm);
    cfg.hist_trip_pm = flag_num(args, "--drift-hist-trip-pm", cfg.hist_trip_pm);
    cfg.hist_clear_pm = flag_num(args, "--drift-hist-clear-pm", cfg.hist_clear_pm);
    cfg.fallback_trip_pm = flag_num(args, "--drift-fallback-trip-pm", cfg.fallback_trip_pm);
    cfg.fallback_clear_pm = flag_num(args, "--drift-fallback-clear-pm", cfg.fallback_clear_pm);
    cfg.trip_windows = flag_num(args, "--drift-trip-windows", cfg.trip_windows);
    cfg.cooldown = std::time::Duration::from_millis(flag_num(
        args,
        "--drift-cooldown-ms",
        cfg.cooldown.as_millis() as u64,
    ));
    cfg.min_observations = flag_num(args, "--drift-min-observations", cfg.min_observations);
    cfg.full_refit_fraction =
        flag_num(args, "--drift-full-refit-fraction", cfg.full_refit_fraction);
    cfg
}

/// `refresh-demo` — the whole self-healing loop on synthetic data: a
/// reader thread hammers predictions through the generation cell while
/// drifted ratings stream in, the drift detector trips, a background
/// rebuild publishes a new generation, and the reader never sees a
/// failed request. Accepts the same `--drift-*` flags as `serve`
/// (defaulting to the hair-trigger profile so the demo trips quickly).
fn cmd_refresh_demo(args: &[String]) {
    let cfg = drift_config(args, cfsf::core::DriftConfig::sensitive());
    println!("generating a synthetic dataset and fitting CFSF...");
    let dataset = SyntheticConfig::small().generate();
    let model = Cfsf::fit(&dataset.matrix, CfsfConfig::small()).expect("valid config");
    let scale_max = dataset.matrix.scale().max;
    let num_users = dataset.matrix.num_users();
    let num_items = dataset.matrix.num_items();
    let healing = cfsf::core::SelfHealingCfsf::new(model, cfg).unwrap_or_else(|e| {
        eprintln!("error: invalid drift config: {e}");
        std::process::exit(1);
    });

    // Reader thread: serves predictions through the generation cell for
    // the whole demo. Zero-pause means it never blocks on the rebuild
    // and never fails a request.
    let cell = healing.cell();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let cell = std::sync::Arc::clone(&cell);
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let (mut served, mut failed, mut max_gen) = (0u64, 0u64, 0u64);
            let mut i = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (model, generation) = cell.load_with_generation();
                max_gen = max_gen.max(generation);
                let user = UserId::from(i % num_users);
                let item = ItemId::from((i * 7) % num_items);
                match model.predict_with_breakdown(user, item) {
                    Some(_) => served += 1,
                    None => failed += 1,
                }
                i += 1;
            }
            (served, failed, max_gen)
        })
    };

    // Ingest a drift burst: a block of users suddenly rates at the top
    // of the scale, shifting the rating distribution and regressing the
    // windowed MAE.
    println!(
        "streaming drifted ratings (generation {})...",
        healing.generation()
    );
    let mut sent = 0usize;
    for round in 0..4usize {
        for u in 0..num_users.min(32) {
            let item = (u * 7 + round * 13) % num_items;
            if healing
                .add_rating(UserId::from(u), ItemId::from(item), scale_max)
                .is_ok()
            {
                sent += 1;
            }
        }
        healing.wait_idle();
    }
    healing.wait_idle();
    // Give the reader a beat on the published generation before stopping,
    // so the report shows it straddled the swap.
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (served, failed, max_gen) = reader.join().unwrap_or((0, 0, 0));

    println!(
        "ingested {sent} drifted ratings; drift state {:?}, {} pending",
        healing.drift_state(),
        healing.pending()
    );
    println!(
        "generation {} (reader observed up to {max_gen}); served {served} predictions, {failed} failed",
        healing.generation()
    );
    if healing.generation() == 0 {
        println!("no refresh triggered — try lowering the --drift-* thresholds");
    } else {
        println!("zero-pause refresh: the model was rebuilt and swapped under live reads");
    }
}

fn cmd_demo() {
    println!("generating a synthetic MovieLens-like dataset...");
    let dataset = SyntheticConfig::small().generate();
    print!("{}", dataset.stats());
    let split = Protocol::new(TrainSize::Users(40), GivenN::Given5, 20)
        .split(&dataset)
        .expect("protocol fits");
    let model = Cfsf::fit(&split.train, CfsfConfig::small()).expect("valid config");
    let eval = cfsf::eval::evaluate(&model, &split.holdout);
    println!(
        "CFSF on {}: MAE {:.3}, RMSE {:.3} over {} holdout cells",
        split.label, eval.mae, eval.rmse, eval.cells
    );
    let recs = model.recommend_top_n(UserId::new(0), 5);
    println!("top-5 items for user 0: {recs:?}");
}

fn fit(algo: &str, train: &RatingMatrix) -> Box<dyn cf_matrix::Predictor> {
    match algo {
        "cfsf" => Box::new(Cfsf::fit(train, CfsfConfig::paper()).expect("valid config")),
        "sur" => Box::new(Sur::fit_default(train)),
        "sir" => Box::new(Sir::fit_default(train)),
        "sf" => Box::new(SimilarityFusion::fit_default(train)),
        "emdp" => Box::new(Emdp::fit_default(train)),
        "scbpcc" => Box::new(Scbpcc::fit_default(train)),
        "am" => Box::new(AspectModel::fit_default(train)),
        "pd" => Box::new(PersonalityDiagnosis::fit_default(train)),
        other => usage(&format!("unknown algorithm {other:?}")),
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}\n");
    }
    eprintln!(
        "usage:\n  cfsf-cli stats <u.data>\n  cfsf-cli evaluate <u.data> [--algo NAME] \
         [--train-users N] [--test-users N] [--given N]\n  cfsf-cli recommend <u.data> --user ID [--n N]\n\
         \x20 cfsf-cli train <u.data> --out model.cfsf\n\
         \x20 cfsf-cli serve <model.cfsf> --user ID [--n N]\n\
         \x20 cfsf-cli serve <model.cfsf> --serve ADDR [--shard-id N] [--self-heal]  (wire-protocol shard; see cfsf_router)\n\
         \x20 cfsf-cli refresh-demo [--drift-* ...]  (drift-triggered zero-pause refresh on synthetic data)\n\
         \x20 cfsf-cli synth [--out u.synth.data] [--small] [--seed N]  (write a synthetic dataset in u.data format)\n\
         \x20 cfsf-cli probe ADDR [--requests N] [--top-n N]  (drive live traffic at a shard/router)\n  cfsf-cli demo\n\
         algorithms: cfsf, sur, sir, sf, emdp, scbpcc, am, pd\n\
         global flags: --stats (dump metrics JSON on stderr), --stats-out PATH (write metrics JSON to PATH),\n\
                       --serve-metrics ADDR (live /metrics, /stats.json, /traces endpoint),\n\
                       --traces (dump captured traces on stderr), --trace-sample-every N (default 64, 0 = off)\n\
         telemetry:    cfsf-cli trace dump [--demo] (print the slow/degraded trace reservoirs)"
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}
