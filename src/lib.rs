//! # CFSF — Collaborative Filtering with Smoothing and Fusing
//!
//! Meta-crate re-exporting the whole CFSF reproduction workspace:
//! a from-scratch Rust implementation of the ICPP 2009 paper
//! *"An Efficient Collaborative Filtering Approach Using Smoothing and
//! Fusing"* (Zhang, Cao, Zhou, Guo, Raychoudhury), plus every substrate
//! and baseline its evaluation depends on.
//!
//! ## Quick start
//!
//! ```
//! use cfsf::prelude::*;
//!
//! // Generate a small MovieLens-like dataset and train CFSF on it.
//! let dataset = SyntheticConfig::small().generate(); // 80 users × 120 items
//! let split = Protocol::new(TrainSize::Users(40), GivenN::Given5, 20)
//!     .split(&dataset)
//!     .expect("valid protocol");
//! let model = Cfsf::fit(&split.train, CfsfConfig::small()).unwrap();
//! let mae = evaluate_mae(&model, &split.holdout);
//! assert!(mae < 2.0);
//! ```
pub use cf_baselines as baselines;
pub use cf_cluster as cluster;
pub use cf_data as data;
pub use cf_eval as eval;
pub use cf_matrix as matrix;
pub use cf_obs as obs;
pub use cf_parallel as parallel;
pub use cf_similarity as similarity;
pub use cf_temporal as temporal;
pub use cfsf_core as core;

/// Commonly used items, re-exported for `use cfsf::prelude::*`.
pub mod prelude {
    pub use cf_baselines::{
        AspectModel, Emdp, PersonalityDiagnosis, Scbpcc, SimilarityFusion, Sir, Sur,
    };
    pub use cf_data::{Dataset, GivenN, Protocol, Split, SyntheticConfig, TrainSize};
    pub use cf_eval::{evaluate_mae, evaluate_rmse, Evaluation};
    pub use cf_matrix::{ItemId, Predictor, RatingMatrix, UserId};
    pub use cfsf_core::{Cfsf, CfsfConfig};
}
