//! Benchmarks regenerating the parameter-sensitivity figures (Figs. 2,
//! 3, 4, 6, 7, 8): each group sweeps one parameter and measures the
//! holdout-evaluation cost at a few representative points. MAE per point
//! is printed once, so a bench run reproduces the figure's series.

use cf_eval::evaluate_mae;
use cfsf_bench::{bench_config, bench_dataset, bench_split};
use cfsf_core::{Cfsf, CfsfConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sweep_group<T: Copy + std::fmt::Display>(
    c: &mut Criterion,
    group_name: &str,
    values: &[T],
    apply: impl Fn(&mut CfsfConfig, T) + Copy,
) {
    let data = bench_dataset();
    let split = bench_split(&data);
    let base = Cfsf::fit(&split.train, bench_config()).unwrap();

    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &v in values {
        let model = base.reparameterize(|cfg| apply(cfg, v)).unwrap();
        let mae = evaluate_mae(&model, &split.holdout);
        println!("{group_name}: value {v} -> MAE {mae:.3}");
        group.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, _| {
            b.iter(|| black_box(evaluate_mae(&model, &split.holdout)));
        });
    }
    group.finish();
}

fn fig2_m_sweep(c: &mut Criterion) {
    sweep_group(c, "fig2/m_sweep", &[10usize, 25, 40], |cfg, v| cfg.m = v);
}

fn fig3_k_sweep(c: &mut Criterion) {
    sweep_group(c, "fig3/k_sweep", &[10usize, 25, 50], |cfg, v| cfg.k = v);
}

fn fig4_c_sweep(c: &mut Criterion) {
    // cluster-count changes refit the offline phase inside
    // reparameterize; the measured part is still holdout evaluation.
    sweep_group(c, "fig4/c_sweep", &[4usize, 8, 16], |cfg, v| {
        cfg.clusters = v
    });
}

fn fig6_lambda_sweep(c: &mut Criterion) {
    sweep_group(c, "fig6/lambda_sweep", &[0.2f64, 0.6, 1.0], |cfg, v| {
        cfg.lambda = v
    });
}

fn fig7_delta_sweep(c: &mut Criterion) {
    sweep_group(c, "fig7/delta_sweep", &[0.0f64, 0.1, 0.5], |cfg, v| {
        cfg.delta = v
    });
}

fn fig8_w_sweep(c: &mut Criterion) {
    sweep_group(c, "fig8/w_sweep", &[0.2f64, 0.5, 0.8], |cfg, v| cfg.w = v);
}

criterion_group!(
    benches,
    fig2_m_sweep,
    fig3_k_sweep,
    fig4_c_sweep,
    fig6_lambda_sweep,
    fig7_delta_sweep,
    fig8_w_sweep
);
criterion_main!(benches);
