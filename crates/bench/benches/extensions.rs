//! Benchmarks of the §VI-extension machinery: batch/parallel serving,
//! model persistence, and incremental maintenance.

use cf_matrix::{ItemId, UserId};
use cfsf_bench::{bench_config, bench_dataset};
use cfsf_core::{Cfsf, IncrementalCfsf};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn batch_serving(c: &mut Criterion) {
    let data = bench_dataset();
    let model = Cfsf::fit(&data.matrix, bench_config()).unwrap();
    let requests: Vec<(UserId, ItemId)> = (0..2000)
        .map(|k| (UserId::new(k % 200), ItemId::new((k * 7) % 300)))
        .collect();

    let mut group = c.benchmark_group("extensions/batch_predict");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                model.clear_caches();
                black_box(model.predict_batch(&requests, Some(t)))
            });
        });
    }
    group.finish();
}

fn persistence(c: &mut Criterion) {
    let data = bench_dataset();
    let model = Cfsf::fit(&data.matrix, bench_config()).unwrap();
    let mut buf = Vec::new();
    model.save(&mut buf).unwrap();
    println!(
        "extensions bench: serialized model is {} KiB",
        buf.len() / 1024
    );

    let mut group = c.benchmark_group("extensions/persistence");
    group.sample_size(10);
    group.bench_function("save", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            model.save(&mut out).unwrap();
            black_box(out)
        });
    });
    group.bench_function("load", |b| {
        b.iter(|| black_box(Cfsf::load(buf.as_slice()).unwrap()));
    });
    group.bench_function("fit_from_scratch_for_comparison", |b| {
        b.iter(|| black_box(Cfsf::fit(&data.matrix, bench_config()).unwrap()));
    });
    group.finish();
}

fn incremental_refresh(c: &mut Criterion) {
    let data = bench_dataset();
    let mut group = c.benchmark_group("extensions/incremental");
    group.sample_size(10);
    for batch in [10usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("partial_refresh", batch),
            &batch,
            |b, &batch| {
                b.iter_with_setup(
                    || {
                        let model = Cfsf::fit(&data.matrix, bench_config()).unwrap();
                        let mut inc = IncrementalCfsf::new(model);
                        let m = inc.model().matrix().clone();
                        let mut added = 0;
                        'outer: for u in 0..m.num_users() {
                            for i in 0..m.num_items() {
                                let (user, item) = (UserId::from(u), ItemId::from(i));
                                if m.get(user, item).is_none()
                                    && inc.add_rating(user, item, 4.0).is_ok()
                                {
                                    added += 1;
                                    if added >= batch {
                                        break 'outer;
                                    }
                                }
                            }
                        }
                        inc
                    },
                    |mut inc| black_box(inc.refresh().unwrap()),
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, batch_serving, persistence, incremental_refresh);
criterion_main!(benches);
