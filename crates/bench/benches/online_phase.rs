//! Micro-benchmarks of the CFSF online phase: single-request latency
//! (cold and warm neighbor cache), the top-K selection itself, top-N
//! recommendation, and the online-side ablations from DESIGN.md
//! (`ablate_smoothing`, `ablate_suir`, `ablate_icluster`).

use cf_matrix::{ItemId, Predictor, UserId};
use cfsf_bench::{bench_config, bench_dataset};
use cfsf_core::Cfsf;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn request_latency(c: &mut Criterion) {
    let data = bench_dataset();
    let model = Cfsf::fit(&data.matrix, bench_config()).unwrap();
    let user = UserId::new(7);
    let item = ItemId::new(42);

    let mut group = c.benchmark_group("online/request");
    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            model.clear_caches();
            black_box(model.predict(user, item))
        });
    });
    let _ = model.predict(user, item); // warm the cache
    group.bench_function("warm_cache", |b| {
        b.iter(|| black_box(model.predict(user, item)));
    });
    group.bench_function("top_k_selection", |b| {
        b.iter(|| {
            model.clear_caches();
            black_box(model.top_k_users(user))
        });
    });
    group.bench_function("recommend_top_10", |b| {
        b.iter(|| black_box(model.recommend_top_n(user, 10)));
    });
    group.finish();
}

fn ablations(c: &mut Criterion) {
    let data = bench_dataset();
    let base = Cfsf::fit(&data.matrix, bench_config()).unwrap();
    let no_smoothing = base.reparameterize(|c| c.use_smoothing = false).unwrap();
    let no_suir = base.reparameterize(|c| c.delta = 0.0).unwrap();
    let whole_population = base
        .reparameterize(|c| c.candidate_factor = usize::MAX / c.k.max(1))
        .unwrap();
    let user = UserId::new(11);
    let item = ItemId::new(99);

    let mut group = c.benchmark_group("online/ablations");
    for (name, model) in [
        ("full", &base),
        ("no_smoothing", &no_smoothing),
        ("no_suir", &no_suir),
        ("whole_population_candidates", &whole_population),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                model.clear_caches();
                black_box(model.predict(user, item))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, request_latency, ablations);
criterion_main!(benches);
