//! Benchmarks regenerating Tables II and III: end-to-end MAE evaluation
//! of CFSF and every comparator over one protocol split. The measured
//! quantity is "score the whole holdout set", i.e. the serving cost the
//! tables' accuracy numbers are paid with; the MAE itself is printed once
//! so a bench run doubles as a smoke-check of the table values.

use cf_baselines::{AspectModel, Emdp, PersonalityDiagnosis, Scbpcc, SimilarityFusion, Sir, Sur};
use cf_eval::evaluate;
use cf_matrix::Predictor;
use cfsf_bench::{bench_config, bench_dataset, bench_split};
use cfsf_core::Cfsf;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn table2_methods(c: &mut Criterion) {
    let data = bench_dataset();
    let split = bench_split(&data);
    let cfsf = Cfsf::fit(&split.train, bench_config()).unwrap();
    let sur = Sur::fit_default(&split.train);
    let sir = Sir::fit_default(&split.train);

    let mut group = c.benchmark_group("table2/evaluate_holdout");
    group.sample_size(10);
    for (name, model) in [
        ("CFSF", &cfsf as &dyn Predictor),
        ("SUR", &sur),
        ("SIR", &sir),
    ] {
        let mae = evaluate(model, &split.holdout).mae;
        println!("table2 bench: {name} MAE = {mae:.3}");
        group.bench_function(name, |b| {
            b.iter(|| black_box(evaluate(model, &split.holdout)));
        });
    }
    group.finish();
}

fn table3_methods(c: &mut Criterion) {
    let data = bench_dataset();
    let split = bench_split(&data);
    let cfsf = Cfsf::fit(&split.train, bench_config()).unwrap();
    let am = AspectModel::fit_default(&split.train);
    let emdp = Emdp::fit_default(&split.train);
    let scbpcc = Scbpcc::fit_default(&split.train);
    let sf = SimilarityFusion::fit_default(&split.train);
    let pd = PersonalityDiagnosis::fit_default(&split.train);

    let mut group = c.benchmark_group("table3/evaluate_holdout");
    group.sample_size(10);
    for (name, model) in [
        ("CFSF", &cfsf as &dyn Predictor),
        ("AM", &am),
        ("EMDP", &emdp),
        ("SCBPCC", &scbpcc),
        ("SF", &sf),
        ("PD", &pd),
    ] {
        let mae = evaluate(model, &split.holdout).mae;
        println!("table3 bench: {name} MAE = {mae:.3}");
        group.bench_function(name, |b| {
            b.iter(|| black_box(evaluate(model, &split.holdout)));
        });
    }
    group.finish();
}

criterion_group!(benches, table2_methods, table3_methods);
criterion_main!(benches);
