//! Instrumentation overhead on the online hot path: the same prediction
//! workload with metric recording enabled vs disabled.
//!
//! `cf_obs::set_enabled(false)` reduces every record call to one relaxed
//! atomic load plus a branch, which is the cheapest a *runtime* switch can
//! be; the `noop` cargo feature on `cf-obs` compiles even that away, but a
//! single binary cannot carry both feature variants, so this bench
//! demonstrates the enabled-vs-runtime-disabled delta. The acceptance bar
//! is that enabled stays within ~5% of disabled.

use cf_matrix::{ItemId, Predictor, UserId};
use cfsf_bench::{bench_config, bench_dataset};
use cfsf_core::Cfsf;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn predict_workload(model: &Cfsf, requests: &[(UserId, ItemId)]) -> f64 {
    let mut acc = 0.0;
    for &(u, i) in requests {
        if let Some(r) = model.predict(u, i) {
            acc += r;
        }
    }
    acc
}

fn obs_overhead(c: &mut Criterion) {
    let data = bench_dataset();
    let model = Cfsf::fit(&data.matrix, bench_config()).unwrap();
    let requests: Vec<(UserId, ItemId)> = (0..500)
        .map(|k| (UserId::new(k % 200), ItemId::new((k * 13) % 300)))
        .collect();
    // Warm the neighbor cache so the measured loop is the steady-state
    // serving path (cache hits + estimator math), where per-record
    // instrumentation cost is proportionally largest.
    for &(u, _) in &requests {
        model.top_k_users(u);
    }

    let mut group = c.benchmark_group("obs/online_predict_overhead");
    for enabled in [false, true] {
        let label = if enabled { "enabled" } else { "disabled" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &enabled, |b, &on| {
            cf_obs::set_enabled(on);
            b.iter(|| black_box(predict_workload(&model, &requests)));
        });
    }
    cf_obs::set_enabled(true);
    group.finish();
}

fn obs_record_calls(c: &mut Criterion) {
    // Microbench of the primitives themselves, enabled vs disabled.
    let mut group = c.benchmark_group("obs/record_call");
    for enabled in [false, true] {
        let label = if enabled { "enabled" } else { "disabled" };
        group.bench_with_input(
            BenchmarkId::new("counter_inc", label),
            &enabled,
            |b, &on| {
                cf_obs::set_enabled(on);
                b.iter(|| {
                    for _ in 0..1000 {
                        cf_obs::counter!("bench.obs.counter").inc();
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("histogram_record", label),
            &enabled,
            |b, &on| {
                cf_obs::set_enabled(on);
                b.iter(|| {
                    for k in 0..1000u64 {
                        cf_obs::histogram!("bench.obs.histogram").record(black_box(k * 37 + 11));
                    }
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("span_timer", label), &enabled, |b, &on| {
            cf_obs::set_enabled(on);
            b.iter(|| {
                for _ in 0..1000 {
                    cf_obs::time_scope!("bench.obs.span_ns");
                    black_box(());
                }
            });
        });
    }
    cf_obs::set_enabled(true);
    group.finish();
}

fn obs_trace_calls(c: &mut Criterion) {
    // The request-tracing primitives across their three cost regimes:
    // registry disabled (inert guard), enabled but not head-sampled (the
    // common case — a TLS counter, two timestamps, no spans), and
    // head-sampled (full span capture).
    let mut group = c.benchmark_group("obs/trace_call");
    let outcome = || cf_obs::trace::Outcome {
        level: "full",
        fallback: false,
        k_used: 25,
        m_used: 95,
        fused: 3.7,
    };
    let request = || {
        let req = cf_obs::trace::begin_request(7, 42);
        {
            let _a = cf_obs::trace::span("neighbor_lookup");
        }
        {
            let _b = cf_obs::trace::span("estimator.suir");
        }
        req.finish(outcome());
    };
    for (label, enabled, every) in [
        ("disabled", false, 64u32),
        ("unsampled", true, u32::MAX),
        ("sampled", true, 1),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            cf_obs::set_enabled(enabled);
            cf_obs::trace::set_head_sample_every(every);
            cf_obs::trace::clear();
            b.iter(|| {
                for _ in 0..1000 {
                    request();
                }
            });
        });
    }
    cf_obs::set_enabled(true);
    cf_obs::trace::set_head_sample_every(64);
    cf_obs::trace::clear();
    group.finish();
}

criterion_group!(benches, obs_overhead, obs_record_calls, obs_trace_calls);
criterion_main!(benches);
