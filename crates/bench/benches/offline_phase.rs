//! Micro-benchmarks of the CFSF offline phase: GIS construction (with a
//! thread-count scaling sweep — the `gis_parallel_scaling` ablation from
//! DESIGN.md), K-means, smoothing, iCluster, and the full fit.

use cf_cluster::{ClusterModel, ClusterModelConfig, ICluster, KMeans, KMeansConfig, Smoother};
use cf_similarity::{Gis, GisConfig};
use cfsf_bench::{bench_config, bench_dataset};
use cfsf_core::Cfsf;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn gis_parallel_scaling(c: &mut Criterion) {
    let data = bench_dataset();
    let mut group = c.benchmark_group("offline/gis_build");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let config = GisConfig {
                threads: Some(t),
                ..GisConfig::default()
            };
            b.iter(|| black_box(Gis::build(&data.matrix, &config)));
        });
    }
    group.finish();
}

fn kmeans_and_smoothing(c: &mut Criterion) {
    let data = bench_dataset();
    let mut group = c.benchmark_group("offline/clustering");
    group.sample_size(10);
    group.bench_function("kmeans_c8", |b| {
        let config = KMeansConfig {
            k: 8,
            ..KMeansConfig::default()
        };
        b.iter(|| black_box(KMeans::fit(&data.matrix, &config)));
    });
    let clusters = KMeans::fit(
        &data.matrix,
        &KMeansConfig {
            k: 8,
            ..KMeansConfig::default()
        },
    );
    group.bench_function("smoothing", |b| {
        b.iter(|| black_box(Smoother::smooth(&data.matrix, &clusters, None)));
    });
    let smoothed = Smoother::smooth(&data.matrix, &clusters, None);
    group.bench_function("icluster", |b| {
        b.iter(|| black_box(ICluster::build(&data.matrix, &smoothed, None)));
    });
    group.bench_function("cluster_model_full", |b| {
        let config = ClusterModelConfig {
            kmeans: KMeansConfig {
                k: 8,
                ..KMeansConfig::default()
            },
            threads: None,
        };
        b.iter(|| black_box(ClusterModel::fit(&data.matrix, &config)));
    });
    group.finish();
}

fn full_fit(c: &mut Criterion) {
    let data = bench_dataset();
    let mut group = c.benchmark_group("offline/cfsf_fit");
    group.sample_size(10);
    group.bench_function("fit_200x300", |b| {
        b.iter(|| black_box(Cfsf::fit(&data.matrix, bench_config()).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    gis_parallel_scaling,
    kmeans_and_smoothing,
    full_fit
);
criterion_main!(benches);
