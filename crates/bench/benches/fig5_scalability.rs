//! Benchmark regenerating Fig. 5: online response time of CFSF vs
//! SCBPCC as the evaluated testset grows (10% / 50% / 100% of test
//! users at Given20). The paper's claims — linear growth and CFSF being
//! a small multiple faster — show up directly in the reported times.

use cf_baselines::Scbpcc;
use cf_data::{GivenN, Protocol, TrainSize};
use cf_eval::time_predictions;
use cfsf_bench::{bench_config, bench_dataset};
use cfsf_core::Cfsf;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn fig5(c: &mut Criterion) {
    let data = bench_dataset();
    let protocol = |fraction: f64| {
        Protocol::new(TrainSize::Users(140), GivenN::Given20, 60)
            .with_test_fraction(fraction)
            .split(&data)
            .expect("bench protocol fits")
    };
    let full = protocol(1.0);
    let cfsf = Cfsf::fit(&full.train, bench_config()).unwrap();
    let scbpcc = Scbpcc::fit_default(&full.train);

    let mut group = c.benchmark_group("fig5/response_time");
    group.sample_size(10);
    for fraction in [0.1f64, 0.5, 1.0] {
        let split = protocol(fraction);
        group.throughput(Throughput::Elements(split.holdout.len() as u64));
        // print the Fig. 5 data point once per method
        cfsf.clear_caches();
        let t_cfsf = time_predictions(&cfsf, &split.holdout);
        let t_scb = time_predictions(&scbpcc, &split.holdout);
        println!(
            "fig5 bench: {:.0}% testset ({} cells): CFSF {:.3}s, SCBPCC {:.3}s",
            fraction * 100.0,
            split.holdout.len(),
            t_cfsf.as_secs_f64(),
            t_scb.as_secs_f64()
        );
        group.bench_with_input(
            BenchmarkId::new("CFSF", format!("{:.0}%", fraction * 100.0)),
            &split,
            |b, s| {
                b.iter(|| {
                    cfsf.clear_caches();
                    black_box(time_predictions(&cfsf, &s.holdout))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("SCBPCC", format!("{:.0}%", fraction * 100.0)),
            &split,
            |b, s| {
                b.iter(|| black_box(time_predictions(&scbpcc, &s.holdout)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
