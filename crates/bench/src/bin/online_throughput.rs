//! Online-serving throughput benchmark with a machine-readable report.
//!
//! Fits CFSF at the paper-scale configuration (500 users × 1000 items,
//! `K = 25`, `M = 95`) and measures predictions/second through the
//! serving fast path and through the pre-fast-path reference kernels
//! (`predict_with_breakdown_ref`), single- and multi-threaded, batched,
//! and with a cold neighbor cache. Emits `BENCH_online.json`.
//!
//! Two request patterns are measured:
//!
//! - **burst** — each user visit scores a run of candidate items, the
//!   recommender serving workload (§V-D: selection and the neighbor
//!   rows are reused across a user's candidates). This is the headline
//!   `speedup_single_thread_vs_baseline` pattern.
//! - **mixed** — fully scattered `(user, item)` point queries, the
//!   worst case for cache locality. At paper scale this pattern is
//!   bound by last-level-cache latency on the scattered row reads in
//!   *both* paths, so the kernel speedup compresses; it is reported as
//!   `speedup_mixed_vs_baseline`.
//!
//! Usage:
//!
//! ```text
//! online_throughput [--quick] [--out PATH] [--compare PATH] [--filter SUBSTR]
//! ```
//!
//! `--quick` (or `BENCH_MODE=quick`) shrinks warmup/measure windows for
//! CI smoke runs; the committed report uses the default full windows.
//! Request patterns are fixed arithmetic sequences, so runs are
//! reproducible bar machine noise.
//!
//! `--filter SUBSTR` measures only the scenarios whose name contains the
//! substring — the kernel-tuning loop, where waiting for all eight
//! scenarios per experiment would dominate the iteration time. A
//! filtered report is partial: speedup summary fields are emitted only
//! when both of their scenarios ran, and `--compare` prints a coverage
//! warning per committed scenario the filter skipped.
//!
//! `--compare PATH` diffs this run against a committed report (e.g.
//! `BENCH_online.json`) and prints a `BENCH REGRESSION WARNING` for any
//! measurement more than 10% below it. The check never fails the run —
//! CI machines are noisy — it exists so the trajectory is visible in the
//! logs instead of silently drifting.

use std::time::{Duration, Instant};

use cf_data::SyntheticConfig;
use cf_matrix::{ItemId, Predictor, UserId};
use cfsf_core::{Cfsf, CfsfConfig, DriftConfig, SelfHealingCfsf};

struct Windows {
    warmup: Duration,
    measure: Duration,
}

struct Measurement {
    name: &'static str,
    predictions_per_sec: f64,
    predictions: u64,
    elapsed_s: f64,
}

/// Runs `pass` (which returns the number of predictions it served)
/// repeatedly: first until `warmup` elapses, then until `measure`
/// elapses, reporting steady-state throughput.
fn measure(name: &'static str, w: &Windows, mut pass: impl FnMut() -> u64) -> Measurement {
    let warm_until = Instant::now() + w.warmup;
    while Instant::now() < warm_until {
        std::hint::black_box(pass());
    }
    let start = Instant::now();
    let mut served = 0u64;
    while start.elapsed() < w.measure {
        served += std::hint::black_box(pass());
    }
    let elapsed = start.elapsed().as_secs_f64();
    let m = Measurement {
        name,
        predictions_per_sec: served as f64 / elapsed,
        predictions: served,
        elapsed_s: elapsed,
    };
    eprintln!(
        "  {:<28} {:>12.0} predictions/sec  ({} preds in {:.2}s)",
        m.name, m.predictions_per_sec, m.predictions, m.elapsed_s
    );
    m
}

fn json_entry(m: &Measurement) -> String {
    format!(
        "    \"{}\": {{ \"predictions_per_sec\": {:.1}, \"predictions\": {}, \"elapsed_s\": {:.3} }}",
        m.name, m.predictions_per_sec, m.predictions, m.elapsed_s
    )
}

/// `p`-th percentile of an unsorted latency sample set, in seconds.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx.min(samples.len() - 1)]
}

/// Pulls `"name": { "predictions_per_sec": <value>` out of a committed
/// report by string scanning — the report format is produced above, so a
/// full JSON parser (which the workspace deliberately lacks) is overkill.
fn committed_rate(report: &str, name: &str) -> Option<f64> {
    let key = format!("\"{name}\"");
    let after_key = &report[report.find(&key)? + key.len()..];
    let field = "\"predictions_per_sec\":";
    let after_field = &after_key[after_key.find(field)? + field.len()..];
    let number: String = after_field
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    number.parse().ok()
}

/// Scenario names present in a committed report: every quoted key
/// immediately followed by a `predictions_per_sec` object (the exact
/// shape [`json_entry`] writes).
fn committed_scenarios(report: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = report;
    while let Some(q) = rest.find('"') {
        let after = &rest[q + 1..];
        let Some(end) = after.find('"') else { break };
        let name = &after[..end];
        let tail = after[end + 1..].trim_start();
        if tail.starts_with(':')
            && tail[1..]
                .trim_start()
                .starts_with("{ \"predictions_per_sec\"")
        {
            names.push(name.to_string());
        }
        rest = &after[end + 1..];
    }
    names
}

/// Non-gating regression check against a committed report. Prints a
/// warning per regressed measurement — and per committed scenario the
/// current run did not measure, so a renamed or dropped scenario can't
/// silently escape the comparison. Never exits nonzero.
fn compare_against(results: &[Measurement], committed_path: &str) {
    let committed = match std::fs::read_to_string(committed_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("  bench-compare: cannot read {committed_path}: {e} (skipping)");
            return;
        }
    };
    eprintln!("  comparing against {committed_path} (warn threshold: >10% below committed)");
    for name in committed_scenarios(&committed) {
        if !results.iter().any(|m| m.name == name) {
            eprintln!(
                "  BENCH COVERAGE WARNING: committed scenario {name:<28} not measured by this run"
            );
        }
    }
    let mut regressions = 0u32;
    for m in results {
        let Some(want) = committed_rate(&committed, m.name) else {
            eprintln!("  bench-compare: {:<28} not in committed report", m.name);
            continue;
        };
        let ratio = m.predictions_per_sec / want;
        if ratio < 0.90 {
            regressions += 1;
            eprintln!(
                "  BENCH REGRESSION WARNING: {:<28} {:>12.0} vs committed {:>12.0} ({:+.1}%)",
                m.name,
                m.predictions_per_sec,
                want,
                (ratio - 1.0) * 100.0
            );
        } else {
            eprintln!(
                "  bench-compare: {:<28} {:>12.0} vs committed {:>12.0} ({:+.1}%) ok",
                m.name,
                m.predictions_per_sec,
                want,
                (ratio - 1.0) * 100.0
            );
        }
    }
    if regressions > 0 {
        eprintln!(
            "  bench-compare: {regressions} measurement(s) regressed >10% — non-gating, \
             investigate before trusting the committed numbers"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("BENCH_MODE")
            .map(|m| m == "quick")
            .unwrap_or(false);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|p| args.get(p + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_online.json".to_string());
    let compare_path = args
        .iter()
        .position(|a| a == "--compare")
        .and_then(|p| args.get(p + 1))
        .cloned();
    let filter = args
        .iter()
        .position(|a| a == "--filter")
        .and_then(|p| args.get(p + 1))
        .cloned();
    let want = |name: &str| filter.as_deref().is_none_or(|f| name.contains(f));
    if let Some(f) = filter.as_deref() {
        eprintln!("online_throughput: --filter {f} — partial report, skipped scenarios omitted");
    }
    let windows = if quick {
        Windows {
            warmup: Duration::from_millis(80),
            measure: Duration::from_millis(250),
        }
    } else {
        Windows {
            warmup: Duration::from_millis(1000),
            measure: Duration::from_millis(3000),
        }
    };

    // Paper-scale serving setup: MovieLens-shaped synthetic data at the
    // paper's online parameters (Table I / §V).
    let data = SyntheticConfig {
        num_users: 500,
        num_items: 1000,
        ..SyntheticConfig::movielens()
    }
    .generate();
    let config = CfsfConfig::paper();
    eprintln!(
        "online_throughput: {} users x {} items, {} ratings, K={}, M={}, mode={}",
        data.matrix.num_users(),
        data.matrix.num_items(),
        data.matrix.num_ratings(),
        config.k,
        config.m,
        if quick { "quick" } else { "full" }
    );
    let fit_start = Instant::now();
    let model = Cfsf::fit(&data.matrix, config.clone()).expect("fit paper-scale model");
    eprintln!("  offline fit in {:.2}s", fit_start.elapsed().as_secs_f64());

    let users = data.matrix.num_users();
    let items = data.matrix.num_items();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // Burst pattern: each user visit scores a run of 128 candidate
    // items (the recommender workload). Mixed pattern: fully scattered
    // point queries, every request a different user.
    let burst: Vec<(UserId, ItemId)> = (0..4096usize)
        .map(|k| {
            (
                UserId::from((k / 128 * 31) % users),
                ItemId::from((k * 97) % items),
            )
        })
        .collect();
    let mixed: Vec<(UserId, ItemId)> = (0..4096usize)
        .map(|k| {
            (
                UserId::from((k * 31) % users),
                ItemId::from((k * 97) % items),
            )
        })
        .collect();
    let requests = &mixed;

    // Warm every selection once so "warm" measurements start warm.
    model.predict_batch(&mixed, Some(threads));

    let mut results: Vec<Measurement> = Vec::new();

    // Serving fast path, single thread, warm neighbor cache: the
    // steady-state per-request kernel cost on the burst pattern.
    if want("single_thread_warm") {
        results.push(measure("single_thread_warm", &windows, || {
            let mut n = 0;
            for &(u, i) in &burst {
                if model.predict(u, i).is_some() {
                    n += 1;
                }
            }
            n
        }));
    }

    // The pre-fast-path kernels on the identical warm selections — the
    // baseline the headline speedup is measured against.
    if want("baseline_single_thread_warm") {
        results.push(measure("baseline_single_thread_warm", &windows, || {
            let mut n = 0;
            for &(u, i) in &burst {
                if model.predict_with_breakdown_ref(u, i).is_some() {
                    n += 1;
                }
            }
            n
        }));
    }

    // The same pair on the scattered mix — the cache-hostile worst case.
    if want("mixed_single_thread_warm") {
        results.push(measure("mixed_single_thread_warm", &windows, || {
            let mut n = 0;
            for &(u, i) in &mixed {
                if model.predict(u, i).is_some() {
                    n += 1;
                }
            }
            n
        }));
    }
    if want("mixed_baseline_single_thread") {
        results.push(measure("mixed_baseline_single_thread", &windows, || {
            let mut n = 0;
            for &(u, i) in &mixed {
                if model.predict_with_breakdown_ref(u, i).is_some() {
                    n += 1;
                }
            }
            n
        }));
    }

    // Batched parallel serving across all cores.
    if want("multi_thread_warm") {
        results.push(measure("multi_thread_warm", &windows, || {
            model
                .predict_batch(requests, Some(threads))
                .iter()
                .filter(|r| r.is_some())
                .count() as u64
        }));
    }

    // Single-threaded batch API (shard bookkeeping, no parallel win).
    if want("batch_one_thread") {
        results.push(measure("batch_one_thread", &windows, || {
            model
                .predict_batch(requests, Some(1))
                .iter()
                .filter(|r| r.is_some())
                .count() as u64
        }));
    }

    // The same mixed requests in a shuffled arrival order: the batch
    // engine's internal strip sort must recover the locality that the
    // arrival order destroyed (single thread isolates the sort's effect
    // from parallelism).
    let shuffled: Vec<(UserId, ItemId)> = (0..mixed.len())
        .map(|k| mixed[(k.wrapping_mul(2654435761)) % mixed.len()])
        .collect();
    if want("mixed_batch_sorted_one_thread") {
        results.push(measure("mixed_batch_sorted_one_thread", &windows, || {
            model
                .predict_batch(&shuffled, Some(1))
                .iter()
                .filter(|r| r.is_some())
                .count() as u64
        }));
    }

    // Cold cache: every pass pays neighbor selection again — the
    // worst-case first-request-per-user cost.
    if want("cold_cache_batch") {
        results.push(measure("cold_cache_batch", &windows, || {
            model.clear_caches();
            model
                .predict_batch(requests, Some(threads))
                .iter()
                .filter(|r| r.is_some())
                .count() as u64
        }));
    }

    // Zero-pause refresh under load: the same mixed point queries served
    // through the generation cell while a background rebuild runs and
    // publishes underneath them. Reports throughput during the rebuild
    // (the `--compare` measurement) plus the tail-latency spike: p999 of
    // per-request latency during the rebuild vs. steady state. The
    // refresh tentpole promises the spike stays within 10% — reported as
    // a non-gating warning, like every other bench number.
    let mut refresh_spike: Option<(f64, f64)> = None;
    if want("refresh_under_load") {
        let parked = DriftConfig {
            mae_trip_pm: i64::MAX,
            mae_clear_pm: 0,
            hist_trip_pm: i64::MAX,
            hist_clear_pm: 0,
            fallback_trip_pm: i64::MAX,
            fallback_clear_pm: 0,
            trip_windows: u32::MAX,
            ..DriftConfig::default()
        };
        let refit = Cfsf::fit(&data.matrix, config.clone()).expect("fit refresh model");
        let healing = SelfHealingCfsf::new(refit, parked).expect("wrap refresh model");
        let cell = healing.cell();
        let serve_pass = |latencies: &mut Vec<f64>| {
            for &(u, i) in &mixed {
                let t = Instant::now();
                let m = cell.load();
                std::hint::black_box(m.predict(u, i));
                latencies.push(t.elapsed().as_secs_f64());
            }
        };

        // Warm, then a steady-state latency window with no rebuild.
        let warm_until = Instant::now() + windows.warmup;
        let mut scratch = Vec::new();
        while Instant::now() < warm_until {
            scratch.clear();
            serve_pass(&mut scratch);
        }
        let mut steady = Vec::new();
        let steady_until = Instant::now() + windows.measure / 2;
        while Instant::now() < steady_until {
            serve_pass(&mut steady);
        }

        // Queue fresh ratings and serve straight through the rebuild.
        let scale = data.matrix.scale();
        let mut queued = 0;
        'queue: for u in 0..users {
            for i in 0..items {
                let (user, item) = (UserId::from(u), ItemId::from(i));
                if data.matrix.get(user, item).is_none() {
                    healing
                        .add_rating(user, item, scale.min)
                        .expect("queue rating");
                    queued += 1;
                    if queued == 64 {
                        break 'queue;
                    }
                }
            }
        }
        let mut during = Vec::new();
        let rebuild_start = Instant::now();
        assert!(healing.trigger(), "refresh trigger");
        while healing.generation() == 0 {
            serve_pass(&mut during);
        }
        let rebuild_elapsed = rebuild_start.elapsed().as_secs_f64();
        healing.wait_idle();

        let served = during.len() as u64;
        let m = Measurement {
            name: "refresh_under_load",
            predictions_per_sec: served as f64 / rebuild_elapsed,
            predictions: served,
            elapsed_s: rebuild_elapsed,
        };
        eprintln!(
            "  {:<28} {:>12.0} predictions/sec  ({} preds in {:.2}s)",
            m.name, m.predictions_per_sec, m.predictions, m.elapsed_s
        );
        let p999_steady = percentile(&mut steady, 0.999);
        let p999_during = percentile(&mut during, 0.999);
        let ratio = if p999_steady > 0.0 {
            p999_during / p999_steady
        } else {
            1.0
        };
        eprintln!(
            "  refresh_under_load p999: {:.1}us during rebuild vs {:.1}us steady ({:.2}x)",
            p999_during * 1e6,
            p999_steady * 1e6,
            ratio
        );
        if ratio > 1.10 {
            if threads == 1 {
                // With a single core the rebuild worker timeslices with
                // the serving thread; the spike measures CPU contention,
                // not a pause (no request ever blocks on the rebuild).
                eprintln!(
                    "  refresh_under_load p999 spike {ratio:.2}x on a 1-core host: \
                     rebuild and serving share the core; the 1.10x zero-pause \
                     budget needs a spare core to be meaningful"
                );
            } else {
                eprintln!(
                    "  BENCH LATENCY WARNING: refresh_under_load p999 spike {ratio:.2}x \
                     exceeds the 1.10x zero-pause budget (non-gating)"
                );
            }
        }
        refresh_spike = Some((ratio, p999_during * 1e6));
        results.push(m);
    }

    // Speedup summaries, each present only when both of its scenarios ran
    // (a `--filter` run is allowed to skip either side).
    let rate = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.predictions_per_sec)
    };
    let speedup = rate("single_thread_warm")
        .zip(rate("baseline_single_thread_warm"))
        .map(|(f, b)| f / b);
    let mixed_speedup = rate("mixed_single_thread_warm")
        .zip(rate("mixed_baseline_single_thread"))
        .map(|(f, b)| f / b);
    if let (Some(s), Some(m)) = (speedup, mixed_speedup) {
        eprintln!(
            "  single-thread speedup over reference kernels: {s:.2}x (burst), {m:.2}x (mixed)"
        );
    }

    let entries: Vec<String> = results.iter().map(json_entry).collect();
    let mut summary = String::new();
    if let Some(s) = speedup {
        summary.push_str(&format!(
            ",\n  \"speedup_single_thread_vs_baseline\": {s:.3}"
        ));
    }
    if let Some(s) = mixed_speedup {
        summary.push_str(&format!(",\n  \"speedup_mixed_vs_baseline\": {s:.3}"));
    }
    if let Some((ratio, p999_us)) = refresh_spike {
        summary.push_str(&format!(
            ",\n  \"refresh_p999_spike_ratio\": {ratio:.3},\n  \"refresh_p999_us\": {p999_us:.1}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"online_throughput\",\n  \"mode\": \"{}\",\n  \"dataset\": {{ \"users\": {}, \"items\": {}, \"ratings\": {} }},\n  \"config\": {{ \"clusters\": {}, \"k\": {}, \"m\": {}, \"lambda\": {}, \"delta\": {}, \"w\": {} }},\n  \"threads\": {},\n  \"requests_per_pass\": {},\n  \"results\": {{\n{}\n  }}{}\n}}\n",
        if quick { "quick" } else { "full" },
        users,
        items,
        data.matrix.num_ratings(),
        config.clusters,
        config.k,
        config.m,
        config.lambda,
        config.delta,
        config.w,
        threads,
        requests.len(),
        entries.join(",\n"),
        summary
    );
    std::fs::write(&out_path, &json).expect("write bench report");
    eprintln!("  wrote {out_path}");
    if let Some(committed) = compare_path {
        compare_against(&results, &committed);
    }
    println!("{json}");
}
