//! cfsf-bench: see the `benches/` directory. One Criterion bench target
//! exists per paper table/figure plus micro-benches of the offline and
//! online phases; this library crate only hosts shared helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cf_data::{Dataset, GivenN, Protocol, Split, SyntheticConfig, TrainSize};

/// The dataset all benches share: small enough for Criterion iteration,
/// large enough to exercise the real code paths.
pub fn bench_dataset() -> Dataset {
    SyntheticConfig {
        num_users: 200,
        num_items: 300,
        mean_ratings_per_user: 40.0,
        min_ratings_per_user: 21,
        ..SyntheticConfig::movielens()
    }
    .generate()
}

/// The standard bench split: 140 training users, 60 test users, Given10.
pub fn bench_split(dataset: &Dataset) -> Split {
    Protocol::new(TrainSize::Users(140), GivenN::Given10, 60)
        .split(dataset)
        .expect("bench protocol fits")
}

/// The CFSF configuration used across benches (substrate-tuned point).
pub fn bench_config() -> cfsf_core::CfsfConfig {
    cfsf_core::CfsfConfig {
        clusters: 8,
        k: 25,
        m: 40,
        w: 0.6,
        lambda: 0.9,
        ..cfsf_core::CfsfConfig::paper()
    }
}
