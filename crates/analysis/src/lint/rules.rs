//! The rule catalog.
//!
//! Every rule works on the scanner's decomposed lines ([`super::FileScan`]):
//! comments and string contents are already blanked out of `code`, and
//! `in_test` marks `#[cfg(test)]` regions plus `tests/`/`benches/` files,
//! so the matching below is plain token scanning with word-boundary
//! checks — deliberately simple, reviewable, and dependency-free.

use super::{Diagnostic, FileScan};

/// Static description of one rule, for `--list-rules` and suppression
/// validation.
pub struct RuleInfo {
    /// Stable id used in diagnostics, suppressions, and the allowlist.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The full catalog.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-unwrap",
        summary: "no unwrap/expect/panic!/unreachable!/todo! in production code \
                  (tests, benches, and allowlisted files exempt)",
    },
    RuleInfo {
        id: "hot-path-clock",
        summary: "no Instant::now/SystemTime::now in hot-path modules (online.rs, \
                  cache.rs, trace.rs) unless an enabled() gate appears within the \
                  previous 25 lines",
    },
    RuleInfo {
        id: "float-eq",
        summary: "no ==/!= against a float literal in production code; use the \
                  cf_matrix approx helpers",
    },
    RuleInfo {
        id: "bare-sync-prim",
        summary: "no new `static mut` or bare std::sync::Mutex in crates/core or \
                  crates/obs; use the poison-recovering wrappers in cf_obs::sync",
    },
    RuleInfo {
        id: "counter-pairing",
        summary: "every online.degrade.* / online.neighbor_cache.* / cache.* \
                  counter increment site must have a matching test reference",
    },
    RuleInfo {
        id: "unwind-safe-mut",
        summary: "no AssertUnwindSafe over a closure capturing &mut (over-broad \
                  unwind capture can observe broken invariants)",
    },
    RuleInfo {
        id: "quant-plane-raw-read",
        summary: "no raw quantized-cell reads (.bits() or the weight LUT) outside \
                  crates/matrix/src/planes.rs; go through PlaneDequant::pair",
    },
    RuleInfo {
        id: "model-access-outside-generation",
        summary: "no naming the concrete model type (Cfsf) in crates/serve/src \
                  outside live.rs; serve paths load snapshots through ModelHandle \
                  so generation swaps stay zero-pause",
    },
    RuleInfo {
        id: "trace-context-dropped",
        summary: "no literal Request::Predict/PredictBatch/RecommendTopN struct \
                  construction outside frame.rs; the frame helpers capture the \
                  ambient trace context, a literal silently drops it",
    },
    RuleInfo {
        id: "bounded-frame-alloc",
        summary: "every length-driven allocation in frame.rs decode paths \
                  (Vec::with_capacity / vec![0; n] / Cursor::take of a decoded \
                  length) must sit within a few lines of a dominating bound \
                  check (MAX_FRAME_BYTES, payload.len(), remaining(), .min())",
    },
];

/// Files whose clock reads must sit behind the obs enabled-gate.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/online.rs",
    "crates/core/src/cache.rs",
    "crates/obs/src/trace.rs",
];

/// Counter-name prefixes that require a paired test reference.
const PAIRED_COUNTER_PREFIXES: &[&str] = &["online.degrade.", "online.neighbor_cache.", "cache."];

/// How many lines above a clock read an `enabled()` gate may sit.
const CLOCK_GATE_WINDOW: usize = 25;

/// True when `code[pos]` starts a token (previous char is not part of an
/// identifier), so `RecoverMutex<` never matches a `Mutex<` search.
fn at_word_boundary(code: &str, pos: usize) -> bool {
    pos == 0
        || !code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

fn find_token(code: &str, token: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(off) = code[from..].find(token) {
        let pos = from + off;
        if at_word_boundary(code, pos) {
            return Some(pos);
        }
        from = pos + 1;
    }
    None
}

/// Runs every single-file rule over one scan.
pub fn check_file(scan: &FileScan, out: &mut Vec<Diagnostic>) {
    no_unwrap(scan, out);
    hot_path_clock(scan, out);
    float_eq(scan, out);
    bare_sync_prim(scan, out);
    unwind_safe_mut(scan, out);
    quant_plane_raw_read(scan, out);
    model_access_outside_generation(scan, out);
    trace_context_dropped(scan, out);
    bounded_frame_alloc(scan, out);
}

// --------------------------------------------------------------------------
// no-unwrap
// --------------------------------------------------------------------------

const PANICKY_TOKENS: &[(&str, &str)] = &[
    (".unwrap()", "unwrap"),
    (".expect(", "expect"),
    ("panic!(", "panic!"),
    ("unreachable!(", "unreachable!"),
    ("todo!(", "todo!"),
    ("unimplemented!(", "unimplemented!"),
];

fn no_unwrap(scan: &FileScan, out: &mut Vec<Diagnostic>) {
    for (i, l) in scan.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for (tok, name) in PANICKY_TOKENS {
            let hit = if tok.starts_with('.') {
                l.code.contains(tok)
            } else {
                find_token(&l.code, tok).is_some()
            };
            if hit {
                out.push(Diagnostic {
                    rule: "no-unwrap",
                    path: scan.path.clone(),
                    line: i + 1,
                    message: format!(
                        "`{name}` in production code; return an error, use the \
                         recovering wrappers, or allowlist this file"
                    ),
                });
            }
        }
    }
}

// --------------------------------------------------------------------------
// hot-path-clock
// --------------------------------------------------------------------------

fn hot_path_clock(scan: &FileScan, out: &mut Vec<Diagnostic>) {
    if !HOT_PATH_FILES.iter().any(|f| scan.path.ends_with(f)) {
        return;
    }
    for (i, l) in scan.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let clock = ["Instant::now", "SystemTime::now"]
            .iter()
            .find(|t| l.code.contains(*t));
        let Some(clock) = clock else {
            continue;
        };
        let gated = scan.lines[i.saturating_sub(CLOCK_GATE_WINDOW)..=i]
            .iter()
            .any(|g| !g.in_test && g.code.contains("enabled()"));
        if !gated {
            out.push(Diagnostic {
                rule: "hot-path-clock",
                path: scan.path.clone(),
                line: i + 1,
                message: format!(
                    "`{clock}` on a hot path without an enabled() gate within the \
                     previous {CLOCK_GATE_WINDOW} lines"
                ),
            });
        }
    }
}

// --------------------------------------------------------------------------
// float-eq
// --------------------------------------------------------------------------

/// True when the text immediately right of an operator begins with a
/// float literal (`0.0`, `1.`, `1e-9`, `2.5f64`, …).
fn starts_with_float_literal(s: &str) -> bool {
    let s = s.trim_start();
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() && b[i].is_ascii_digit() {
        i += 1;
    }
    if i == 0 {
        return false;
    }
    if i < b.len() && b[i] == b'.' {
        // Digits then a dot not followed by an identifier (so `1.max(x)`
        // method calls don't count — and those are int anyway).
        let after = b.get(i + 1);
        return !after.is_some_and(|c| c.is_ascii_alphabetic() && !matches!(c, b'e' | b'E'))
            || b.get(i + 2)
                .is_some_and(|c| c.is_ascii_digit() || *c == b'-');
    }
    // Scientific without a dot: 1e-9.
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        let rest = &b[i + 1..];
        let rest = rest
            .strip_prefix(b"-")
            .or(rest.strip_prefix(b"+"))
            .unwrap_or(rest);
        return rest.first().is_some_and(|c| c.is_ascii_digit());
    }
    false
}

/// True when the text immediately left of an operator ends with a float
/// literal.
fn ends_with_float_literal(s: &str) -> bool {
    let s = s.trim_end();
    let s = s
        .strip_suffix("f64")
        .or_else(|| s.strip_suffix("f32"))
        .unwrap_or(s);
    let b = s.as_bytes();
    let mut i = b.len();
    while i > 0 && (b[i - 1].is_ascii_digit() || b[i - 1] == b'_') {
        i -= 1;
    }
    if i == b.len() {
        return false;
    }
    if i > 0 && b[i - 1] == b'.' {
        // `x.0` tuple access vs `1.0` literal: require a digit before the
        // dot (or nothing, for `.5`).
        let mut j = i - 1;
        while j > 0 && b[j - 1].is_ascii_digit() {
            j -= 1;
        }
        return j == 0
            || !b[j - 1].is_ascii_alphanumeric()
                && b[j - 1] != b'_'
                && b[j - 1] != b')'
                && b[j - 1] != b']';
    }
    // Scientific: …1e-9 / …1e9.
    if i > 0 && (b[i - 1] == b'-' || b[i - 1] == b'+') {
        i -= 1;
    }
    if i > 0 && (b[i - 1] == b'e' || b[i - 1] == b'E') {
        let mut j = i - 1;
        let mut digits = false;
        while j > 0 && (b[j - 1].is_ascii_digit() || b[j - 1] == b'.' || b[j - 1] == b'_') {
            digits = true;
            j -= 1;
        }
        return digits;
    }
    false
}

fn float_eq(scan: &FileScan, out: &mut Vec<Diagnostic>) {
    for (i, l) in scan.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(off) = l.code[from..].find(op) {
                let pos = from + off;
                from = pos + op.len();
                // Skip `<=`-style neighbors and pattern arms (`=>`).
                let before = l.code[..pos].chars().next_back();
                let after = l.code[pos + op.len()..].chars().next();
                if matches!(before, Some('=' | '<' | '>' | '!')) || matches!(after, Some('=' | '>'))
                {
                    continue;
                }
                if starts_with_float_literal(&l.code[pos + op.len()..])
                    || ends_with_float_literal(&l.code[..pos])
                {
                    out.push(Diagnostic {
                        rule: "float-eq",
                        path: scan.path.clone(),
                        line: i + 1,
                        message: format!(
                            "float `{op}` against a literal; use \
                             cf_matrix::approx_eq / approx_zero"
                        ),
                    });
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// bare-sync-prim
// --------------------------------------------------------------------------

/// True when the line uses the std `Mutex` type directly: a bare
/// `Mutex<`/`Mutex::new` (imported) or one qualified through a `std`/
/// `sync` path. Shim-associated types (`S::Mutex`) and the wrappers
/// (`RecoverMutex`) don't count.
fn bare_std_mutex(code: &str) -> bool {
    for token in ["Mutex<", "Mutex::new"] {
        let mut from = 0;
        while let Some(off) = code[from..].find(token) {
            let pos = from + off;
            from = pos + 1;
            if !at_word_boundary(code, pos) {
                continue;
            }
            if let Some(qualified) = code[..pos].strip_suffix("::") {
                let qual: String = qualified
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if qual != "std" && qual != "sync" {
                    // Not a std path (e.g. `S::Mutex` from a Shim bound).
                    continue;
                }
            }
            return true;
        }
    }
    false
}

fn bare_sync_prim(scan: &FileScan, out: &mut Vec<Diagnostic>) {
    let scoped = scan.path.starts_with("crates/core/") || scan.path.starts_with("crates/obs/");
    if !scoped {
        return;
    }
    for (i, l) in scan.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        if find_token(&l.code, "static mut").is_some() {
            out.push(Diagnostic {
                rule: "bare-sync-prim",
                path: scan.path.clone(),
                line: i + 1,
                message: "`static mut` is forbidden; use atomics or the cf_obs::sync \
                          wrappers"
                    .to_string(),
            });
        }
        if bare_std_mutex(&l.code) {
            out.push(Diagnostic {
                rule: "bare-sync-prim",
                path: scan.path.clone(),
                line: i + 1,
                message: "bare std::sync::Mutex in core/obs; use \
                          cf_obs::sync::RecoverMutex (poison-resetting) instead"
                    .to_string(),
            });
        }
    }
}

// --------------------------------------------------------------------------
// unwind-safe-mut
// --------------------------------------------------------------------------

fn unwind_safe_mut(scan: &FileScan, out: &mut Vec<Diagnostic>) {
    for (i, l) in scan.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let Some(pos) = l.code.find("AssertUnwindSafe(") else {
            continue;
        };
        // Collect the parenthesized argument, possibly across lines.
        let mut depth = 0i32;
        let mut arg = String::new();
        let mut done = false;
        'outer: for (j, line) in scan.lines.iter().enumerate().skip(i).take(50) {
            let start = if j == i {
                pos + "AssertUnwindSafe".len()
            } else {
                0
            };
            for c in line.code[start..].chars() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            done = true;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
                if depth > 0 {
                    arg.push(c);
                }
            }
            arg.push('\n');
        }
        if done && arg.contains("&mut ") {
            out.push(Diagnostic {
                rule: "unwind-safe-mut",
                path: scan.path.clone(),
                line: i + 1,
                message: "AssertUnwindSafe over a closure capturing `&mut`; a caught \
                          panic can leave the borrowed state half-mutated — narrow \
                          the capture to shared/owned data"
                    .to_string(),
            });
        }
    }
}

// --------------------------------------------------------------------------
// quant-plane-raw-read
// --------------------------------------------------------------------------

/// The one file allowed to touch quantized cell encodings directly.
const PLANES_FILE: &str = "crates/matrix/src/planes.rs";

/// Quantized plane cells carry `(code << 1) | provenance` plus a weight
/// LUT; decoding them anywhere but `planes.rs` duplicates the encoding
/// and silently diverges when it changes. `QuantCell::bits()` calls
/// (`.bits()` is a word distinct from `f64::to_bits()`) and the `wlut`
/// table must stay inside [`PLANES_FILE`] — kernels consume
/// `PlaneDequant::pair` / `present_bit` instead.
fn quant_plane_raw_read(scan: &FileScan, out: &mut Vec<Diagnostic>) {
    if scan.path.ends_with(PLANES_FILE) {
        return;
    }
    for (i, l) in scan.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        if l.code.contains(".bits()") {
            out.push(Diagnostic {
                rule: "quant-plane-raw-read",
                path: scan.path.clone(),
                line: i + 1,
                message: "raw `.bits()` read of a quantized plane cell outside \
                          planes.rs; dequantize through PlaneDequant::pair"
                    .to_string(),
            });
        }
        if find_token(&l.code, "wlut").is_some() {
            out.push(Diagnostic {
                rule: "quant-plane-raw-read",
                path: scan.path.clone(),
                line: i + 1,
                message: "the plane weight LUT is private to planes.rs; use \
                          PlaneDequant::pair instead of reading `wlut`"
                    .to_string(),
            });
        }
    }
}

// --------------------------------------------------------------------------
// model-access-outside-generation
// --------------------------------------------------------------------------

/// The serving tier's one sanctioned doorway to the concrete model.
const MODEL_DOORWAY_FILE: &str = "crates/serve/src/live.rs";

/// Zero-pause refresh works because every serve path takes its model
/// snapshot through `ModelHandle` (an RCU generation-cell load). A raw
/// `Cfsf` reference held across requests would pin one generation
/// forever — invisible in review, fatal to live refresh — so the
/// concrete type may only be named in [`MODEL_DOORWAY_FILE`]. The
/// scanner has already blanked comments and strings; `Cfsf` here is a
/// word-boundary token match, so `CfsfConfig`/`cfsf_core` never fire.
fn model_access_outside_generation(scan: &FileScan, out: &mut Vec<Diagnostic>) {
    if !scan.path.starts_with("crates/serve/src/") || scan.path.ends_with(MODEL_DOORWAY_FILE) {
        return;
    }
    for (i, l) in scan.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        let mut from = 0;
        while let Some(off) = l.code[from..].find("Cfsf") {
            let pos = from + off;
            from = pos + 1;
            if !at_word_boundary(&l.code, pos) {
                continue;
            }
            // Token must also END at a word boundary: `CfsfConfig` and
            // `CfsfError` are not the concrete model type.
            let after = l.code[pos + "Cfsf".len()..].chars().next();
            if after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            out.push(Diagnostic {
                rule: "model-access-outside-generation",
                path: scan.path.clone(),
                line: i + 1,
                message: "concrete model type named outside live.rs; serve paths \
                          must load generation snapshots through ModelHandle"
                    .to_string(),
            });
        }
    }
}

// --------------------------------------------------------------------------
// trace-context-dropped
// --------------------------------------------------------------------------

/// The one file allowed to build traced request frames field by field.
const FRAME_FILE: &str = "crates/serve/src/frame.rs";

/// Request variants that carry a trailing trace context.
const TRACED_VARIANTS: &[&str] = &[
    "Request::Predict",
    "Request::PredictBatch",
    "Request::RecommendTopN",
];

/// The frame helpers (`Request::predict` & co.) capture the ambient
/// trace context at construction; a literal `Request::Predict { ... }`
/// built elsewhere almost always writes `trace: None` (or forgets the
/// capture), silently severing the cross-process span tree. Match
/// *patterns* over the same variants are fine — destructuring drops
/// nothing — so a brace group that is a rest pattern (`..`), sits in a
/// `let`/`if let`, or is followed by `=>` is exempt, as is test code.
fn trace_context_dropped(scan: &FileScan, out: &mut Vec<Diagnostic>) {
    if scan.path.ends_with(FRAME_FILE) {
        return;
    }
    for (i, l) in scan.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for variant in TRACED_VARIANTS {
            let Some(pos) = find_token(&l.code, variant) else {
                continue;
            };
            // Only struct syntax counts; `Request::Predict(..)` does not
            // exist and helper calls are lowercase.
            let rest = l.code[pos + variant.len()..].trim_start();
            if !rest.starts_with('{') {
                continue;
            }
            // `let Request::Predict { .. } = req` destructures; but a
            // `let r = Request::Predict { .. }` binding (an `=` between
            // the `let` and the variant) is still a construction.
            if let Some(let_pos) = find_token(&l.code[..pos], "let") {
                if !l.code[let_pos..pos].contains('=') {
                    continue;
                }
            }
            // Collect the brace group (possibly across lines) and what
            // follows it, to tell a pattern from a construction.
            let mut depth = 0i32;
            let mut group = String::new();
            let mut after = ' ';
            'outer: for (j, line) in scan.lines.iter().enumerate().skip(i).take(20) {
                let start = if j == i { pos + variant.len() } else { 0 };
                let mut chars = line.code[start..].chars().peekable();
                while let Some(c) = chars.next() {
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                after = chars.find(|c| !c.is_whitespace()).unwrap_or(' ');
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                    if depth > 0 {
                        group.push(c);
                    }
                }
                group.push('\n');
            }
            if group.contains("..") || after == '=' {
                continue;
            }
            out.push(Diagnostic {
                rule: "trace-context-dropped",
                path: scan.path.clone(),
                line: i + 1,
                message: format!(
                    "literal `{variant} {{ ... }}` outside frame.rs drops the \
                     ambient trace context; build the frame through the \
                     Request helper constructors"
                ),
            });
        }
    }
}

// --------------------------------------------------------------------------
// bounded-frame-alloc
// --------------------------------------------------------------------------

/// How many lines above a length-driven allocation its bound check may
/// sit.
const ALLOC_BOUND_WINDOW: usize = 6;

/// Evidence that a decoded length was dominated before use: the frame
/// cap, the arrived payload, the cursor's remaining bytes, or an
/// explicit clamp.
const ALLOC_BOUND_TOKENS: &[&str] = &["MAX_FRAME_BYTES", "payload.len()", "remaining()", ".min("];

/// Allocation shapes whose argument is a decoded length when it is a
/// bare identifier.
const ALLOC_TOKENS: &[&str] = &["Vec::with_capacity(", "vec![0u8; ", "vec![0; ", ".take("];

/// True when `code` contains `word` as a whole identifier (both ends at
/// word boundaries).
fn contains_word(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(off) = code[from..].find(word) {
        let pos = from + off;
        from = pos + 1;
        if !at_word_boundary(code, pos) {
            continue;
        }
        let after = code[pos + word.len()..].chars().next();
        if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
    }
    false
}

/// Extracts the argument of `token` at `pos` up to the closing `)`/`]`,
/// stripping integer casts and `?`; returns it only when what remains is
/// a bare identifier (a decoded length variable). Literals (`take(4)`)
/// and compound expressions (`with_capacity(a + b)`) are inherently
/// sized by the caller, not the wire.
fn length_identifier<'a>(code: &'a str, pos: usize, token: &str) -> Option<&'a str> {
    let rest = &code[pos + token.len()..];
    let end = rest.find([')', ']'])?;
    let mut arg = rest[..end].trim();
    for cast in [" as usize", " as u64", " as u32"] {
        arg = arg.strip_suffix(cast).unwrap_or(arg);
    }
    let arg = arg.trim();
    (!arg.is_empty()
        && arg.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
        && arg.chars().all(|c| c.is_alphanumeric() || c == '_'))
    .then_some(arg)
}

/// Frame decode paths allocate buffers sized by lengths an untrusted
/// peer declared. [`FRAME_FILE`]'s contract is that every such length is
/// dominated — by the 64 MiB frame cap, by the payload that actually
/// arrived, or by an explicit clamp — **before** the allocation, so a
/// corrupt length costs a `Malformed` error, never a multi-gigabyte
/// `Vec`. This rule enforces the pattern structurally: a length-driven
/// allocation with no dominating bound within the previous
/// [`ALLOC_BOUND_WINDOW`] lines is a diagnostic.
fn bounded_frame_alloc(scan: &FileScan, out: &mut Vec<Diagnostic>) {
    if !scan.path.ends_with(FRAME_FILE) {
        return;
    }
    for (i, l) in scan.lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for token in ALLOC_TOKENS {
            let mut from = 0;
            while let Some(off) = l.code[from..].find(token) {
                let pos = from + off;
                from = pos + token.len();
                let Some(ident) = length_identifier(&l.code, pos, token) else {
                    continue;
                };
                let bounded = scan.lines[i.saturating_sub(ALLOC_BOUND_WINDOW)..=i]
                    .iter()
                    .any(|g| {
                        !g.in_test
                            && contains_word(&g.code, ident)
                            && ALLOC_BOUND_TOKENS.iter().any(|t| g.code.contains(t))
                    });
                if !bounded {
                    out.push(Diagnostic {
                        rule: "bounded-frame-alloc",
                        path: scan.path.clone(),
                        line: i + 1,
                        message: format!(
                            "`{}{ident}…` sized by a decoded length with no dominating \
                             bound within the previous {ALLOC_BOUND_WINDOW} lines; \
                             check against MAX_FRAME_BYTES / payload.len() / \
                             remaining() before allocating",
                            token.trim_end()
                        ),
                    });
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// counter-pairing (cross-file)
// --------------------------------------------------------------------------

/// Checks that every gated counter increment in production code has a
/// matching reference (the exact metric name) somewhere in test code.
pub fn check_counter_pairing(scans: &[FileScan], out: &mut Vec<Diagnostic>) {
    // Pass 1: every string literal that appears in test scope.
    let mut test_literals: Vec<&str> = Vec::new();
    for scan in scans {
        for (line, lit) in &scan.strings {
            let in_test = scan.lines.get(line - 1).is_some_and(|l| l.in_test);
            if in_test {
                test_literals.push(lit.as_str());
            }
        }
    }
    // Pass 2: production counter!/gauge! sites with a gated prefix.
    for scan in scans {
        for (line, lit) in &scan.strings {
            let Some(l) = scan.lines.get(line - 1) else {
                continue;
            };
            if l.in_test || !l.code.contains("counter!") {
                continue;
            }
            if !PAIRED_COUNTER_PREFIXES.iter().any(|p| lit.starts_with(p)) {
                continue;
            }
            if !test_literals.iter().any(|t| t.contains(lit.as_str())) {
                out.push(Diagnostic {
                    rule: "counter-pairing",
                    path: scan.path.clone(),
                    line: *line,
                    message: format!(
                        "counter `{lit}` incremented here has no test referencing \
                         its name; add a balance test"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lint_scans, scan_file, Allowlist};
    use super::*;

    fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
        let scan = scan_file(path, src);
        lint_scans(&[scan], &Allowlist::default()).diagnostics
    }

    #[test]
    fn unwrap_flagged_in_prod_not_in_tests() {
        let src = "fn f() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let d = lint_one("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-unwrap");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn unwrap_in_string_or_comment_is_ignored() {
        let src = "fn f() { let s = \".unwrap()\"; } // .unwrap() here too\n";
        assert!(lint_one("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_match() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }\n";
        assert!(lint_one("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn clock_in_hot_file_needs_gate() {
        let bad = "fn f() { let t = Instant::now(); }\n";
        let good =
            "fn f() {\n    if !crate::enabled() { return; }\n    let t = Instant::now();\n}\n";
        let d = lint_one("crates/core/src/online.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "hot-path-clock");
        assert!(lint_one("crates/core/src/online.rs", good).is_empty());
        // Non-hot files are never flagged.
        assert!(lint_one("crates/core/src/batch.rs", bad).is_empty());
    }

    #[test]
    fn float_eq_literal_adjacency() {
        for bad in [
            "fn f(x: f64) -> bool { x == 0.0 }\n",
            "fn f(x: f64) -> bool { 1.5 != x }\n",
            "fn f(x: f64) -> bool { x == 1e-9 }\n",
            "fn f(x: f64) -> bool { x.fract() == 0.0 }\n",
        ] {
            let d = lint_one("crates/core/src/x.rs", bad);
            assert_eq!(d.len(), 1, "expected one diagnostic for {bad:?}");
            assert_eq!(d[0].rule, "float-eq");
        }
        for good in [
            "fn f(x: u64) -> bool { x == 0 }\n",
            "fn f(x: usize) -> bool { x <= 10 }\n",
            "fn f(t: (u8, u8)) -> bool { t.0 == t.1 }\n",
            "fn f(x: f64) -> bool { approx_eq(x, 0.0) }\n",
            // Tuple access on an indexed value is not a float literal.
            "fn f(v: &[(u64, u8)]) -> bool { v[0].0 != 30 }\n",
        ] {
            assert!(
                lint_one("crates/core/src/x.rs", good).is_empty(),
                "false positive on {good:?}"
            );
        }
    }

    #[test]
    fn bare_mutex_flagged_but_wrappers_pass() {
        let bad = "use std::sync::Mutex;\nstatic S: Mutex<u32> = Mutex::new(0);\n";
        let d = lint_one("crates/obs/src/x.rs", bad);
        assert!(d.iter().all(|d| d.rule == "bare-sync-prim"));
        assert!(!d.is_empty());
        let good = "static S: RecoverMutex<u32> = RecoverMutex::new(0);\n";
        assert!(lint_one("crates/obs/src/x.rs", good).is_empty());
        // Shim-associated types are the sanctioned abstraction, not a
        // bare std lock.
        let shim = "struct R<S: Shim> { inner: S::Mutex<Vec<u8>> }\n";
        assert!(lint_one("crates/obs/src/x.rs", shim).is_empty());
        // Fully qualified std paths are still caught.
        let qualified = "static S: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n";
        assert!(!lint_one("crates/obs/src/x.rs", qualified).is_empty());
        // Out of scope: other crates may use std Mutex.
        assert!(lint_one("crates/analysis/src/x.rs", bad).is_empty());
    }

    #[test]
    fn static_mut_flagged() {
        let d = lint_one("crates/core/src/x.rs", "static mut COUNTER: u32 = 0;\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "bare-sync-prim");
    }

    #[test]
    fn assert_unwind_safe_with_mut_capture() {
        let bad = "fn f(buf: &mut Vec<u8>) {\n    let r = catch_unwind(AssertUnwindSafe(|| {\n        step(&mut *buf);\n    }));\n}\n";
        let d = lint_one("crates/core/src/x.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unwind-safe-mut");
        let good =
            "fn f(buf: &Vec<u8>) {\n    let r = catch_unwind(AssertUnwindSafe(|| step(buf)));\n}\n";
        assert!(lint_one("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn quant_raw_reads_flagged_outside_planes() {
        let bits = "fn f(c: u16) -> u32 { QuantCell::bits(c) + x.bits() }\n";
        let d = lint_one("crates/core/src/online.rs", bits);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "quant-plane-raw-read");
        let lut = "fn f(dq: &D) -> f64 { dq.wlut[2] }\n";
        let d = lint_one("crates/similarity/src/weighted.rs", lut);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "quant-plane-raw-read");
        // planes.rs itself owns the encoding.
        assert!(lint_one("crates/matrix/src/planes.rs", bits).is_empty());
        assert!(lint_one("crates/matrix/src/planes.rs", lut).is_empty());
        // f64 bit-twiddling (rsqrt) is a different token; tests may peek.
        let to_bits = "fn f(x: f64) -> u64 { x.to_bits() }\n";
        assert!(lint_one("crates/core/src/online.rs", to_bits).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn g(c: u16) -> u32 { c.bits() }\n}\n";
        assert!(lint_one("crates/core/src/online.rs", in_test).is_empty());
    }

    #[test]
    fn model_type_flagged_in_serve_outside_live() {
        let bad = "fn f(m: &Cfsf) { m.predict(u, i); }\n";
        let d = lint_one("crates/serve/src/server.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "model-access-outside-generation");
        let qualified = "fn f(m: Arc<cfsf_core::Cfsf>) {}\n";
        let d = lint_one("crates/serve/src/router.rs", qualified);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "model-access-outside-generation");
        // The doorway file owns the concrete type.
        assert!(lint_one("crates/serve/src/live.rs", bad).is_empty());
        // Config/error types and paths are not the model.
        let config = "fn f(c: CfsfConfig) -> Result<(), CfsfError> { Ok(()) }\n";
        assert!(lint_one("crates/serve/src/server.rs", config).is_empty());
        let path_only = "use cfsf_core::DegradeLevel;\n";
        assert!(lint_one("crates/serve/src/router.rs", path_only).is_empty());
        // Other crates (and serve's tests/) may name the model freely.
        assert!(lint_one("crates/core/src/model.rs", bad).is_empty());
        assert!(lint_one("crates/serve/tests/roundtrip.rs", bad).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn g(m: &Cfsf) {}\n}\n";
        assert!(lint_one("crates/serve/src/server.rs", in_test).is_empty());
    }

    #[test]
    fn literal_traced_request_flagged_outside_frame() {
        let bad = "fn f() -> Request { Request::Predict { user: 1, item: 2, trace: None } }\n";
        let d = lint_one("crates/serve/src/router.rs", bad);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "trace-context-dropped");
        let bad_let =
            "fn f() { let r = Request::RecommendTopN { user, n, item_start, item_end, trace };\n}\n";
        let d = lint_one("src/bin/cfsf_cli.rs", bad_let);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "trace-context-dropped");
        let multiline = "fn f() -> Request {\n    Request::PredictBatch {\n        pairs,\n        trace: None,\n    }\n}\n";
        let d = lint_one("crates/serve/src/client.rs", multiline);
        assert_eq!(d.len(), 1, "{d:?}");

        // Patterns destructure — nothing is dropped.
        let arm = "fn f(r: &Request) {\n    match r {\n        Request::Predict { user, item, .. } => go(*user, *item),\n        _ => {}\n    }\n}\n";
        assert!(lint_one("crates/serve/src/server.rs", arm).is_empty());
        let full_arm = "fn f(r: Request) -> u32 {\n    match r {\n        Request::Predict { user, item, trace } => user,\n        _ => 0,\n    }\n}\n";
        assert!(lint_one("crates/serve/src/server.rs", full_arm).is_empty());
        let if_let = "fn f(r: &Request) {\n    if let Request::Predict { user, item, trace } = r {\n        go(*user);\n    }\n}\n";
        assert!(lint_one("crates/serve/src/server.rs", if_let).is_empty());
        let matches = "fn f(r: &Request) -> bool { matches!(r, Request::Predict { .. }) }\n";
        assert!(lint_one("crates/serve/src/router.rs", matches).is_empty());

        // The helper calls and untraced variants are fine everywhere.
        let helper = "fn f() -> Request { Request::predict(1, 2) }\n";
        assert!(lint_one("crates/serve/src/router.rs", helper).is_empty());
        let stats = "fn f() -> Request { Request::Stats }\n";
        assert!(lint_one("crates/serve/src/router.rs", stats).is_empty());

        // frame.rs owns the wire form; tests may build frames by hand.
        assert!(lint_one("crates/serve/src/frame.rs", bad).is_empty());
        assert!(lint_one("crates/serve/tests/roundtrip.rs", bad).is_empty());
        let in_test = format!("#[cfg(test)]\nmod tests {{\n    {bad}}}\n");
        assert!(lint_one("crates/serve/src/router.rs", &in_test).is_empty());
    }

    #[test]
    fn unbounded_decode_alloc_flagged_in_frame_rs() {
        let bad = "fn d(c: &mut Cursor) -> R {\n    let len = c.u32()? as usize;\n    let bytes = c.take(len)?;\n}\n";
        let d = lint_one("crates/serve/src/frame.rs", bad);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "bounded-frame-alloc");
        assert_eq!(d[0].line, 3);

        let bad_cap = "fn d(c: &mut Cursor) -> R {\n    let count = c.u32()? as usize;\n    let mut v = Vec::with_capacity(count);\n}\n";
        let d = lint_one("crates/serve/src/frame.rs", bad_cap);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "bounded-frame-alloc");

        // A dominating bound within the window passes: the arrived
        // payload, the frame cap, remaining(), or an explicit clamp.
        for good in [
            "fn d(c: &mut Cursor, payload: &[u8]) -> R {\n    let count = c.u32()? as usize;\n    if count > payload.len() / 8 + 1 {\n        return Err(FrameError::Malformed(\"count\"));\n    }\n    let mut v = Vec::with_capacity(count);\n}\n",
            "fn d(c: &mut Cursor) -> R {\n    let len = c.u32()? as usize;\n    if len as usize > MAX_FRAME_BYTES {\n        return Err(FrameError::TooLarge(len));\n    }\n    let mut payload = vec![0u8; len as usize];\n}\n",
            "fn d(c: &mut Cursor) -> R {\n    let len = c.u16()? as usize;\n    if len > c.remaining() {\n        return Err(FrameError::Malformed(\"len\"));\n    }\n    let bytes = c.take(len)?;\n}\n",
            "fn d(c: &mut Cursor) -> R {\n    let n = c.u32()?.min(64) as usize;\n    let mut v = Vec::with_capacity(n);\n}\n",
        ] {
            assert!(
                lint_one("crates/serve/src/frame.rs", good).is_empty(),
                "false positive on {good:?}"
            );
        }

        // Literal and compound-expression sizes are caller-controlled,
        // not wire-controlled; other files are out of scope.
        let literal = "fn d(c: &mut Cursor) -> R { let b = c.take(4)?; }\n";
        assert!(lint_one("crates/serve/src/frame.rs", literal).is_empty());
        let compound =
            "fn e(payload: &[u8]) { let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4); }\n";
        assert!(lint_one("crates/serve/src/frame.rs", compound).is_empty());
        assert!(lint_one("crates/serve/src/router.rs", bad).is_empty());
    }

    #[test]
    fn counter_pairing_requires_test_reference() {
        let prod = "fn f() { cf_obs::counter!(\"online.degrade.user_mean\").inc(); }\n";
        let scan = scan_file("crates/core/src/online.rs", prod);
        let report = lint_scans(&[scan], &Allowlist::default());
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, "counter-pairing");

        let test_file =
            "#[test]\nfn t() { assert!(dump().contains(\"online.degrade.user_mean\")); }\n";
        let scans = [
            scan_file("crates/core/src/online.rs", prod),
            scan_file("crates/core/tests/balance.rs", test_file),
        ];
        let report = lint_scans(&scans, &Allowlist::default());
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }

    #[test]
    fn suppression_silences_and_is_counted() {
        let src = "fn f() {\n    // cf-analysis: allow(no-unwrap)\n    x.unwrap();\n}\n";
        let scan = scan_file("crates/core/src/x.rs", src);
        let report = lint_scans(&[scan], &Allowlist::default());
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.suppressed.len(), 1);
        assert!(report.unused_suppressions.is_empty());
    }

    #[test]
    fn unknown_suppression_rule_is_hard_error() {
        let src = "// cf-analysis: allow(not-a-rule)\nfn f() {}\n";
        let scan = scan_file("crates/core/src/x.rs", src);
        let report = lint_scans(&[scan], &Allowlist::default());
        assert_eq!(report.errors.len(), 1);
        assert_eq!(report.errors[0].rule, "bad-suppression");
        assert!(!report.is_clean());
    }

    #[test]
    fn unused_suppression_reported_not_fatal() {
        let src = "// cf-analysis: allow(no-unwrap)\nfn f() {}\n";
        let scan = scan_file("crates/core/src/x.rs", src);
        let report = lint_scans(&[scan], &Allowlist::default());
        assert!(report.is_clean());
        assert_eq!(report.unused_suppressions.len(), 1);
    }

    #[test]
    fn allowlist_exempts_by_prefix() {
        let src = "fn f() { x.unwrap(); }\n";
        let scan = scan_file("crates/analysis/src/sched.rs", src);
        let allow = Allowlist::parse("no-unwrap crates/analysis/src/\n").unwrap();
        let report = lint_scans(&[scan], &allow);
        assert!(report.is_clean());
    }

    #[test]
    fn allowlist_rejects_unknown_rule() {
        assert!(Allowlist::parse("bogus-rule crates/\n").is_err());
    }

    #[test]
    fn stale_allowlist_entry_is_hard_error() {
        let src = "fn f() { x.unwrap(); }\n";
        let scan = scan_file("crates/analysis/src/sched.rs", src);
        // Second entry exempts a path with no findings: stale.
        let allow = Allowlist::parse("no-unwrap crates/analysis/src/\nfloat-eq crates/gone/src/\n")
            .unwrap();
        let report = lint_scans(&[scan], &allow);
        assert_eq!(report.errors.len(), 1, "{:?}", report.errors);
        assert_eq!(report.errors[0].rule, "stale-allowlist");
        assert_eq!(report.errors[0].line, 2);
        assert!(report.errors[0].message.contains("crates/gone/src/"));
        assert!(!report.is_clean());
    }
}
