//! The repo-aware lint engine: a lightweight, comment/string-aware
//! line scanner with project-specific rules.
//!
//! No external parser: each `.rs` file is split into lines whose code,
//! comment, and string-literal parts are separated by a small state
//! machine ([`scan_file`]), with `#[cfg(test)]` regions and `tests/` /
//! `benches/` paths tracked so rules can scope themselves to production
//! code. Rules ([`rules`]) emit `file:line` diagnostics with stable rule
//! ids.
//!
//! Two escape hatches, both auditable:
//!
//! - **inline suppressions** — an `allow(<rule-id>)` comment (tagged
//!   with the tool name, see [`render_suppression`]) on the
//!   diagnostic's line or the line above suppresses it; every use is
//!   counted and reported, and an unknown rule id is a hard error;
//! - **the allowlist file** — `analysis-allow.txt` at the repo root
//!   lists `rule-id path-prefix` pairs for whole files/subtrees that are
//!   exempt (e.g. the model checker's own scheduler, which is allowed
//!   to panic). This replaces the old ad-hoc per-crate clippy argument
//!   lists with one reviewed file.

pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

/// Name of the allowlist file at the repo root.
pub const ALLOWLIST_FILE: &str = "analysis-allow.txt";

/// A single finding, attached to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (see [`rules::RULES`]).
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One source line, decomposed by the scanner.
#[derive(Debug, Clone, Default)]
pub struct ScannedLine {
    /// Code with comments removed and string/char literal *contents*
    /// blanked (delimiters kept), so token rules never match inside
    /// either.
    pub code: String,
    /// The comment text on this line (line or block), if any.
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A scanned file: decomposed lines plus extracted string literals.
#[derive(Debug, Clone)]
pub struct FileScan {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// True when the whole file is test/bench scope (`tests/`,
    /// `benches/`, or a `build.rs`).
    pub file_is_test: bool,
    /// Decomposed lines, index 0 = line 1.
    pub lines: Vec<ScannedLine>,
    /// `(line, literal)` for every normal string literal.
    pub strings: Vec<(usize, String)>,
}

/// A parsed inline suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The suppressed rule id (validated against [`rules::RULES`]).
    pub rule: String,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line the suppression comment is on.
    pub line: usize,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Unsuppressed findings (these gate).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by an inline suppression (reported, not fatal).
    pub suppressed: Vec<Diagnostic>,
    /// Suppression comments that silenced nothing (reported, not fatal).
    pub unused_suppressions: Vec<Suppression>,
    /// Hard errors: malformed/unknown-rule suppressions (always gate).
    pub errors: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when nothing gates: no unsuppressed findings and no errors.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.errors.is_empty()
    }
}

// --------------------------------------------------------------------------
// Scanner
// --------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum LexState {
    Normal,
    Str,
    RawStr(usize),
    BlockComment(usize),
}

/// Scans one file's source text into lines, comments, and literals.
/// `rel_path` must use forward slashes.
pub fn scan_file(rel_path: &str, text: &str) -> FileScan {
    let file_is_test = rel_path.contains("tests/")
        || rel_path.contains("benches/")
        || rel_path.ends_with("build.rs");

    let mut lines: Vec<ScannedLine> = Vec::new();
    let mut strings: Vec<(usize, String)> = Vec::new();
    let mut state = LexState::Normal;
    let mut cur_literal = String::new();

    for (idx, raw) in text.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                LexState::Normal => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(&raw[byte_at(raw, i)..]);
                        break;
                    }
                    '/' if next == Some('*') => {
                        state = LexState::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        state = LexState::Str;
                        cur_literal.clear();
                        i += 1;
                    }
                    'r' if next == Some('"') || next == Some('#') => {
                        // Possible raw string: r"..." or r#"..."#.
                        let mut hashes = 0usize;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            code.push('r');
                            code.push('"');
                            state = LexState::RawStr(hashes);
                            cur_literal.clear();
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime: a char literal closes
                        // within a few chars ('x', '\n', '\u{..}').
                        if next == Some('\\') {
                            // Escaped char literal: consume to closing '.
                            code.push('\'');
                            i += 2;
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            code.push('\'');
                            i += 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push('\'');
                            code.push(' ');
                            code.push('\'');
                            i += 3;
                        } else {
                            // Lifetime: keep as-is.
                            code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                LexState::Str => match c {
                    '\\' => {
                        cur_literal.push(c);
                        if let Some(n) = next {
                            cur_literal.push(n);
                        }
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        strings.push((idx + 1, std::mem::take(&mut cur_literal)));
                        state = LexState::Normal;
                        i += 1;
                    }
                    _ => {
                        cur_literal.push(c);
                        code.push(' ');
                        i += 1;
                    }
                },
                LexState::RawStr(h) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..h {
                            if chars.get(i + 1 + k) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            strings.push((idx + 1, std::mem::take(&mut cur_literal)));
                            state = LexState::Normal;
                            i += 1 + h;
                            continue;
                        }
                    }
                    cur_literal.push(c);
                    code.push(' ');
                    i += 1;
                }
                LexState::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            state = LexState::Normal;
                        } else {
                            state = LexState::BlockComment(depth - 1);
                        }
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = LexState::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
            }
        }
        // A string or raw string continuing past the line end keeps its
        // state; add the newline to the literal.
        if matches!(state, LexState::Str | LexState::RawStr(_)) {
            cur_literal.push('\n');
        }
        lines.push(ScannedLine {
            code,
            comment,
            in_test: false,
        });
    }

    mark_test_regions(&mut lines, file_is_test);
    FileScan {
        path: rel_path.to_string(),
        file_is_test,
        lines,
        strings,
    }
}

fn byte_at(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

/// Marks lines inside `#[cfg(test)] mod … { … }` regions (and the whole
/// file when it is test scope). Brace counting runs on the blanked code,
/// so braces in strings/comments don't confuse it.
fn mark_test_regions(lines: &mut [ScannedLine], file_is_test: bool) {
    if file_is_test {
        for l in lines.iter_mut() {
            l.in_test = true;
        }
        return;
    }
    let mut i = 0usize;
    while i < lines.len() {
        let code = lines[i].code.trim().to_string();
        if code.starts_with("#[cfg(test)") || code.starts_with("#[cfg(all(test") {
            // Find the opening brace of the item this attribute covers,
            // then consume until its matching close.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                lines[j].in_test = true;
                for c in lines[j].code.clone().chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        ';' if !opened && depth == 0 => {
                            // e.g. `#[cfg(test)] use …;` — single item.
                            opened = true;
                            depth = 0;
                        }
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            // `#[test]` fns outside a cfg(test) mod (rare inline form).
            if code.starts_with("#[test]") {
                let mut depth = 0i32;
                let mut opened = false;
                let mut j = i;
                while j < lines.len() {
                    lines[j].in_test = true;
                    for c in lines[j].code.clone().chars() {
                        match c {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    if opened && depth <= 0 {
                        break;
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            i += 1;
        }
    }
}

// --------------------------------------------------------------------------
// Suppressions
// --------------------------------------------------------------------------

/// Parses every inline `allow(...)` suppression in a scanned file.
/// Malformed or unknown-rule suppressions become hard-error diagnostics.
pub fn parse_suppressions(scan: &FileScan) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut found = Vec::new();
    let mut errors = Vec::new();
    for (i, l) in scan.lines.iter().enumerate() {
        let Some(pos) = l.comment.find("cf-analysis:") else {
            continue;
        };
        let rest = l.comment[pos + "cf-analysis:".len()..].trim_start();
        let line = i + 1;
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .map(|(inside, _)| inside)
        else {
            errors.push(Diagnostic {
                rule: "bad-suppression",
                path: scan.path.clone(),
                line,
                message: format!(
                    "malformed suppression '{}' (expected `cf-analysis: allow(<rule-id>)`)",
                    rest.trim_end()
                ),
            });
            continue;
        };
        for id in args.split(',') {
            let id = id.trim();
            if id.is_empty() {
                errors.push(Diagnostic {
                    rule: "bad-suppression",
                    path: scan.path.clone(),
                    line,
                    message: "empty rule id in suppression".to_string(),
                });
                continue;
            }
            if !rules::RULES.iter().any(|r| r.id == id) {
                errors.push(Diagnostic {
                    rule: "bad-suppression",
                    path: scan.path.clone(),
                    line,
                    message: format!(
                        "unknown rule id '{id}' in suppression (known: {})",
                        rules::RULES
                            .iter()
                            .map(|r| r.id)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
                continue;
            }
            found.push(Suppression {
                rule: id.to_string(),
                path: scan.path.clone(),
                line,
            });
        }
    }
    (found, errors)
}

/// Renders a suppression back to its canonical comment form
/// (round-trip partner of [`parse_suppressions`]).
pub fn render_suppression(rules: &[&str]) -> String {
    format!("// cf-analysis: allow({})", rules.join(", "))
}

// --------------------------------------------------------------------------
// Allowlist
// --------------------------------------------------------------------------

/// One `rule-id path-prefix` exemption, with its source line for
/// staleness reporting.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// The exempted rule id.
    pub rule: String,
    /// Repo-relative path prefix the exemption covers.
    pub prefix: String,
    /// 1-based line in [`ALLOWLIST_FILE`].
    pub line: usize,
}

/// The parsed allowlist: audited `rule-id path-prefix` exemptions.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses allowlist text (`rule-id path-prefix` per line, `#`
    /// comments). Unknown rule ids are errors so renamed rules surface.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(prefix)) = (parts.next(), parts.next()) else {
                return Err(format!(
                    "{ALLOWLIST_FILE}:{}: expected `rule-id path-prefix`, got '{line}'",
                    n + 1
                ));
            };
            if !rules::RULES.iter().any(|r| r.id == rule) {
                return Err(format!(
                    "{ALLOWLIST_FILE}:{}: unknown rule id '{rule}'",
                    n + 1
                ));
            }
            entries.push(AllowEntry {
                rule: rule.to_string(),
                prefix: prefix.to_string(),
                line: n + 1,
            });
        }
        Ok(Self { entries })
    }

    /// True when `path` is exempt from `rule`.
    pub fn allows(&self, rule: &str, path: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && path.starts_with(e.prefix.as_str()))
    }

    /// The parsed entries, in file order.
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }
}

// --------------------------------------------------------------------------
// Driver
// --------------------------------------------------------------------------

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == ".git" || name == ".claude" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Runs the full lint over the repo rooted at `root`.
pub fn run_lint(root: &Path) -> LintReport {
    let allowlist = match std::fs::read_to_string(root.join(ALLOWLIST_FILE)) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                return LintReport {
                    errors: vec![Diagnostic {
                        rule: "bad-allowlist",
                        path: ALLOWLIST_FILE.to_string(),
                        line: 0,
                        message: e,
                    }],
                    ..LintReport::default()
                }
            }
        },
        Err(_) => Allowlist::default(),
    };

    let mut files = Vec::new();
    collect_rs_files(root, &mut files);

    let mut scans = Vec::with_capacity(files.len());
    for f in &files {
        let Ok(text) = std::fs::read_to_string(f) else {
            continue;
        };
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        scans.push(scan_file(&rel, &text));
    }
    lint_scans(&scans, &allowlist)
}

/// Runs every rule over pre-scanned files (unit-test entry point).
pub fn lint_scans(scans: &[FileScan], allowlist: &Allowlist) -> LintReport {
    let mut report = LintReport {
        files_scanned: scans.len(),
        ..LintReport::default()
    };

    let mut suppressions: Vec<Suppression> = Vec::new();
    for scan in scans {
        let (s, errs) = parse_suppressions(scan);
        suppressions.extend(s);
        report.errors.extend(errs);
    }

    let mut raw: Vec<Diagnostic> = Vec::new();
    for scan in scans {
        rules::check_file(scan, &mut raw);
    }
    rules::check_counter_pairing(scans, &mut raw);

    let mut used = vec![false; suppressions.len()];
    let mut allow_used = vec![false; allowlist.entries().len()];
    for d in raw {
        let mut allowed = false;
        for (i, e) in allowlist.entries().iter().enumerate() {
            if e.rule == d.rule && d.path.starts_with(e.prefix.as_str()) {
                allow_used[i] = true;
                allowed = true;
            }
        }
        if allowed {
            continue;
        }
        let hit = suppressions.iter().enumerate().find(|(_, s)| {
            s.rule == d.rule && s.path == d.path && (s.line == d.line || s.line + 1 == d.line)
        });
        match hit {
            Some((i, _)) => {
                used[i] = true;
                report.suppressed.push(d);
            }
            None => report.diagnostics.push(d),
        }
    }
    for (i, s) in suppressions.into_iter().enumerate() {
        if !used[i] {
            report.unused_suppressions.push(s);
        }
    }
    // A stale allowlist entry is a hard error, not a note: an exemption
    // that exempts nothing is either debris from deleted code or a
    // typo'd prefix silently about to exempt the wrong thing.
    for (i, e) in allowlist.entries().iter().enumerate() {
        if !allow_used[i] {
            report.errors.push(Diagnostic {
                rule: "stale-allowlist",
                path: ALLOWLIST_FILE.to_string(),
                line: e.line,
                message: format!(
                    "allowlist entry `{} {}` matched no finding; remove it (or fix \
                     the prefix)",
                    e.rule, e.prefix
                ),
            });
        }
    }
    report.diagnostics.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    report
}
