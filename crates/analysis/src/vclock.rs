//! Vector clocks and epochs for the happens-before race detector.
//!
//! A [`VClock`] maps thread ids to logical timestamps; join (pointwise
//! max) and the pointwise-`<=` partial order form the standard lattice
//! every vector-clock race detector is built on. An [`Epoch`] is the
//! FastTrack compression of a full clock down to one `(tid, timestamp)`
//! pair — sufficient shadow state for the common same-thread /
//! totally-ordered access patterns, inflated to a full clock only when
//! reads become genuinely concurrent.
//!
//! The lattice laws (join is idempotent, commutative, associative, and
//! monotone with respect to `leq`) are what make the detector sound:
//! they are property-tested in `tests/vclock_prop.rs`.

/// A vector clock: `clock[t]` is the last operation of thread `t` known
/// to happen before the holder's current point. Missing entries are 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    slots: Vec<u32>,
}

impl VClock {
    /// The bottom clock (all zeros).
    pub fn new() -> Self {
        Self::default()
    }

    /// The component for thread `t` (0 when never observed).
    pub fn get(&self, t: usize) -> u32 {
        self.slots.get(t).copied().unwrap_or(0)
    }

    /// Sets component `t`, growing the clock as needed.
    pub fn set(&mut self, t: usize, v: u32) {
        if self.slots.len() <= t {
            self.slots.resize(t + 1, 0);
        }
        self.slots[t] = v;
    }

    /// Increments component `t` (the holder passed a release point).
    pub fn inc(&mut self, t: usize) {
        let v = self.get(t).saturating_add(1);
        self.set(t, v);
    }

    /// Pointwise maximum: after `a.join(&b)`, everything that happened
    /// before either input happens before `a`.
    pub fn join(&mut self, other: &VClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (s, o) in self.slots.iter_mut().zip(other.slots.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// Pointwise `<=`: true when every event before `self` is also
    /// before `other` (the lattice partial order).
    pub fn leq(&self, other: &VClock) -> bool {
        self.slots
            .iter()
            .enumerate()
            .all(|(t, &v)| v <= other.get(t))
    }

    /// Order-insensitive digest of the clock contents (prune keys).
    pub fn digest(&self) -> u64 {
        let mut h = 0xA24B_AED4_963E_E407u64;
        for (t, &v) in self.slots.iter().enumerate() {
            if v != 0 {
                h = h
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(((t as u64) << 32) | v as u64);
            }
        }
        h
    }
}

/// A FastTrack epoch: one `(tid, timestamp)` pair standing in for a
/// full clock when accesses are totally ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Thread id, or `u32::MAX` for the "no access yet" sentinel.
    pub tid: u32,
    /// That thread's clock component at the access.
    pub clock: u32,
}

impl Epoch {
    /// The "no access recorded" sentinel; happens before everything.
    pub const NONE: Epoch = Epoch {
        tid: u32::MAX,
        clock: 0,
    };

    /// The epoch of thread `t` under clock `c`: `(t, c[t])`.
    pub fn of(t: usize, c: &VClock) -> Self {
        Epoch {
            tid: t as u32,
            clock: c.get(t),
        }
    }

    /// True when this access happens before the point described by `c`
    /// (the FastTrack `e ⊑ c` test: `clock <= c[tid]`).
    pub fn visible_to(&self, c: &VClock) -> bool {
        self.tid == u32::MAX || self.clock <= c.get(self.tid as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_leq_basics() {
        let mut a = VClock::new();
        a.set(0, 3);
        let mut b = VClock::new();
        b.set(1, 2);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.get(0), 3);
        assert_eq!(j.get(1), 2);
    }

    #[test]
    fn epoch_visibility() {
        let mut c = VClock::new();
        c.set(1, 5);
        assert!(Epoch { tid: 1, clock: 5 }.visible_to(&c));
        assert!(!Epoch { tid: 1, clock: 6 }.visible_to(&c));
        assert!(!Epoch { tid: 0, clock: 1 }.visible_to(&c));
        assert!(Epoch::NONE.visible_to(&c));
    }

    #[test]
    fn missing_slots_read_as_zero() {
        let mut a = VClock::new();
        a.set(4, 1);
        assert_eq!(a.get(2), 0);
        assert_eq!(a.get(100), 0);
        let b = VClock::new();
        assert!(b.leq(&a));
        assert!(VClock::new().leq(&a));
    }
}
