//! Model-checked ports of the repo's riskiest concurrent structures.
//!
//! Each model instantiates the **production core** — not a copy — with
//! the scheduler-instrumented [`crate::llsync::LLShim`] primitives and
//! asserts its invariants over every explored interleaving:
//!
//! - [`CacheInsertEvictModel`] — `cfsf_core::cache::ShardedCacheCore`
//!   under racing inserts into one full shard: capacity is a hard bound,
//!   the map↔slot structure stays intact, and a hit never returns a
//!   value nobody inserted for that key;
//! - [`ReservoirAdmissionModel`] — `cf_obs::reservoir::SlowReservoir`
//!   under racing admissions: bounded size, the maximum admitted key
//!   always survives, and the admission bar ends consistent with the
//!   held set;
//! - [`PoisonResetModel`] — the poisoned-shard self-reset racing a
//!   writer: when the poison fully precedes the insert, the reset must
//!   not silently drop the concurrent writer's entry, and the insert
//!   never panics;
//! - [`GenSwapModel`] — the refresh generation cell under publish racing
//!   readers: no torn `(model, generation)` pair, generations monotone;
//! - [`FleetScrapeModel`] — `cf_serve::fleet::FleetSync` under a poll
//!   racing a `/metrics` scrape: everything rendered within one scrape
//!   hold is mutually consistent (merged == per-shard sum), totals never
//!   run backwards;
//! - [`SloMergeModel`] — the SLO engine's cumulative differencing racing
//!   fleet ingestion across a shard restart: gauges never go negative or
//!   wrap, whatever snapshot the reader lands on;
//! - [`RacyCellModel`] — the seeded-race fixture: an unguarded
//!   [`LLCell`] increment the happens-before detector **must** report
//!   (the gate requires the failure), plus the mutex-fixed variant that
//!   must pass exhaustively.
//!
//! [`run_builtin_models`] runs them all exhaustively (the CI gate).

use cf_obs::reservoir::SlowReservoir;
use cf_obs::sync::{Ordering, ShimAtomicU64};
use cfsf_core::cache::ShardedCacheCore;

use crate::llsync::{LLAtomicU64, LLShim};
use crate::sched::{Explorer, Mode, Model, Report};

// --------------------------------------------------------------------------
// Model A: sharded cache insert / evict
// --------------------------------------------------------------------------

/// Two threads race three inserts (and a re-read) into a single 2-slot
/// shard, so the third insert always exercises second-chance eviction.
/// Two threads — not three — keep the tree exhaustive now that lock
/// releases are scheduling points and relaxed reference-bit loads fork
/// on store-buffer value choices.
pub struct CacheInsertEvictModel;

/// Shared state of [`CacheInsertEvictModel`].
pub struct CacheState {
    cache: ShardedCacheCore<LLShim, u32>,
}

impl Model for CacheInsertEvictModel {
    type State = CacheState;

    fn name(&self) -> &'static str {
        "cache-insert-evict"
    }

    fn threads(&self) -> usize {
        2
    }

    fn make_state(&self) -> CacheState {
        CacheState {
            // One shard, two slots: three racing inserts force the
            // second-chance eviction path under contention.
            cache: ShardedCacheCore::new(1, 2),
        }
    }

    fn run_thread(&self, tid: usize, st: &CacheState) {
        let key = tid as u32;
        let value = 100 + key;
        let stored = st.cache.insert(key, value);
        assert_eq!(stored, value, "insert must return this key's value");
        if tid == 0 {
            // The third insert: drives eviction in the full shard.
            let stored = st.cache.insert(2, 102);
            assert_eq!(stored, 102, "insert must return this key's value");
        } else if let Some(v) = st.cache.get(key) {
            // The entry may have been evicted (miss is fine), but a hit
            // must never surface a value inserted for a different key.
            assert_eq!(v, value, "hit for key {key} returned foreign value {v}");
        }
    }

    fn check(&self, st: &CacheState) -> Result<(), String> {
        st.cache.integrity()?;
        let len = st.cache.len();
        if len > st.cache.capacity() {
            return Err(format!(
                "len {len} exceeds capacity {}",
                st.cache.capacity()
            ));
        }
        // Three inserts into two slots always end exactly full.
        if len != 2 {
            return Err(format!(
                "expected exactly 2 entries after 3 inserts, got {len}"
            ));
        }
        for key in 0..3u32 {
            if let Some(v) = st.cache.get(key) {
                if v != 100 + key {
                    return Err(format!("key {key} holds foreign value {v}"));
                }
            }
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Model B: slow-reservoir admission
// --------------------------------------------------------------------------

/// Three threads race distinct keys through the lock-free admission bar
/// into a capacity-2 reservoir.
pub struct ReservoirAdmissionModel;

/// Shared state of [`ReservoirAdmissionModel`].
pub struct ReservoirState {
    res: SlowReservoir<LLShim, u32>,
}

impl Model for ReservoirAdmissionModel {
    type State = ReservoirState;

    fn name(&self) -> &'static str {
        "reservoir-admission"
    }

    fn threads(&self) -> usize {
        3
    }

    fn make_state(&self) -> ReservoirState {
        ReservoirState {
            res: SlowReservoir::new(2),
        }
    }

    fn run_thread(&self, tid: usize, st: &ReservoirState) {
        // Distinct "latencies": 10, 20, 30.
        let key = (tid as u64 + 1) * 10;
        // The production call pattern: lock-free pre-check, then admit.
        if st.res.should_admit(key) {
            st.res.admit(key, key as u32);
        }
    }

    fn check(&self, st: &ReservoirState) -> Result<(), String> {
        let snap = st.res.snapshot_sorted();
        if snap.len() > 2 {
            return Err(format!("reservoir holds {} > capacity 2", snap.len()));
        }
        if snap.len() != 2 {
            return Err(format!(
                "three admissions into capacity 2 must end full, got {}",
                snap.len()
            ));
        }
        // The maximum key always passes every bar it can observe (the
        // bar never exceeds min+1 <= 21 <= 30), so it must survive.
        if snap[0].0 != 30 {
            return Err(format!(
                "maximum key 30 displaced; slowest held is {}",
                snap[0].0
            ));
        }
        // Bar consistency: full reservoir => bar == final minimum + 1.
        let min = snap.iter().map(|&(k, _)| k).min().unwrap_or(0);
        if st.res.bar() != min + 1 {
            return Err(format!("bar {} inconsistent with min {min}", st.res.bar()));
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Model C: poisoned-shard reset vs concurrent writer
// --------------------------------------------------------------------------

/// One thread poisons the shard (as a panicking writer would) while
/// another inserts; a logical clock orders the two completions so the
/// final check can assert the happened-before case exactly.
pub struct PoisonResetModel;

/// Shared state of [`PoisonResetModel`].
pub struct PoisonState {
    cache: ShardedCacheCore<LLShim, u32>,
    clock: LLAtomicU64,
    /// Clock stamp *after* `poison_shard` returned (0 = not yet).
    poison_done: LLAtomicU64,
    /// Clock stamp *before* the insert began (0 = not yet).
    insert_start: LLAtomicU64,
}

impl Model for PoisonResetModel {
    type State = PoisonState;

    fn name(&self) -> &'static str {
        "poison-reset"
    }

    fn threads(&self) -> usize {
        2
    }

    fn make_state(&self) -> PoisonState {
        let cache = ShardedCacheCore::new(1, 4);
        // Pre-existing entries the reset is allowed to drop.
        cache.insert(1, 101);
        cache.insert(2, 102);
        PoisonState {
            cache,
            clock: ShimAtomicU64::new(1),
            poison_done: ShimAtomicU64::new(0),
            insert_start: ShimAtomicU64::new(0),
        }
    }

    fn run_thread(&self, tid: usize, st: &PoisonState) {
        if tid == 0 {
            st.cache.poison_shard(0);
            let stamp = st.clock.fetch_add(1, Ordering::SeqCst);
            st.poison_done.store(stamp, Ordering::Relaxed);
        } else {
            let stamp = st.clock.fetch_add(1, Ordering::SeqCst);
            st.insert_start.store(stamp, Ordering::Relaxed);
            // Must never panic, poisoned or not.
            let stored = st.cache.insert(5, 105);
            assert_eq!(stored, 105, "insert through a reset must keep its value");
        }
    }

    fn check(&self, st: &PoisonState) -> Result<(), String> {
        st.cache.integrity()?;
        let p = st.poison_done.load(Ordering::Relaxed);
        let i = st.insert_start.load(Ordering::Relaxed);
        if p == 0 || i == 0 {
            return Err("both threads must have stamped the clock".into());
        }
        if p < i {
            // The poison fully completed before the insert began: the
            // insert observed the poison, ran the reset, and re-inserted
            // into the fresh shard. The reset must not have dropped it.
            match st.cache.get(5) {
                Some(105) => {}
                other => {
                    return Err(format!(
                        "poison happened-before insert, but key 5 is {other:?} \
                         (reset silently dropped a concurrent writer's entry)"
                    ))
                }
            }
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Model D: generation-cell publish vs readers
// --------------------------------------------------------------------------

use cfsf_core::refresh::GenCellCore;
use std::sync::Arc;

/// The RCU generation pointer behind zero-pause refresh
/// (`cfsf_core::refresh::GenCellCore`): a writer publishes two new
/// generations while a reader snapshots `(value, generation)` pairs.
/// The payload is the generation number it was published under, so a
/// torn pair — a reader seeing generation `k`'s value with generation
/// `j`'s number — is directly observable. The reader also asserts the
/// generation never runs backwards under any interleaving.
pub struct GenSwapModel;

/// Shared state of [`GenSwapModel`].
pub struct GenSwapState {
    cell: GenCellCore<LLShim, u64>,
}

impl Model for GenSwapModel {
    type State = GenSwapState;

    fn name(&self) -> &'static str {
        "gen-swap"
    }

    fn threads(&self) -> usize {
        2
    }

    fn make_state(&self) -> GenSwapState {
        GenSwapState {
            // Invariant: the served value always equals the generation it
            // was published under (generation 0 serves 0).
            cell: GenCellCore::new(Arc::new(0)),
        }
    }

    fn run_thread(&self, tid: usize, st: &GenSwapState) {
        if tid == 0 {
            // The refresh worker: publish generation 1, then 2, each
            // fully built before the swap (value == generation).
            let gen = st.cell.publish(Arc::new(1));
            assert_eq!(gen, 1, "first publish must be generation 1");
            let gen = st.cell.publish(Arc::new(2));
            assert_eq!(gen, 2, "second publish must be generation 2");
        } else {
            // The serving thread: two consistent-pair snapshots.
            let mut last_gen = 0;
            for _ in 0..2 {
                let (value, generation) = st.cell.load_with_generation();
                assert_eq!(
                    *value, generation,
                    "torn pair: value {value} under generation {generation}"
                );
                assert!(
                    generation >= last_gen,
                    "generation ran backwards: {generation} after {last_gen}"
                );
                last_gen = generation;
            }
        }
    }

    fn check(&self, st: &GenSwapState) -> Result<(), String> {
        let (value, generation) = st.cell.load_with_generation();
        if generation != 2 || *value != 2 {
            return Err(format!(
                "after both publishes the cell must serve (2, 2), got ({value}, {generation})"
            ));
        }
        if st.cell.is_poisoned() {
            return Err("no thread panicked, yet the slot ended poisoned".into());
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Model E: fleet poll vs /metrics scrape
// --------------------------------------------------------------------------

use std::time::{Duration, Instant};

use cf_obs::merge::MergeSnapshot;
use cf_obs::slo::{SloKind, SloSpec};
use cf_serve::fleet::FleetSync;
use cf_serve::frame::WireStats;

/// Builds a shard stats frame whose snapshot carries `reqs` on the
/// `reqs` counter (and `bad` on `bad`), the shape the SLO ratio spec
/// below consumes.
fn stats_frame(shard_id: u32, generation: u64, reqs: u64, bad: u64) -> WireStats {
    let reg = cf_obs::Registry::new();
    reg.counter("reqs").add(reqs);
    reg.counter("bad").add(bad);
    WireStats {
        shard_id,
        generation,
        snapshot: MergeSnapshot::of(&reg).to_bytes(),
    }
}

/// The router's fleet aggregation core (`cf_serve::fleet::FleetSync`)
/// under a poll racing a `/metrics` scrape. `ingest` takes the state
/// lock per slot, so a scrape can land *between* two slot updates — the
/// invariant is that everything read within one [`FleetSync::scrape`]
/// hold is consistent: the merged counter equals the sum of the
/// per-shard counters it renders next to, and successive scrapes never
/// see cumulative totals step backwards.
pub struct FleetScrapeModel;

/// Shared state of [`FleetScrapeModel`].
pub struct FleetScrapeState {
    fleet: FleetSync<LLShim>,
    update: [WireStats; 2],
}

impl FleetScrapeModel {
    /// Sum of the `reqs` counter across a consistent fleet view, plus
    /// the merged value — computed inside one scrape hold.
    fn scrape_totals(fleet: &FleetSync<LLShim>) -> (u64, u64) {
        fleet.scrape(|state| {
            let merged = state.merged().counters.get("reqs").copied().unwrap_or(0);
            let by_shard = state
                .shards()
                .iter()
                .flatten()
                .map(|e| e.snapshot.counters.get("reqs").copied().unwrap_or(0))
                .sum();
            (merged, by_shard)
        })
    }
}

impl Model for FleetScrapeModel {
    type State = FleetScrapeState;

    fn name(&self) -> &'static str {
        "fleet-scrape"
    }

    fn threads(&self) -> usize {
        2
    }

    fn make_state(&self) -> FleetScrapeState {
        let fleet = FleetSync::new(2, Vec::new(), Vec::new());
        // Baseline poll (free-pass: no scheduling during make_state).
        fleet.ingest(&[Some(stats_frame(0, 1, 1, 0)), Some(stats_frame(1, 1, 2, 0))]);
        FleetScrapeState {
            fleet,
            update: [stats_frame(0, 2, 3, 0), stats_frame(1, 2, 5, 0)],
        }
    }

    fn run_thread(&self, tid: usize, st: &FleetScrapeState) {
        if tid == 0 {
            // The poller: a fresh batch for both slots. The per-slot
            // lock grain means the scraper can observe slot 0 updated
            // while slot 1 is still the baseline.
            let fresh = st
                .fleet
                .ingest(&[Some(st.update[0].clone()), Some(st.update[1].clone())]);
            assert_eq!(fresh, 2, "both decodable polls must be fresh");
        } else {
            // The scraper: two consistent reads.
            let mut last = 0;
            for _ in 0..2 {
                let (merged, by_shard) = Self::scrape_totals(&st.fleet);
                assert_eq!(
                    merged, by_shard,
                    "one scrape rendered merged {merged} next to per-shard sum {by_shard}"
                );
                assert!(
                    merged >= last,
                    "cumulative totals ran backwards: {merged} after {last}"
                );
                last = merged;
            }
        }
    }

    fn check(&self, st: &FleetScrapeState) -> Result<(), String> {
        let (merged, by_shard) = Self::scrape_totals(&st.fleet);
        if merged != 8 || by_shard != 8 {
            return Err(format!(
                "after the full poll the fleet must total (8, 8), got ({merged}, {by_shard})"
            ));
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Model F: SLO cumulative-diff vs merge ingestion
// --------------------------------------------------------------------------

/// The SLO engine's cumulative differencing racing fleet ingestion —
/// including the nasty case: a shard *restart* reports a lower
/// cumulative total, so the merged snapshot regresses between ticks.
/// The engine's window diffs must saturate at zero (never go negative,
/// never wrap into an astronomic burn rate) no matter where the
/// reader's gauge snapshot lands between the ticks.
pub struct SloMergeModel;

/// Shared state of [`SloMergeModel`].
pub struct SloMergeState {
    fleet: FleetSync<LLShim>,
    base: Instant,
    /// Tick 1: 10 requests, 2 bad. Tick 2 (restarted shard): 4, 0.
    ticks: [WireStats; 2],
}

impl Model for SloMergeModel {
    type State = SloMergeState;

    fn name(&self) -> &'static str {
        "slo-merge"
    }

    fn threads(&self) -> usize {
        2
    }

    fn make_state(&self) -> SloMergeState {
        let spec = SloSpec {
            name: "deg".to_string(),
            kind: SloKind::Ratio {
                bad: vec!["bad".to_string()],
                total: vec!["reqs".to_string()],
                budget_pm: 100,
            },
        };
        SloMergeState {
            fleet: FleetSync::new(1, vec![spec], vec![Duration::from_secs(60)]),
            base: Instant::now(),
            ticks: [stats_frame(0, 1, 10, 2), stats_frame(0, 1, 4, 0)],
        }
    }

    fn run_thread(&self, tid: usize, st: &SloMergeState) {
        if tid == 0 {
            st.fleet.ingest(&[Some(st.ticks[0].clone())]);
            st.fleet.observe(st.base + Duration::from_secs(60));
            // The shard restarts: cumulative counters regress.
            st.fleet.ingest(&[Some(st.ticks[1].clone())]);
            st.fleet.observe(st.base + Duration::from_secs(120));
        } else {
            let gauges = st.fleet.gauges(st.base + Duration::from_secs(120));
            for (name, v) in gauges {
                assert!(v >= 0, "gauge {name} went negative: {v}");
                // Bad ratio is at most 1000‰, budget 100‰ → burn caps at
                // 10_000 milli; a wrapped diff would smash through this.
                assert!(v <= 10_000, "gauge {name} blew past any real ratio: {v}");
            }
        }
    }

    fn check(&self, st: &SloMergeState) -> Result<(), String> {
        for (name, v) in st.fleet.gauges(st.base + Duration::from_secs(120)) {
            if !(0..=10_000).contains(&v) {
                return Err(format!("final gauge {name} out of range: {v}"));
            }
        }
        let merged = st.fleet.merged();
        if merged.counters.get("reqs") != Some(&4) {
            return Err(format!(
                "final merged must hold the restarted shard's counters, got {:?}",
                merged.counters.get("reqs")
            ));
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Model G: seeded-race fixture (the detector must fire)
// --------------------------------------------------------------------------

use crate::llsync::{LLCell, LLMutex};
use cf_obs::sync::{ShimCell, ShimMutex};

/// A tracked plain cell ([`LLCell`]) incremented by two threads. With
/// `fixed: false` the increments are bare — a textbook data race the
/// happens-before detector must report (with both access sites and a
/// replayable schedule); with `fixed: true` the same accesses run under
/// a mutex and the model must pass exhaustively.
pub struct RacyCellModel {
    /// Guard the cell accesses with the mutex.
    pub fixed: bool,
    /// How many incrementing threads to run (the gate uses 2).
    pub threads: usize,
}

/// Shared state of [`RacyCellModel`].
pub struct RacyCellState {
    cell: LLCell<u64>,
    lock: LLMutex<()>,
}

impl Model for RacyCellModel {
    type State = RacyCellState;

    fn name(&self) -> &'static str {
        if self.fixed {
            "racy-cell-fixed"
        } else {
            "racy-cell"
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn make_state(&self) -> RacyCellState {
        RacyCellState {
            cell: ShimCell::new(0),
            lock: ShimMutex::new(()),
        }
    }

    fn run_thread(&self, _tid: usize, st: &RacyCellState) {
        if self.fixed {
            let _g = st.lock.lock_recover();
            st.cell.set(st.cell.get() + 1);
        } else {
            // Unprotected read-modify-write on plain data: the detector,
            // not a lost-update check, is what must catch this.
            st.cell.set(st.cell.get() + 1);
        }
    }

    fn check(&self, st: &RacyCellState) -> Result<(), String> {
        if self.fixed && st.cell.get() != self.threads as u64 {
            return Err(format!(
                "serialized increments must total {}, got {}",
                self.threads,
                st.cell.get()
            ));
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

/// Names of the built-in models, in the order [`run_builtin_models`]
/// runs them.
pub const BUILTIN_MODELS: [&str; 8] = [
    "cache-insert-evict",
    "reservoir-admission",
    "poison-reset",
    "gen-swap",
    "fleet-scrape",
    "slo-merge",
    "racy-cell",
    "racy-cell-fixed",
];

/// One gate entry: a model's exploration report plus what the gate
/// expects of it.
pub struct ModelRun {
    /// The model's stable name.
    pub name: &'static str,
    /// `true` for the seeded-race fixture: the gate *requires* a failure
    /// whose message names a data race, proving the detector fires.
    pub expect_race: bool,
    /// The exploration report.
    pub report: Report,
}

/// Runs every built-in model exhaustively. This is what `cfsf-analyze`
/// gates CI on: every entry must pass — and the `expect_race` fixture
/// must *fail* with a data-race report.
pub fn run_builtin_models() -> Vec<ModelRun> {
    let explorer = Explorer::new(Mode::Exhaustive).with_max_steps(5_000);
    let run = |name, expect_race, report| ModelRun {
        name,
        expect_race,
        report,
    };
    vec![
        run(
            "cache-insert-evict",
            false,
            explorer.run(CacheInsertEvictModel),
        ),
        run(
            "reservoir-admission",
            false,
            explorer.run(ReservoirAdmissionModel),
        ),
        run("poison-reset", false, explorer.run(PoisonResetModel)),
        run("gen-swap", false, explorer.run(GenSwapModel)),
        run("fleet-scrape", false, explorer.run(FleetScrapeModel)),
        run("slo-merge", false, explorer.run(SloMergeModel)),
        run(
            "racy-cell",
            true,
            explorer.run(RacyCellModel {
                fixed: false,
                threads: 2,
            }),
        ),
        run(
            "racy-cell-fixed",
            false,
            explorer.run(RacyCellModel {
                fixed: true,
                threads: 2,
            }),
        ),
    ]
}

/// Re-runs one built-in model under an explicit schedule (the binary's
/// `--replay` flag). Returns `None` for an unknown model name.
pub fn replay_builtin(name: &str, script: Vec<usize>) -> Option<Report> {
    let explorer = Explorer::new(Mode::Replay { script }).with_max_steps(5_000);
    match name {
        "cache-insert-evict" => Some(explorer.run(CacheInsertEvictModel)),
        "reservoir-admission" => Some(explorer.run(ReservoirAdmissionModel)),
        "poison-reset" => Some(explorer.run(PoisonResetModel)),
        "gen-swap" => Some(explorer.run(GenSwapModel)),
        "fleet-scrape" => Some(explorer.run(FleetScrapeModel)),
        "slo-merge" => Some(explorer.run(SloMergeModel)),
        "racy-cell" => Some(explorer.run(RacyCellModel {
            fixed: false,
            threads: 2,
        })),
        "racy-cell-fixed" => Some(explorer.run(RacyCellModel {
            fixed: true,
            threads: 2,
        })),
        _ => None,
    }
}
