//! Model-checked ports of the repo's riskiest concurrent structures.
//!
//! Each model instantiates the **production core** — not a copy — with
//! the scheduler-instrumented [`crate::llsync::LLShim`] primitives and
//! asserts its invariants over every explored interleaving:
//!
//! - [`CacheInsertEvictModel`] — `cfsf_core::cache::ShardedCacheCore`
//!   under racing inserts into one full shard: capacity is a hard bound,
//!   the map↔slot structure stays intact, and a hit never returns a
//!   value nobody inserted for that key;
//! - [`ReservoirAdmissionModel`] — `cf_obs::reservoir::SlowReservoir`
//!   under racing admissions: bounded size, the maximum admitted key
//!   always survives, and the admission bar ends consistent with the
//!   held set;
//! - [`PoisonResetModel`] — the poisoned-shard self-reset racing a
//!   writer: when the poison fully precedes the insert, the reset must
//!   not silently drop the concurrent writer's entry, and the insert
//!   never panics.
//!
//! [`run_builtin_models`] runs all three exhaustively (the CI gate).

use cf_obs::reservoir::SlowReservoir;
use cf_obs::sync::ShimAtomicU64;
use cfsf_core::cache::ShardedCacheCore;

use crate::llsync::{LLAtomicU64, LLShim};
use crate::sched::{Explorer, Mode, Model, Report};

// --------------------------------------------------------------------------
// Model A: sharded cache insert / evict
// --------------------------------------------------------------------------

/// Three threads insert distinct keys into a single 2-slot shard (every
/// insert past the second evicts), each re-reading its own key.
pub struct CacheInsertEvictModel;

/// Shared state of [`CacheInsertEvictModel`].
pub struct CacheState {
    cache: ShardedCacheCore<LLShim, u32>,
}

impl Model for CacheInsertEvictModel {
    type State = CacheState;

    fn name(&self) -> &'static str {
        "cache-insert-evict"
    }

    fn threads(&self) -> usize {
        3
    }

    fn make_state(&self) -> CacheState {
        CacheState {
            // One shard, two slots: three racing inserts force the
            // second-chance eviction path under contention.
            cache: ShardedCacheCore::new(1, 2),
        }
    }

    fn run_thread(&self, tid: usize, st: &CacheState) {
        let key = tid as u32;
        let value = 100 + key;
        let stored = st.cache.insert(key, value);
        assert_eq!(stored, value, "insert must return this key's value");
        if let Some(v) = st.cache.get(key) {
            // The entry may have been evicted (miss is fine), but a hit
            // must never surface a value inserted for a different key.
            assert_eq!(v, value, "hit for key {key} returned foreign value {v}");
        }
    }

    fn check(&self, st: &CacheState) -> Result<(), String> {
        st.cache.integrity()?;
        let len = st.cache.len();
        if len > st.cache.capacity() {
            return Err(format!(
                "len {len} exceeds capacity {}",
                st.cache.capacity()
            ));
        }
        // Three inserts into two slots always end exactly full.
        if len != 2 {
            return Err(format!(
                "expected exactly 2 entries after 3 inserts, got {len}"
            ));
        }
        for key in 0..3u32 {
            if let Some(v) = st.cache.get(key) {
                if v != 100 + key {
                    return Err(format!("key {key} holds foreign value {v}"));
                }
            }
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Model B: slow-reservoir admission
// --------------------------------------------------------------------------

/// Three threads race distinct keys through the lock-free admission bar
/// into a capacity-2 reservoir.
pub struct ReservoirAdmissionModel;

/// Shared state of [`ReservoirAdmissionModel`].
pub struct ReservoirState {
    res: SlowReservoir<LLShim, u32>,
}

impl Model for ReservoirAdmissionModel {
    type State = ReservoirState;

    fn name(&self) -> &'static str {
        "reservoir-admission"
    }

    fn threads(&self) -> usize {
        3
    }

    fn make_state(&self) -> ReservoirState {
        ReservoirState {
            res: SlowReservoir::new(2),
        }
    }

    fn run_thread(&self, tid: usize, st: &ReservoirState) {
        // Distinct "latencies": 10, 20, 30.
        let key = (tid as u64 + 1) * 10;
        // The production call pattern: lock-free pre-check, then admit.
        if st.res.should_admit(key) {
            st.res.admit(key, key as u32);
        }
    }

    fn check(&self, st: &ReservoirState) -> Result<(), String> {
        let snap = st.res.snapshot_sorted();
        if snap.len() > 2 {
            return Err(format!("reservoir holds {} > capacity 2", snap.len()));
        }
        if snap.len() != 2 {
            return Err(format!(
                "three admissions into capacity 2 must end full, got {}",
                snap.len()
            ));
        }
        // The maximum key always passes every bar it can observe (the
        // bar never exceeds min+1 <= 21 <= 30), so it must survive.
        if snap[0].0 != 30 {
            return Err(format!(
                "maximum key 30 displaced; slowest held is {}",
                snap[0].0
            ));
        }
        // Bar consistency: full reservoir => bar == final minimum + 1.
        let min = snap.iter().map(|&(k, _)| k).min().unwrap_or(0);
        if st.res.bar() != min + 1 {
            return Err(format!("bar {} inconsistent with min {min}", st.res.bar()));
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Model C: poisoned-shard reset vs concurrent writer
// --------------------------------------------------------------------------

/// One thread poisons the shard (as a panicking writer would) while
/// another inserts; a logical clock orders the two completions so the
/// final check can assert the happened-before case exactly.
pub struct PoisonResetModel;

/// Shared state of [`PoisonResetModel`].
pub struct PoisonState {
    cache: ShardedCacheCore<LLShim, u32>,
    clock: LLAtomicU64,
    /// Clock stamp *after* `poison_shard` returned (0 = not yet).
    poison_done: LLAtomicU64,
    /// Clock stamp *before* the insert began (0 = not yet).
    insert_start: LLAtomicU64,
}

impl Model for PoisonResetModel {
    type State = PoisonState;

    fn name(&self) -> &'static str {
        "poison-reset"
    }

    fn threads(&self) -> usize {
        2
    }

    fn make_state(&self) -> PoisonState {
        let cache = ShardedCacheCore::new(1, 4);
        // Pre-existing entries the reset is allowed to drop.
        cache.insert(1, 101);
        cache.insert(2, 102);
        PoisonState {
            cache,
            clock: ShimAtomicU64::new(1),
            poison_done: ShimAtomicU64::new(0),
            insert_start: ShimAtomicU64::new(0),
        }
    }

    fn run_thread(&self, tid: usize, st: &PoisonState) {
        if tid == 0 {
            st.cache.poison_shard(0);
            let stamp = st.clock.fetch_add(1);
            st.poison_done.store(stamp);
        } else {
            let stamp = st.clock.fetch_add(1);
            st.insert_start.store(stamp);
            // Must never panic, poisoned or not.
            let stored = st.cache.insert(5, 105);
            assert_eq!(stored, 105, "insert through a reset must keep its value");
        }
    }

    fn check(&self, st: &PoisonState) -> Result<(), String> {
        st.cache.integrity()?;
        let p = st.poison_done.load();
        let i = st.insert_start.load();
        if p == 0 || i == 0 {
            return Err("both threads must have stamped the clock".into());
        }
        if p < i {
            // The poison fully completed before the insert began: the
            // insert observed the poison, ran the reset, and re-inserted
            // into the fresh shard. The reset must not have dropped it.
            match st.cache.get(5) {
                Some(105) => {}
                other => {
                    return Err(format!(
                        "poison happened-before insert, but key 5 is {other:?} \
                         (reset silently dropped a concurrent writer's entry)"
                    ))
                }
            }
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Model D: generation-cell publish vs readers
// --------------------------------------------------------------------------

use cfsf_core::refresh::GenCellCore;
use std::sync::Arc;

/// The RCU generation pointer behind zero-pause refresh
/// (`cfsf_core::refresh::GenCellCore`): a writer publishes two new
/// generations while a reader snapshots `(value, generation)` pairs.
/// The payload is the generation number it was published under, so a
/// torn pair — a reader seeing generation `k`'s value with generation
/// `j`'s number — is directly observable. The reader also asserts the
/// generation never runs backwards under any interleaving.
pub struct GenSwapModel;

/// Shared state of [`GenSwapModel`].
pub struct GenSwapState {
    cell: GenCellCore<LLShim, u64>,
}

impl Model for GenSwapModel {
    type State = GenSwapState;

    fn name(&self) -> &'static str {
        "gen-swap"
    }

    fn threads(&self) -> usize {
        2
    }

    fn make_state(&self) -> GenSwapState {
        GenSwapState {
            // Invariant: the served value always equals the generation it
            // was published under (generation 0 serves 0).
            cell: GenCellCore::new(Arc::new(0)),
        }
    }

    fn run_thread(&self, tid: usize, st: &GenSwapState) {
        if tid == 0 {
            // The refresh worker: publish generation 1, then 2, each
            // fully built before the swap (value == generation).
            let gen = st.cell.publish(Arc::new(1));
            assert_eq!(gen, 1, "first publish must be generation 1");
            let gen = st.cell.publish(Arc::new(2));
            assert_eq!(gen, 2, "second publish must be generation 2");
        } else {
            // The serving thread: two consistent-pair snapshots.
            let mut last_gen = 0;
            for _ in 0..2 {
                let (value, generation) = st.cell.load_with_generation();
                assert_eq!(
                    *value, generation,
                    "torn pair: value {value} under generation {generation}"
                );
                assert!(
                    generation >= last_gen,
                    "generation ran backwards: {generation} after {last_gen}"
                );
                last_gen = generation;
            }
        }
    }

    fn check(&self, st: &GenSwapState) -> Result<(), String> {
        let (value, generation) = st.cell.load_with_generation();
        if generation != 2 || *value != 2 {
            return Err(format!(
                "after both publishes the cell must serve (2, 2), got ({value}, {generation})"
            ));
        }
        if st.cell.is_poisoned() {
            return Err("no thread panicked, yet the slot ended poisoned".into());
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// Registry
// --------------------------------------------------------------------------

/// Names of the built-in models, in the order [`run_builtin_models`]
/// runs them.
pub const BUILTIN_MODELS: [&str; 4] = [
    "cache-insert-evict",
    "reservoir-admission",
    "poison-reset",
    "gen-swap",
];

/// Runs every built-in model exhaustively, returning `(name, report)`
/// pairs. This is what `cfsf-analyze` gates CI on.
pub fn run_builtin_models() -> Vec<(&'static str, Report)> {
    let explorer = Explorer::new(Mode::Exhaustive).with_max_steps(5_000);
    vec![
        ("cache-insert-evict", explorer.run(CacheInsertEvictModel)),
        ("reservoir-admission", explorer.run(ReservoirAdmissionModel)),
        ("poison-reset", explorer.run(PoisonResetModel)),
        ("gen-swap", explorer.run(GenSwapModel)),
    ]
}

/// Re-runs one built-in model under an explicit schedule (the binary's
/// `--replay` flag). Returns `None` for an unknown model name.
pub fn replay_builtin(name: &str, script: Vec<usize>) -> Option<Report> {
    let explorer = Explorer::new(Mode::Replay { script }).with_max_steps(5_000);
    match name {
        "cache-insert-evict" => Some(explorer.run(CacheInsertEvictModel)),
        "reservoir-admission" => Some(explorer.run(ReservoirAdmissionModel)),
        "poison-reset" => Some(explorer.run(PoisonResetModel)),
        "gen-swap" => Some(explorer.run(GenSwapModel)),
        _ => None,
    }
}
