//! The loom-lite self-test fixture: a deliberately buggy lock.
//!
//! [`ToyLockModel`] with `buggy: true` implements mutual exclusion with
//! a non-atomic check-then-act on a flag — the classic race: two threads
//! both observe the flag clear, both set it, both enter the critical
//! section. The model checker must find the violation (the regression
//! tests pin a recorded random seed that does). The fixed variant takes
//! a real blocking mutex and must pass *exhaustively* — which also
//! proves the scheduler's blocked/promote machinery keeps the schedule
//! tree finite.

use cf_obs::sync::{Ordering, ShimAtomicBool, ShimAtomicU64, ShimMutex};

use crate::llsync::{LLAtomicBool, LLAtomicU64, LLMutex};
use crate::sched::Model;

/// A critical-section model guarded either by a broken check-then-act
/// flag lock (`buggy: true`) or by the shim's blocking mutex.
pub struct ToyLockModel {
    /// Use the racy flag lock instead of the blocking mutex.
    pub buggy: bool,
    /// Number of contending threads.
    pub threads: usize,
}

/// Shared state of [`ToyLockModel`].
pub struct ToyLockState {
    flag: LLAtomicBool,
    lock: LLMutex<()>,
    /// Threads currently inside the critical section.
    in_cs: LLAtomicU64,
    /// Times more than one thread was observed inside at once.
    violations: LLAtomicU64,
    /// Completed critical sections.
    acquisitions: LLAtomicU64,
}

impl ToyLockState {
    fn critical_section(&self) {
        let inside = self.in_cs.fetch_add(1, Ordering::Relaxed) + 1;
        if inside > 1 {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
        // Leave: wrapping add of -1 (the shim exposes no fetch_sub; the
        // counter is only ever compared against small values).
        self.in_cs.fetch_add(u64::MAX, Ordering::Relaxed);
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
    }
}

impl Model for ToyLockModel {
    type State = ToyLockState;

    fn name(&self) -> &'static str {
        if self.buggy {
            "toy-lock-buggy"
        } else {
            "toy-lock-fixed"
        }
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn make_state(&self) -> ToyLockState {
        ToyLockState {
            flag: ShimAtomicBool::new(false),
            lock: ShimMutex::new(()),
            in_cs: ShimAtomicU64::new(0),
            violations: ShimAtomicU64::new(0),
            acquisitions: ShimAtomicU64::new(0),
        }
    }

    fn run_thread(&self, _tid: usize, st: &ToyLockState) {
        if self.buggy {
            // Check... (yield) ...then act: another thread can pass the
            // check between these two operations.
            while st.flag.load(Ordering::SeqCst) {}
            st.flag.store(true, Ordering::SeqCst);
            st.critical_section();
            st.flag.store(false, Ordering::SeqCst);
        } else {
            let _g = st.lock.lock_recover();
            st.critical_section();
        }
    }

    fn check(&self, st: &ToyLockState) -> Result<(), String> {
        if st.violations.load(Ordering::Relaxed) > 0 {
            return Err(format!(
                "mutual exclusion violated {} time(s)",
                st.violations.load(Ordering::Relaxed)
            ));
        }
        if st.in_cs.load(Ordering::Relaxed) != 0 {
            return Err("a thread never left the critical section".into());
        }
        let acq = st.acquisitions.load(Ordering::Relaxed);
        if acq != self.threads as u64 {
            return Err(format!(
                "expected {} critical sections, saw {acq}",
                self.threads
            ));
        }
        Ok(())
    }

    fn state_hash(&self, st: &ToyLockState) -> Option<u64> {
        // Atomics only (the contract): flag + counters cover all shared
        // state except lock ownership, which the scheduler's progress
        // vector pins for these straight-line bodies.
        let mut h = u64::from(st.flag.load(Ordering::Relaxed));
        h = h
            .wrapping_mul(0x100_0193)
            .wrapping_add(st.in_cs.load(Ordering::Relaxed))
            .wrapping_mul(0x100_0193)
            .wrapping_add(st.violations.load(Ordering::Relaxed))
            .wrapping_mul(0x100_0193)
            .wrapping_add(st.acquisitions.load(Ordering::Relaxed));
        Some(h)
    }
}
