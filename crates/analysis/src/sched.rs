//! loom-lite: a deterministic scheduler exploring thread interleavings.
//!
//! Real OS threads run the model's thread bodies, but exactly **one runs
//! at a time**: every synchronization operation (through the
//! [`crate::llsync::LLShim`] primitives) is a *yield point* where the
//! thread parks and the scheduler picks who proceeds. Because model
//! bodies only communicate through shim primitives, the schedule — the
//! sequence of picks — fully determines the execution, so:
//!
//! - **Exhaustive mode** runs a depth-first search over every schedule
//!   (the next schedule is derived by backtracking the last pick that
//!   had an untried alternative);
//! - **Random mode** samples schedules from a seeded xorshift generator —
//!   deterministic per seed, so a failing seed is a reproducer;
//! - **Replay mode** re-runs one recorded schedule exactly.
//!
//! Every failure carries the schedule that produced it (and the seed, in
//! random mode) plus printable replay instructions. Deadlocks (no ready
//! thread while some are unfinished) and step-bound overruns (livelock)
//! are failures too, not hangs.
//!
//! Two reductions keep the tree tractable:
//!
//! - **Sleep-set partial-order reduction** (exhaustive mode): each
//!   parked thread declares the operation it will perform next (its
//!   [`OpId`]); after a subtree for thread `t` is explored, `t` joins
//!   the *sleep set* of its later siblings and stays asleep until an
//!   operation **dependent** with its pending one executes. A schedule
//!   whose every ready thread sleeps is a guaranteed reordering of an
//!   already-explored one and is abandoned (counted in
//!   [`Report::sleep_pruned`]). Soundness rests on [`dependent`] being
//!   conservative: independent operations commute and cannot
//!   enable/disable each other, so commuting them cannot change any
//!   reachable state.
//! - **Optional state hashing**: when a model reports a state hash at a
//!   choice point and the (hash, progress, statuses, resources, sleep
//!   set, tracked-location digests) tuple was seen before, the subtree
//!   is skipped — sound when the hash covers all model-owned shared
//!   state, because the folded scheduler state determines the rest.
//!   Models with loops (spin retries) need this or a step bound to keep
//!   the tree finite. Caveat: tracked-cell *shadow* clocks are not
//!   folded, so race coverage is approximate under state-hash pruning —
//!   models built to exercise the race detector should not implement
//!   `state_hash`.
//!
//! The checker also maintains **vector clocks** ([`crate::vclock`]) at
//! every yield point: lock acquire/release and `Acquire`/`Release`
//! atomic edges build the happens-before relation that the weak-memory
//! store buffer and the [`crate::llsync::LLCell`] race detector consume.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};

use crate::vclock::VClock;

// --------------------------------------------------------------------------
// Shared execution context
// --------------------------------------------------------------------------

/// Thread id of the harness (constructor / checker) context: operations
/// from it free-pass without scheduling.
pub(crate) const HARNESS: usize = usize::MAX;

/// What a parked model thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Spawned but not yet parked at its first yield point. The
    /// scheduler grants no slices until every thread has started —
    /// otherwise a grant could race the first park and replay would not
    /// be deterministic.
    NotStarted,
    /// Runnable: the scheduler may pick it at the next choice point.
    Ready,
    /// Waiting on resource `rid` (a lock another thread holds).
    Blocked(usize),
    /// The body returned (or unwound); never scheduled again.
    Finished,
}

/// One lock's scheduler-visible state (mutexes and rwlocks share this).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ResourceState {
    /// Exclusive holder (mutex owner or rwlock writer).
    pub writer: Option<usize>,
    /// Shared holders (rwlock readers).
    pub readers: usize,
    /// Poison flag (rwlocks only).
    pub poisoned: bool,
}

/// The shared-state operation a parked thread will perform when next
/// scheduled. Drives the sleep-set independence relation: two
/// operations are *dependent* when their order can matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpId {
    /// Not yet known (thread start, or an op with no classification).
    /// Conservatively dependent with everything.
    Unknown,
    /// Any operation on lock resource `rid` (acquire, release, poison
    /// flag reads/writes).
    Lock(usize),
    /// Load of tracked atomic `id`.
    AtomicLoad(usize),
    /// Store or RMW of tracked atomic `id`.
    AtomicStore(usize),
    /// Read of tracked cell `id`.
    CellRead(usize),
    /// Write of tracked cell `id`.
    CellWrite(usize),
}

/// Conservative dependence: `false` only when the two operations
/// provably commute and cannot enable/disable each other. Same-location
/// load/load and read/read commute (loads touch only the reader's own
/// visibility floor); everything else on the same location does not.
pub(crate) fn dependent(a: OpId, b: OpId) -> bool {
    use OpId::*;
    match (a, b) {
        (Unknown, _) | (_, Unknown) => true,
        (Lock(x), Lock(y)) => x == y,
        (AtomicLoad(_), AtomicLoad(_)) => false,
        (AtomicLoad(x), AtomicStore(y)) | (AtomicStore(x), AtomicLoad(y)) => x == y,
        (AtomicStore(x), AtomicStore(y)) => x == y,
        (CellRead(_), CellRead(_)) => false,
        (CellRead(x), CellWrite(y)) | (CellWrite(x), CellRead(y)) => x == y,
        (CellWrite(x), CellWrite(y)) => x == y,
        _ => false,
    }
}

/// What kind of decision a [`Choice`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChoiceKind {
    /// Which ready thread ran.
    Thread,
    /// Which visible store-buffer value a relaxed load observed
    /// (index 0 = newest).
    Value,
}

/// Bitmask with the low `n` bits set (alternative masks; `n <= 64`).
fn full_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// One recorded scheduling decision: which of the ready threads ran, or
/// which buffered value a load observed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    /// Index *into the ready set* (thread choices) or value list that
    /// was chosen.
    pub chosen: usize,
    /// Size of the choice set at this point (for DFS backtracking).
    pub ready_len: usize,
    /// Thread pick or store-buffer value pick.
    pub kind: ChoiceKind,
    /// Bitmask over `0..ready_len` of indices DFS may explore at this
    /// node (thread choices exclude sleeping threads). Backtracking
    /// only advances to set bits.
    pub cand: u64,
}

pub(crate) struct CtxState {
    /// The thread currently allowed to run (`None` = scheduler's turn).
    pub active: Option<usize>,
    pub status: Vec<Status>,
    pub resources: Vec<ResourceState>,
    /// Scheduling decisions prescribed for this execution (DFS prefix or
    /// a replay script).
    pub script: Vec<usize>,
    pub cursor: usize,
    /// Decisions actually taken (the replay script of this execution).
    pub taken: Vec<Choice>,
    /// Per-thread count of yield points passed (progress vector).
    pub progress: Vec<u32>,
    /// Set on failure/prune: every parked thread unwinds via
    /// [`AbortToken`] instead of continuing.
    pub aborted: bool,
    /// First failure message observed (body panic, deadlock, …).
    pub failed: Option<String>,
    /// Random-mode generator state (unused otherwise).
    pub rng: u64,
    pub use_rng: bool,
    /// True when the execution was cut by the state-hash prune.
    pub pruned: bool,
    /// True when the execution was cut by the sleep-set prune.
    pub sleep_pruned: bool,
    /// Exhaustive-DFS mode: sleep sets are maintained and enforced.
    pub dfs: bool,
    /// Per-thread happens-before clock (index = tid).
    pub clocks: Vec<VClock>,
    /// Per-lock-resource clock (joined on release, acquired on lock).
    pub resource_clocks: Vec<VClock>,
    /// The operation each thread will perform when next scheduled.
    pub pending: Vec<OpId>,
    /// Sleep set as a tid bitmask (exhaustive mode only).
    pub sleep: u64,
    /// Per-tracked-location state digests (atomics fold their store
    /// buffer; folded into the prune key).
    pub tracked: Vec<u64>,
}

/// The shared handle between the scheduler and its worker threads.
pub(crate) struct ExecCtx {
    pub state: Mutex<CtxState>,
    pub cv: Condvar,
}

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl ExecCtx {
    fn new(threads: usize, script: Vec<usize>, rng: u64, use_rng: bool, dfs: bool) -> Self {
        Self {
            state: Mutex::new(CtxState {
                active: None,
                status: vec![Status::NotStarted; threads],
                resources: Vec::new(),
                script,
                cursor: 0,
                taken: Vec::new(),
                progress: vec![0; threads],
                aborted: false,
                failed: None,
                rng,
                use_rng,
                pruned: false,
                sleep_pruned: false,
                dfs,
                clocks: (0..threads)
                    .map(|t| {
                        // Distinct starting epochs: C_t[t] = 1.
                        let mut c = VClock::new();
                        c.set(t, 1);
                        c
                    })
                    .collect(),
                resource_clocks: Vec::new(),
                pending: vec![OpId::Unknown; threads],
                sleep: 0,
                tracked: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, CtxState> {
        recover(self.state.lock())
    }

    /// Registers a new lock resource, returning its id.
    pub(crate) fn alloc_resource(&self) -> usize {
        let mut st = self.lock();
        st.resources.push(ResourceState::default());
        st.resource_clocks.push(VClock::new());
        st.resources.len() - 1
    }

    /// Registers a tracked location (atomic store buffer or data cell),
    /// returning its id for [`OpId`] classification and digests.
    pub(crate) fn alloc_tracked(&self) -> usize {
        let mut st = self.lock();
        st.tracked.push(0);
        st.tracked.len() - 1
    }

    /// Snapshot of thread `tid`'s happens-before clock.
    pub(crate) fn clock_of(&self, tid: usize) -> VClock {
        self.lock().clocks[tid].clone()
    }

    /// Joins `other` into thread `tid`'s clock (an acquire edge).
    pub(crate) fn join_clock(&self, tid: usize, other: &VClock) {
        self.lock().clocks[tid].join(other);
    }

    /// Increments thread `tid`'s own clock component (a release edge).
    pub(crate) fn bump_clock(&self, tid: usize) {
        self.lock().clocks[tid].inc(tid);
    }

    /// Publishes a tracked location's state digest (folded into the
    /// state-hash prune key).
    pub(crate) fn set_tracked_digest(&self, id: usize, digest: u64) {
        self.lock().tracked[id] = digest;
    }

    /// Records a store-buffer value choice: which of `n` visible values
    /// (0 = newest) a relaxed load observes. Consumes the schedule like
    /// a thread choice, so DFS/replay explore value alternatives too.
    /// Called by the *active* worker, not the scheduler.
    pub(crate) fn pick_value(&self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let mut st = self.lock();
        let idx = if st.cursor < st.script.len() {
            st.script[st.cursor].min(n - 1)
        } else if st.use_rng {
            let mut r = st.rng;
            let v = (xorshift(&mut r) as usize) % n;
            st.rng = r;
            v
        } else {
            0
        };
        st.cursor += 1;
        st.taken.push(Choice {
            chosen: idx,
            ready_len: n,
            kind: ChoiceKind::Value,
            cand: full_mask(n),
        });
        idx
    }

    /// Declares the operation `tid` is about to perform and parks until
    /// the scheduler grants it.
    pub(crate) fn park_op(&self, tid: usize, op: OpId) {
        {
            let mut st = self.lock();
            st.pending[tid] = op;
        }
        self.park(tid, Status::Ready);
    }

    /// Parks the calling worker until the scheduler picks it. `status` is
    /// what the scheduler should see while we are parked. Panics with
    /// [`AbortToken`] when the execution is aborted.
    pub(crate) fn park(&self, tid: usize, status: Status) {
        let mut st = self.lock();
        st.status[tid] = status;
        st.active = None;
        self.cv.notify_all();
        while st.active != Some(tid) {
            if st.aborted {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            st = recover(self.cv.wait(st));
        }
        st.progress[tid] = st.progress[tid].saturating_add(1);
    }

    /// Marks the calling worker finished and hands control back.
    pub(crate) fn finish(&self, tid: usize) {
        let mut st = self.lock();
        st.status[tid] = Status::Finished;
        if st.active == Some(tid) {
            st.active = None;
        }
        self.cv.notify_all();
    }

    /// Promotes every thread blocked on `rid` back to ready (a lock
    /// release made the resource available).
    pub(crate) fn promote_blocked(st: &mut CtxState, rid: usize) {
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(rid) {
                *s = Status::Ready;
            }
        }
    }
}

/// Panic payload workers unwind with when an execution is aborted; the
/// worker wrapper swallows it.
pub(crate) struct AbortToken;

// --------------------------------------------------------------------------
// Panic-noise suppression
// --------------------------------------------------------------------------

thread_local! {
    static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// panics on model worker threads — exhaustive searches unwind thousands
/// of times by design; the failure is captured and reported once.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(|f| f.get()) {
                return;
            }
            prev(info);
        }));
    });
}

// --------------------------------------------------------------------------
// Models
// --------------------------------------------------------------------------

/// A concurrent scenario the explorer can check: shared state built from
/// [`crate::llsync::LLShim`] primitives, N thread bodies, and a final
/// invariant check run after every thread joined.
pub trait Model: Send + Sync + 'static {
    /// The shared state threads operate on. All cross-thread mutation
    /// must go through shim primitives — plain fields are only written
    /// during [`Model::make_state`] or read in [`Model::check`].
    type State: Send + Sync + 'static;

    /// Short stable name (used in reports and the registry).
    fn name(&self) -> &'static str;

    /// Number of threads this model runs.
    fn threads(&self) -> usize;

    /// Builds the shared state. Called once per execution, with the
    /// scheduler context installed so shim primitives register
    /// themselves.
    fn make_state(&self) -> Self::State;

    /// The body of thread `tid`. Runs under the deterministic scheduler.
    fn run_thread(&self, tid: usize, state: &Self::State);

    /// Invariants over the final state, checked after every thread
    /// joined. `Err` fails the execution.
    fn check(&self, state: &Self::State) -> Result<(), String>;

    /// Optional state hash for DFS pruning. Must cover **all**
    /// model-owned shared state and only read atomics or tracked cells
    /// (never a shim lock), since it runs while workers are parked
    /// (possibly holding locks). `None` disables pruning at this point.
    /// Note: pruning makes race-detector coverage approximate (cell
    /// shadow clocks are not part of the key) — models written to
    /// exercise the race detector should return `None`.
    fn state_hash(&self, _state: &Self::State) -> Option<u64> {
        None
    }
}

// --------------------------------------------------------------------------
// Exploration
// --------------------------------------------------------------------------

/// How the explorer picks schedules.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Depth-first search over every schedule (deterministic, complete up
    /// to the step bound / pruning).
    Exhaustive,
    /// `iterations` schedules sampled from a seeded generator.
    Random {
        /// Generator seed; a failing seed is a deterministic reproducer.
        seed: u64,
        /// Number of executions to sample.
        iterations: u64,
    },
    /// Re-run one recorded schedule exactly.
    Replay {
        /// The schedule: for each choice point, the index into the ready
        /// set that ran ([`Failure::script`]).
        script: Vec<usize>,
    },
}

/// A failed execution and everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong (invariant message, panic payload, deadlock, …).
    pub message: String,
    /// The schedule that produced the failure.
    pub script: Vec<usize>,
    /// One char per schedule entry: `t` = thread pick, `v` = relaxed-load
    /// store-buffer value pick. Same length as `script`.
    pub kinds: String,
    /// `(seed, execution index)` when found in random mode.
    pub seed: Option<(u64, u64)>,
}

/// Renders the per-decision kind annotation for a recorded schedule.
fn kinds_of(taken: &[Choice]) -> String {
    taken
        .iter()
        .map(|c| match c.kind {
            ChoiceKind::Thread => 't',
            ChoiceKind::Value => 'v',
        })
        .collect()
}

impl Failure {
    /// Human-readable replay instructions for this failure.
    pub fn replay_instructions(&self, model: &str) -> String {
        let script = self
            .script
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut out = format!(
            "model '{model}' failed: {}\n  replay schedule: [{script}]\n  \
             programmatic replay: Explorer::new(Mode::Replay {{ script: vec![{script}] }}).run(model)",
            self.message
        );
        if self.kinds.contains('v') {
            out.push_str(&format!(
                "\n  decision kinds: {} (t = thread pick, v = relaxed-load value pick)",
                self.kinds
            ));
        }
        if let Some((seed, it)) = self.seed {
            out.push_str(&format!(
                "\n  found by: Mode::Random {{ seed: {seed:#x}, .. }} at iteration {it}"
            ));
        }
        out
    }
}

/// Result of exploring a model.
#[derive(Debug, Clone)]
pub struct Report {
    /// Executions actually run.
    pub executions: u64,
    /// Executions cut short by the state-hash prune.
    pub pruned: u64,
    /// Executions abandoned by the sleep-set partial-order reduction
    /// (every ready thread was asleep: a guaranteed reordering of an
    /// explored schedule).
    pub sleep_pruned: u64,
    /// The first failure, if any (`None` = every explored schedule held).
    pub failure: Option<Failure>,
    /// True when exhaustive exploration finished the whole tree (false
    /// when stopped by `max_executions`).
    pub complete: bool,
}

/// Drives a [`Model`] through schedules according to a [`Mode`].
pub struct Explorer {
    mode: Mode,
    /// Abort an execution after this many scheduling steps (livelock
    /// guard; the overrun is reported as a failure).
    pub max_steps: u32,
    /// Stop exhaustive exploration after this many executions (safety
    /// valve; `Report::complete` is false when hit).
    pub max_executions: u64,
}

impl Explorer {
    /// An explorer with default bounds (20k steps, 1M executions).
    pub fn new(mode: Mode) -> Self {
        Self {
            mode,
            max_steps: 20_000,
            max_executions: 1_000_000,
        }
    }

    /// Sets the per-execution step bound.
    pub fn with_max_steps(mut self, max: u32) -> Self {
        self.max_steps = max;
        self
    }

    /// Sets the exhaustive execution cap.
    pub fn with_max_executions(mut self, max: u64) -> Self {
        self.max_executions = max;
        self
    }

    /// Explores `model`, returning the aggregate report.
    pub fn run<M: Model>(&self, model: M) -> Report {
        install_quiet_hook();
        assert!(
            model.threads() <= 64,
            "loom-lite models are limited to 64 threads (sleep-set bitmask)"
        );
        let model = Arc::new(model);
        let mut visited: HashSet<u64> = HashSet::new();
        let mut executions = 0u64;
        let mut pruned = 0u64;
        let mut sleep_pruned = 0u64;

        match self.mode.clone() {
            Mode::Replay { script } => {
                let out = run_one(
                    &model,
                    script,
                    0,
                    false,
                    false,
                    self.max_steps,
                    &mut visited,
                );
                Report {
                    executions: 1,
                    pruned: 0,
                    sleep_pruned: 0,
                    failure: out.failure.map(|message| Failure {
                        message,
                        script: out.taken.iter().map(|c| c.chosen).collect(),
                        kinds: kinds_of(&out.taken),
                        seed: None,
                    }),
                    complete: true,
                }
            }
            Mode::Random { seed, iterations } => {
                for it in 0..iterations {
                    // Split a per-execution stream off the seed.
                    let exec_seed =
                        splitmix(seed.wrapping_add(it.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                    let out = run_one(
                        &model,
                        Vec::new(),
                        exec_seed,
                        true,
                        false,
                        self.max_steps,
                        &mut visited,
                    );
                    executions += 1;
                    if let Some(message) = out.failure {
                        return Report {
                            executions,
                            pruned,
                            sleep_pruned,
                            failure: Some(Failure {
                                message,
                                script: out.taken.iter().map(|c| c.chosen).collect(),
                                kinds: kinds_of(&out.taken),
                                seed: Some((seed, it)),
                            }),
                            complete: false,
                        };
                    }
                }
                Report {
                    executions,
                    pruned,
                    sleep_pruned,
                    failure: None,
                    complete: false,
                }
            }
            Mode::Exhaustive => {
                let mut script: Vec<usize> = Vec::new();
                loop {
                    let out = run_one(
                        &model,
                        script.clone(),
                        0,
                        false,
                        true,
                        self.max_steps,
                        &mut visited,
                    );
                    executions += 1;
                    if out.pruned {
                        pruned += 1;
                    }
                    if out.sleep_pruned {
                        sleep_pruned += 1;
                    }
                    if let Some(message) = out.failure {
                        return Report {
                            executions,
                            pruned,
                            sleep_pruned,
                            failure: Some(Failure {
                                message,
                                script: out.taken.iter().map(|c| c.chosen).collect(),
                                kinds: kinds_of(&out.taken),
                                seed: None,
                            }),
                            complete: false,
                        };
                    }
                    // DFS backtrack: find the deepest choice with an
                    // untried alternative the sleep set allows.
                    let mut taken = out.taken;
                    let next = loop {
                        match taken.pop() {
                            None => break None,
                            Some(c) => {
                                let alt = (c.chosen + 1..c.ready_len.min(64))
                                    .find(|&j| c.cand & (1u64 << j) != 0);
                                if let Some(j) = alt {
                                    let mut s: Vec<usize> =
                                        taken.iter().map(|c| c.chosen).collect();
                                    s.push(j);
                                    break Some(s);
                                }
                            }
                        }
                    };
                    match next {
                        Some(s) => script = s,
                        None => {
                            return Report {
                                executions,
                                pruned,
                                sleep_pruned,
                                failure: None,
                                complete: true,
                            }
                        }
                    }
                    if executions >= self.max_executions {
                        return Report {
                            executions,
                            pruned,
                            sleep_pruned,
                            failure: None,
                            complete: false,
                        };
                    }
                }
            }
        }
    }
}

pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x.max(1);
    x
}

struct ExecOutcome {
    taken: Vec<Choice>,
    failure: Option<String>,
    pruned: bool,
    sleep_pruned: bool,
}

/// Runs one execution of `model` under the schedule `script` (choices
/// beyond the script come from the rng in random mode, else the first
/// non-sleeping candidate). `dfs` enables the sleep-set reduction.
fn run_one<M: Model>(
    model: &Arc<M>,
    script: Vec<usize>,
    rng: u64,
    use_rng: bool,
    dfs: bool,
    max_steps: u32,
    visited: &mut HashSet<u64>,
) -> ExecOutcome {
    let n = model.threads();
    let ctx = Arc::new(ExecCtx::new(n, script, rng.max(1), use_rng, dfs));

    // Build the state with the harness context installed so primitives
    // register their resources with this execution.
    crate::llsync::set_current(Some((Arc::clone(&ctx), HARNESS)));
    let state = Arc::new(model.make_state());

    let mut handles = Vec::with_capacity(n);
    for tid in 0..n {
        let ctx = Arc::clone(&ctx);
        let state = Arc::clone(&state);
        let model = Arc::clone(model);
        handles.push(std::thread::spawn(move || {
            IN_MODEL.with(|f| f.set(true));
            crate::llsync::set_current(Some((Arc::clone(&ctx), tid)));
            let body = catch_unwind(AssertUnwindSafe(|| {
                // First park: nothing runs until the scheduler says so.
                ctx.park(tid, Status::Ready);
                model.run_thread(tid, &state);
            }));
            if let Err(payload) = body {
                if payload.downcast_ref::<AbortToken>().is_none() {
                    let msg = panic_message(payload.as_ref());
                    let mut st = ctx.lock();
                    if st.failed.is_none() {
                        st.failed = Some(format!("thread {tid} panicked: {msg}"));
                    }
                    st.aborted = true;
                }
            }
            ctx.finish(tid);
            crate::llsync::set_current(None);
        }));
    }

    // Scheduler loop.
    let mut steps = 0u32;
    {
        let mut st = ctx.lock();
        loop {
            while st.active.is_some() || st.status.contains(&Status::NotStarted) {
                st = recover(ctx.cv.wait(st));
            }
            if st.aborted || st.status.iter().all(|s| *s == Status::Finished) {
                break;
            }
            let ready: Vec<usize> = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::Ready)
                .map(|(i, _)| i)
                .collect();
            if ready.is_empty() {
                let held: Vec<String> = st
                    .status
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        Status::Blocked(r) => Some(format!("thread {i} waits on resource {r}")),
                        _ => None,
                    })
                    .collect();
                st.failed = Some(format!("deadlock: {}", held.join("; ")));
                st.aborted = true;
                ctx.cv.notify_all();
                break;
            }
            steps += 1;
            if steps > max_steps {
                st.failed = Some(format!(
                    "step bound exceeded ({max_steps} scheduling steps): possible livelock"
                ));
                st.aborted = true;
                ctx.cv.notify_all();
                break;
            }
            // State-hash pruning (exhaustive mode only: random/replay
            // must run their schedule to the end).
            if st.dfs && st.cursor >= st.script.len() {
                if let Some(h) = model.state_hash(&state) {
                    let key = prune_key(h, &st);
                    if !visited.insert(key) {
                        st.pruned = true;
                        st.aborted = true;
                        ctx.cv.notify_all();
                        break;
                    }
                }
            }
            // Candidates: ready threads the sleep set allows (DFS only;
            // random/replay may pick any ready thread).
            let cand: Vec<usize> = if st.dfs {
                (0..ready.len())
                    .filter(|&i| st.sleep & (1u64 << ready[i]) == 0)
                    .collect()
            } else {
                (0..ready.len()).collect()
            };
            if cand.is_empty() {
                // Every ready thread sleeps: any continuation reorders
                // independent ops of an already-explored schedule.
                st.sleep_pruned = true;
                st.aborted = true;
                ctx.cv.notify_all();
                break;
            }
            let idx = if st.cursor < st.script.len() {
                st.script[st.cursor].min(ready.len() - 1)
            } else if st.use_rng {
                let mut r = st.rng;
                let v = (xorshift(&mut r) as usize) % ready.len();
                st.rng = r;
                v
            } else {
                cand[0]
            };
            let mut cand_mask = 0u64;
            for &i in &cand {
                if i < 64 {
                    cand_mask |= 1u64 << i;
                }
            }
            if st.dfs {
                // Sleep-set evolution: siblings explored before `idx` at
                // this node go to sleep in the chosen child; everything
                // dependent on the executed op wakes.
                let chosen_tid = ready[idx];
                let chosen_op = st.pending[chosen_tid];
                let mut sleep = st.sleep;
                for &i in &cand {
                    if i < idx {
                        sleep |= 1u64 << ready[i];
                    }
                }
                sleep &= !(1u64 << chosen_tid);
                let mut kept = 0u64;
                for (t, &op) in st.pending.iter().enumerate() {
                    if sleep & (1u64 << t) != 0 && !dependent(op, chosen_op) {
                        kept |= 1u64 << t;
                    }
                }
                st.sleep = kept;
            }
            st.cursor += 1;
            st.taken.push(Choice {
                chosen: idx,
                ready_len: ready.len(),
                kind: ChoiceKind::Thread,
                cand: cand_mask,
            });
            st.active = Some(ready[idx]);
            ctx.cv.notify_all();
        }
    }

    for h in handles {
        let _ = h.join();
    }

    let (taken, mut failure, pruned, sleep_pruned) = {
        let mut st = ctx.lock();
        (
            std::mem::take(&mut st.taken),
            st.failed.take(),
            st.pruned,
            st.sleep_pruned,
        )
    };

    // Final invariants (harness context still installed: shim ops
    // free-pass since every worker has finished).
    if failure.is_none() && !pruned && !sleep_pruned {
        if let Err(msg) = model.check(&state) {
            failure = Some(format!("invariant violated: {msg}"));
        }
    }
    crate::llsync::set_current(None);
    ExecOutcome {
        taken,
        failure,
        pruned,
        sleep_pruned,
    }
}

/// The prune key folds everything (besides the model's own hash) that
/// determines future behavior: progress, statuses, lock-resource
/// ownership, the sleep set (two visits with different sleep sets
/// explore different subtrees), and the tracked-location digests
/// (store-buffer contents and visibility floors). Vector clocks and
/// cell shadow state are deliberately excluded — see the module docs on
/// approximate race coverage under pruning.
fn prune_key(state_hash: u64, st: &CtxState) -> u64 {
    let mut h = state_hash ^ 0x517C_C1B7_2722_0A95;
    for (i, p) in st.progress.iter().enumerate() {
        h = splitmix(h ^ ((*p as u64) << 32) ^ i as u64);
    }
    for s in &st.status {
        let tag = match s {
            Status::NotStarted => 0u64,
            Status::Ready => 1,
            Status::Blocked(r) => 0x100 + *r as u64,
            Status::Finished => 2,
        };
        h = splitmix(h ^ tag);
    }
    for r in &st.resources {
        let tag = (r.writer.map(|w| w as u64 + 1).unwrap_or(0) << 32)
            | ((r.readers as u64) << 1)
            | r.poisoned as u64;
        h = splitmix(h ^ tag);
    }
    h = splitmix(h ^ st.sleep);
    for d in &st.tracked {
        h = splitmix(h ^ *d);
    }
    h
}

fn panic_message(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llsync::{LLAtomicU64, LLMutex, LLRwLock};
    use cf_obs::sync::{Ordering, ShimAtomicU64, ShimMutex, ShimRwLock};

    /// Two threads each bump a shared counter twice with relaxed RMWs.
    /// RMWs are atomic even under the store-buffer model (they read the
    /// newest value), so every interleaving must end on 4.
    struct CountingModel;

    struct CountingState {
        counter: LLAtomicU64,
    }

    impl Model for CountingModel {
        type State = CountingState;

        fn name(&self) -> &'static str {
            "counting"
        }

        fn threads(&self) -> usize {
            2
        }

        fn make_state(&self) -> CountingState {
            CountingState {
                counter: ShimAtomicU64::new(0),
            }
        }

        fn run_thread(&self, _tid: usize, st: &CountingState) {
            st.counter.fetch_add(1, Ordering::Relaxed);
            st.counter.fetch_add(1, Ordering::Relaxed);
        }

        fn check(&self, st: &CountingState) -> Result<(), String> {
            let v = st.counter.load(Ordering::Relaxed);
            if v == 4 {
                Ok(())
            } else {
                Err(format!("expected counter 4, got {v}"))
            }
        }
    }

    #[test]
    fn exhaustive_run_completes_relaxed_rmws_stay_atomic() {
        let report = Explorer::new(Mode::Exhaustive).run(CountingModel);
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
    }

    /// Two threads perform idempotent, *dependent* operations on one
    /// lock resource (`clear_poison` is classified `Lock(rid)`, so the
    /// sleep set cannot collapse the orders) that leave no trace in any
    /// state — interleavings converge and the state-hash prune must
    /// fire.
    struct ConvergentModel;

    impl Model for ConvergentModel {
        type State = LLRwLock<()>;

        fn name(&self) -> &'static str {
            "convergent"
        }

        fn threads(&self) -> usize {
            2
        }

        fn make_state(&self) -> LLRwLock<()> {
            ShimRwLock::new(())
        }

        fn run_thread(&self, _tid: usize, st: &LLRwLock<()>) {
            st.clear_poison();
            st.clear_poison();
        }

        fn check(&self, _st: &LLRwLock<()>) -> Result<(), String> {
            Ok(())
        }

        fn state_hash(&self, _st: &Self::State) -> Option<u64> {
            // All shared state is the (constant) poison flag, covered by
            // the resource fold in the prune key.
            Some(0)
        }
    }

    #[test]
    fn exhaustive_run_prunes_converging_states() {
        let report = Explorer::new(Mode::Exhaustive).run(ConvergentModel);
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
        assert!(
            report.pruned > 0,
            "identical interleaved states must hit the prune ({report:?})"
        );
    }

    /// Two threads store to *disjoint* atomics: every op pair is
    /// independent, so sleep sets must collapse the order explosion.
    struct DisjointModel;

    struct DisjointState {
        a: LLAtomicU64,
        b: LLAtomicU64,
    }

    impl Model for DisjointModel {
        type State = DisjointState;

        fn name(&self) -> &'static str {
            "disjoint"
        }

        fn threads(&self) -> usize {
            2
        }

        fn make_state(&self) -> DisjointState {
            DisjointState {
                a: ShimAtomicU64::new(0),
                b: ShimAtomicU64::new(0),
            }
        }

        fn run_thread(&self, tid: usize, st: &DisjointState) {
            let target = if tid == 0 { &st.a } else { &st.b };
            target.store(1, Ordering::Relaxed);
            target.store(2, Ordering::Relaxed);
        }

        fn check(&self, st: &DisjointState) -> Result<(), String> {
            let (a, b) = (st.a.load(Ordering::Relaxed), st.b.load(Ordering::Relaxed));
            if a == 2 && b == 2 {
                Ok(())
            } else {
                Err(format!("expected (2, 2), got ({a}, {b})"))
            }
        }
    }

    #[test]
    fn sleep_sets_prune_independent_interleavings() {
        let report = Explorer::new(Mode::Exhaustive).run(DisjointModel);
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
        assert!(
            report.sleep_pruned > 0,
            "reorderings of independent stores must hit the sleep-set \
             prune ({report:?})"
        );
    }

    /// Classic lock-order inversion: t0 takes a then b, t1 takes b then
    /// a. Exhaustive exploration must find the deadlock and name the
    /// blocked resources.
    struct DeadlockModel;

    struct TwoLocks {
        a: LLMutex<()>,
        b: LLMutex<()>,
    }

    impl Model for DeadlockModel {
        type State = TwoLocks;

        fn name(&self) -> &'static str {
            "lock-order-inversion"
        }

        fn threads(&self) -> usize {
            2
        }

        fn make_state(&self) -> TwoLocks {
            TwoLocks {
                a: ShimMutex::new(()),
                b: ShimMutex::new(()),
            }
        }

        fn run_thread(&self, tid: usize, st: &TwoLocks) {
            if tid == 0 {
                let _ga = st.a.lock_recover();
                let _gb = st.b.lock_recover();
            } else {
                let _gb = st.b.lock_recover();
                let _ga = st.a.lock_recover();
            }
        }

        fn check(&self, _st: &TwoLocks) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn exhaustive_run_finds_lock_order_deadlock() {
        let report = Explorer::new(Mode::Exhaustive).run(DeadlockModel);
        let failure = report.failure.expect("inverted lock order must deadlock");
        assert!(
            failure.message.contains("deadlock"),
            "unexpected failure: {}",
            failure.message
        );
        // The recorded schedule must reproduce the exact same failure.
        let replay = Explorer::new(Mode::Replay {
            script: failure.script.clone(),
        })
        .run(DeadlockModel);
        let again = replay.failure.expect("replay must reproduce the deadlock");
        assert_eq!(again.message, failure.message);
    }

    /// A thread that never yields control back (scheduler-visible spin)
    /// must trip the step bound, not hang the explorer.
    struct SpinModel;

    struct SpinState {
        flag: LLAtomicU64,
    }

    impl Model for SpinModel {
        type State = SpinState;

        fn name(&self) -> &'static str {
            "spin"
        }

        fn threads(&self) -> usize {
            1
        }

        fn make_state(&self) -> SpinState {
            SpinState {
                flag: ShimAtomicU64::new(0),
            }
        }

        fn run_thread(&self, _tid: usize, st: &SpinState) {
            while st.flag.load(Ordering::Relaxed) == 0 {}
        }

        fn check(&self, _st: &SpinState) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn step_bound_catches_livelock() {
        let report = Explorer::new(Mode::Exhaustive)
            .with_max_steps(100)
            .run(SpinModel);
        let failure = report.failure.expect("spin loop must hit the step bound");
        assert!(
            failure.message.contains("step bound"),
            "unexpected failure: {}",
            failure.message
        );
    }

    #[test]
    fn replay_instructions_name_the_model_and_schedule() {
        let f = Failure {
            message: "boom".into(),
            script: vec![1, 0, 2],
            kinds: "tvt".into(),
            seed: Some((0xCF5F, 7)),
        };
        let text = f.replay_instructions("toy-lock-buggy");
        assert!(text.contains("toy-lock-buggy"));
        assert!(text.contains("[1,0,2]"));
        assert!(text.contains("0xcf5f"));
        assert!(text.contains("decision kinds: tvt"));
    }
}
