//! loom-lite: a deterministic scheduler exploring thread interleavings.
//!
//! Real OS threads run the model's thread bodies, but exactly **one runs
//! at a time**: every synchronization operation (through the
//! [`crate::llsync::LLShim`] primitives) is a *yield point* where the
//! thread parks and the scheduler picks who proceeds. Because model
//! bodies only communicate through shim primitives, the schedule — the
//! sequence of picks — fully determines the execution, so:
//!
//! - **Exhaustive mode** runs a depth-first search over every schedule
//!   (the next schedule is derived by backtracking the last pick that
//!   had an untried alternative);
//! - **Random mode** samples schedules from a seeded xorshift generator —
//!   deterministic per seed, so a failing seed is a reproducer;
//! - **Replay mode** re-runs one recorded schedule exactly.
//!
//! Every failure carries the schedule that produced it (and the seed, in
//! random mode) plus printable replay instructions. Deadlocks (no ready
//! thread while some are unfinished) and step-bound overruns (livelock)
//! are failures too, not hangs.
//!
//! Optional state hashing prunes the DFS: when a model reports a state
//! hash at a choice point and the (hash, per-thread progress, statuses)
//! triple was seen before, the subtree is skipped — sound when the hash
//! covers all shared state, because thread progress then determines the
//! rest. Models with loops (spin retries) need this or a step bound to
//! keep the tree finite.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};

// --------------------------------------------------------------------------
// Shared execution context
// --------------------------------------------------------------------------

/// Thread id of the harness (constructor / checker) context: operations
/// from it free-pass without scheduling.
pub(crate) const HARNESS: usize = usize::MAX;

/// What a parked model thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Spawned but not yet parked at its first yield point. The
    /// scheduler grants no slices until every thread has started —
    /// otherwise a grant could race the first park and replay would not
    /// be deterministic.
    NotStarted,
    /// Runnable: the scheduler may pick it at the next choice point.
    Ready,
    /// Waiting on resource `rid` (a lock another thread holds).
    Blocked(usize),
    /// The body returned (or unwound); never scheduled again.
    Finished,
}

/// One lock's scheduler-visible state (mutexes and rwlocks share this).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ResourceState {
    /// Exclusive holder (mutex owner or rwlock writer).
    pub writer: Option<usize>,
    /// Shared holders (rwlock readers).
    pub readers: usize,
    /// Poison flag (rwlocks only).
    pub poisoned: bool,
}

/// One recorded scheduling decision: which of the ready threads ran.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    /// Index *into the ready set* that was chosen.
    pub chosen: usize,
    /// Size of the ready set at this point (for DFS backtracking).
    pub ready_len: usize,
}

pub(crate) struct CtxState {
    /// The thread currently allowed to run (`None` = scheduler's turn).
    pub active: Option<usize>,
    pub status: Vec<Status>,
    pub resources: Vec<ResourceState>,
    /// Scheduling decisions prescribed for this execution (DFS prefix or
    /// a replay script).
    pub script: Vec<usize>,
    pub cursor: usize,
    /// Decisions actually taken (the replay script of this execution).
    pub taken: Vec<Choice>,
    /// Per-thread count of yield points passed (progress vector).
    pub progress: Vec<u32>,
    /// Set on failure/prune: every parked thread unwinds via
    /// [`AbortToken`] instead of continuing.
    pub aborted: bool,
    /// First failure message observed (body panic, deadlock, …).
    pub failed: Option<String>,
    /// Random-mode generator state (unused otherwise).
    pub rng: u64,
    pub use_rng: bool,
    /// True when the execution was cut by the state-hash prune.
    pub pruned: bool,
}

/// The shared handle between the scheduler and its worker threads.
pub(crate) struct ExecCtx {
    pub state: Mutex<CtxState>,
    pub cv: Condvar,
}

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl ExecCtx {
    fn new(threads: usize, script: Vec<usize>, rng: u64, use_rng: bool) -> Self {
        Self {
            state: Mutex::new(CtxState {
                active: None,
                status: vec![Status::NotStarted; threads],
                resources: Vec::new(),
                script,
                cursor: 0,
                taken: Vec::new(),
                progress: vec![0; threads],
                aborted: false,
                failed: None,
                rng,
                use_rng,
                pruned: false,
            }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, CtxState> {
        recover(self.state.lock())
    }

    /// Registers a new lock resource, returning its id.
    pub(crate) fn alloc_resource(&self) -> usize {
        let mut st = self.lock();
        st.resources.push(ResourceState::default());
        st.resources.len() - 1
    }

    /// Parks the calling worker until the scheduler picks it. `status` is
    /// what the scheduler should see while we are parked. Panics with
    /// [`AbortToken`] when the execution is aborted.
    pub(crate) fn park(&self, tid: usize, status: Status) {
        let mut st = self.lock();
        st.status[tid] = status;
        st.active = None;
        self.cv.notify_all();
        while st.active != Some(tid) {
            if st.aborted {
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            st = recover(self.cv.wait(st));
        }
        st.progress[tid] = st.progress[tid].saturating_add(1);
    }

    /// Marks the calling worker finished and hands control back.
    pub(crate) fn finish(&self, tid: usize) {
        let mut st = self.lock();
        st.status[tid] = Status::Finished;
        if st.active == Some(tid) {
            st.active = None;
        }
        self.cv.notify_all();
    }

    /// Promotes every thread blocked on `rid` back to ready (a lock
    /// release made the resource available).
    pub(crate) fn promote_blocked(st: &mut CtxState, rid: usize) {
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(rid) {
                *s = Status::Ready;
            }
        }
    }
}

/// Panic payload workers unwind with when an execution is aborted; the
/// worker wrapper swallows it.
pub(crate) struct AbortToken;

// --------------------------------------------------------------------------
// Panic-noise suppression
// --------------------------------------------------------------------------

thread_local! {
    static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// panics on model worker threads — exhaustive searches unwind thousands
/// of times by design; the failure is captured and reported once.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(|f| f.get()) {
                return;
            }
            prev(info);
        }));
    });
}

// --------------------------------------------------------------------------
// Models
// --------------------------------------------------------------------------

/// A concurrent scenario the explorer can check: shared state built from
/// [`crate::llsync::LLShim`] primitives, N thread bodies, and a final
/// invariant check run after every thread joined.
pub trait Model: Send + Sync + 'static {
    /// The shared state threads operate on. All cross-thread mutation
    /// must go through shim primitives — plain fields are only written
    /// during [`Model::make_state`] or read in [`Model::check`].
    type State: Send + Sync + 'static;

    /// Short stable name (used in reports and the registry).
    fn name(&self) -> &'static str;

    /// Number of threads this model runs.
    fn threads(&self) -> usize;

    /// Builds the shared state. Called once per execution, with the
    /// scheduler context installed so shim primitives register
    /// themselves.
    fn make_state(&self) -> Self::State;

    /// The body of thread `tid`. Runs under the deterministic scheduler.
    fn run_thread(&self, tid: usize, state: &Self::State);

    /// Invariants over the final state, checked after every thread
    /// joined. `Err` fails the execution.
    fn check(&self, state: &Self::State) -> Result<(), String>;

    /// Optional state hash for DFS pruning. Must cover **all** shared
    /// state and only read atomics (never lock), since it runs while
    /// workers are parked (possibly holding locks). `None` disables
    /// pruning at this point.
    fn state_hash(&self, _state: &Self::State) -> Option<u64> {
        None
    }
}

// --------------------------------------------------------------------------
// Exploration
// --------------------------------------------------------------------------

/// How the explorer picks schedules.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Depth-first search over every schedule (deterministic, complete up
    /// to the step bound / pruning).
    Exhaustive,
    /// `iterations` schedules sampled from a seeded generator.
    Random {
        /// Generator seed; a failing seed is a deterministic reproducer.
        seed: u64,
        /// Number of executions to sample.
        iterations: u64,
    },
    /// Re-run one recorded schedule exactly.
    Replay {
        /// The schedule: for each choice point, the index into the ready
        /// set that ran ([`Failure::script`]).
        script: Vec<usize>,
    },
}

/// A failed execution and everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong (invariant message, panic payload, deadlock, …).
    pub message: String,
    /// The schedule that produced the failure.
    pub script: Vec<usize>,
    /// `(seed, execution index)` when found in random mode.
    pub seed: Option<(u64, u64)>,
}

impl Failure {
    /// Human-readable replay instructions for this failure.
    pub fn replay_instructions(&self, model: &str) -> String {
        let script = self
            .script
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut out = format!(
            "model '{model}' failed: {}\n  replay schedule: [{script}]\n  \
             programmatic replay: Explorer::new(Mode::Replay {{ script: vec![{script}] }}).run(model)",
            self.message
        );
        if let Some((seed, it)) = self.seed {
            out.push_str(&format!(
                "\n  found by: Mode::Random {{ seed: {seed:#x}, .. }} at iteration {it}"
            ));
        }
        out
    }
}

/// Result of exploring a model.
#[derive(Debug, Clone)]
pub struct Report {
    /// Executions actually run.
    pub executions: u64,
    /// Executions cut short by the state-hash prune.
    pub pruned: u64,
    /// The first failure, if any (`None` = every explored schedule held).
    pub failure: Option<Failure>,
    /// True when exhaustive exploration finished the whole tree (false
    /// when stopped by `max_executions`).
    pub complete: bool,
}

/// Drives a [`Model`] through schedules according to a [`Mode`].
pub struct Explorer {
    mode: Mode,
    /// Abort an execution after this many scheduling steps (livelock
    /// guard; the overrun is reported as a failure).
    pub max_steps: u32,
    /// Stop exhaustive exploration after this many executions (safety
    /// valve; `Report::complete` is false when hit).
    pub max_executions: u64,
}

impl Explorer {
    /// An explorer with default bounds (20k steps, 1M executions).
    pub fn new(mode: Mode) -> Self {
        Self {
            mode,
            max_steps: 20_000,
            max_executions: 1_000_000,
        }
    }

    /// Sets the per-execution step bound.
    pub fn with_max_steps(mut self, max: u32) -> Self {
        self.max_steps = max;
        self
    }

    /// Sets the exhaustive execution cap.
    pub fn with_max_executions(mut self, max: u64) -> Self {
        self.max_executions = max;
        self
    }

    /// Explores `model`, returning the aggregate report.
    pub fn run<M: Model>(&self, model: M) -> Report {
        install_quiet_hook();
        let model = Arc::new(model);
        let mut visited: HashSet<u64> = HashSet::new();
        let mut executions = 0u64;
        let mut pruned = 0u64;

        match self.mode.clone() {
            Mode::Replay { script } => {
                let out = run_one(&model, script, 0, false, self.max_steps, &mut visited);
                Report {
                    executions: 1,
                    pruned: 0,
                    failure: out.failure.map(|message| Failure {
                        message,
                        script: out.taken.iter().map(|c| c.chosen).collect(),
                        seed: None,
                    }),
                    complete: true,
                }
            }
            Mode::Random { seed, iterations } => {
                for it in 0..iterations {
                    // Split a per-execution stream off the seed.
                    let exec_seed =
                        splitmix(seed.wrapping_add(it.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                    let out = run_one(
                        &model,
                        Vec::new(),
                        exec_seed,
                        true,
                        self.max_steps,
                        &mut visited,
                    );
                    executions += 1;
                    if let Some(message) = out.failure {
                        return Report {
                            executions,
                            pruned,
                            failure: Some(Failure {
                                message,
                                script: out.taken.iter().map(|c| c.chosen).collect(),
                                seed: Some((seed, it)),
                            }),
                            complete: false,
                        };
                    }
                }
                Report {
                    executions,
                    pruned,
                    failure: None,
                    complete: false,
                }
            }
            Mode::Exhaustive => {
                let mut script: Vec<usize> = Vec::new();
                loop {
                    let out = run_one(
                        &model,
                        script.clone(),
                        0,
                        false,
                        self.max_steps,
                        &mut visited,
                    );
                    executions += 1;
                    if out.pruned {
                        pruned += 1;
                    }
                    if let Some(message) = out.failure {
                        return Report {
                            executions,
                            pruned,
                            failure: Some(Failure {
                                message,
                                script: out.taken.iter().map(|c| c.chosen).collect(),
                                seed: None,
                            }),
                            complete: false,
                        };
                    }
                    // DFS backtrack: find the deepest choice with an
                    // untried alternative.
                    let mut taken = out.taken;
                    let next = loop {
                        match taken.pop() {
                            None => break None,
                            Some(c) if c.chosen + 1 < c.ready_len => {
                                let mut s: Vec<usize> = taken.iter().map(|c| c.chosen).collect();
                                s.push(c.chosen + 1);
                                break Some(s);
                            }
                            Some(_) => {}
                        }
                    };
                    match next {
                        Some(s) => script = s,
                        None => {
                            return Report {
                                executions,
                                pruned,
                                failure: None,
                                complete: true,
                            }
                        }
                    }
                    if executions >= self.max_executions {
                        return Report {
                            executions,
                            pruned,
                            failure: None,
                            complete: false,
                        };
                    }
                }
            }
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x.max(1);
    x
}

struct ExecOutcome {
    taken: Vec<Choice>,
    failure: Option<String>,
    pruned: bool,
}

/// Runs one execution of `model` under the schedule `script` (choices
/// beyond the script come from the rng in random mode, else first-ready).
fn run_one<M: Model>(
    model: &Arc<M>,
    script: Vec<usize>,
    rng: u64,
    use_rng: bool,
    max_steps: u32,
    visited: &mut HashSet<u64>,
) -> ExecOutcome {
    let n = model.threads();
    let ctx = Arc::new(ExecCtx::new(n, script, rng.max(1), use_rng));

    // Build the state with the harness context installed so primitives
    // register their resources with this execution.
    crate::llsync::set_current(Some((Arc::clone(&ctx), HARNESS)));
    let state = Arc::new(model.make_state());

    let mut handles = Vec::with_capacity(n);
    for tid in 0..n {
        let ctx = Arc::clone(&ctx);
        let state = Arc::clone(&state);
        let model = Arc::clone(model);
        handles.push(std::thread::spawn(move || {
            IN_MODEL.with(|f| f.set(true));
            crate::llsync::set_current(Some((Arc::clone(&ctx), tid)));
            let body = catch_unwind(AssertUnwindSafe(|| {
                // First park: nothing runs until the scheduler says so.
                ctx.park(tid, Status::Ready);
                model.run_thread(tid, &state);
            }));
            if let Err(payload) = body {
                if payload.downcast_ref::<AbortToken>().is_none() {
                    let msg = panic_message(payload.as_ref());
                    let mut st = ctx.lock();
                    if st.failed.is_none() {
                        st.failed = Some(format!("thread {tid} panicked: {msg}"));
                    }
                    st.aborted = true;
                }
            }
            ctx.finish(tid);
            crate::llsync::set_current(None);
        }));
    }

    // Scheduler loop.
    let mut steps = 0u32;
    {
        let mut st = ctx.lock();
        loop {
            while st.active.is_some() || st.status.contains(&Status::NotStarted) {
                st = recover(ctx.cv.wait(st));
            }
            if st.aborted || st.status.iter().all(|s| *s == Status::Finished) {
                break;
            }
            let ready: Vec<usize> = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::Ready)
                .map(|(i, _)| i)
                .collect();
            if ready.is_empty() {
                let held: Vec<String> = st
                    .status
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        Status::Blocked(r) => Some(format!("thread {i} waits on resource {r}")),
                        _ => None,
                    })
                    .collect();
                st.failed = Some(format!("deadlock: {}", held.join("; ")));
                st.aborted = true;
                ctx.cv.notify_all();
                break;
            }
            steps += 1;
            if steps > max_steps {
                st.failed = Some(format!(
                    "step bound exceeded ({max_steps} scheduling steps): possible livelock"
                ));
                st.aborted = true;
                ctx.cv.notify_all();
                break;
            }
            // State-hash pruning (exhaustive mode only: random/replay
            // must run their schedule to the end).
            if !st.use_rng && st.cursor >= st.script.len() {
                if let Some(h) = model.state_hash(&state) {
                    let key = prune_key(h, &st);
                    if !visited.insert(key) {
                        st.pruned = true;
                        st.aborted = true;
                        ctx.cv.notify_all();
                        break;
                    }
                }
            }
            let idx = if st.cursor < st.script.len() {
                st.script[st.cursor].min(ready.len() - 1)
            } else if st.use_rng {
                let mut r = st.rng;
                let v = (xorshift(&mut r) as usize) % ready.len();
                st.rng = r;
                v
            } else {
                0
            };
            st.cursor += 1;
            st.taken.push(Choice {
                chosen: idx,
                ready_len: ready.len(),
            });
            st.active = Some(ready[idx]);
            ctx.cv.notify_all();
        }
    }

    for h in handles {
        let _ = h.join();
    }

    let (taken, mut failure, pruned) = {
        let mut st = ctx.lock();
        (std::mem::take(&mut st.taken), st.failed.take(), st.pruned)
    };

    // Final invariants (harness context still installed: shim ops
    // free-pass since every worker has finished).
    if failure.is_none() && !pruned {
        if let Err(msg) = model.check(&state) {
            failure = Some(format!("invariant violated: {msg}"));
        }
    }
    crate::llsync::set_current(None);
    ExecOutcome {
        taken,
        failure,
        pruned,
    }
}

fn prune_key(state_hash: u64, st: &CtxState) -> u64 {
    let mut h = state_hash ^ 0x517C_C1B7_2722_0A95;
    for (i, p) in st.progress.iter().enumerate() {
        h = splitmix(h ^ ((*p as u64) << 32) ^ i as u64);
    }
    for s in &st.status {
        let tag = match s {
            Status::NotStarted => 0u64,
            Status::Ready => 1,
            Status::Blocked(r) => 0x100 + *r as u64,
            Status::Finished => 2,
        };
        h = splitmix(h ^ tag);
    }
    h
}

fn panic_message(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llsync::{LLAtomicU64, LLMutex};
    use cf_obs::sync::{ShimAtomicU64, ShimMutex};

    /// Two threads each bump a counter twice; many interleavings converge
    /// on identical (progress, counter) states, so the state-hash prune
    /// must fire while the full tree still verifies.
    struct CountingModel;

    struct CountingState {
        counter: LLAtomicU64,
    }

    impl Model for CountingModel {
        type State = CountingState;

        fn name(&self) -> &'static str {
            "counting"
        }

        fn threads(&self) -> usize {
            2
        }

        fn make_state(&self) -> CountingState {
            CountingState {
                counter: ShimAtomicU64::new(0),
            }
        }

        fn run_thread(&self, _tid: usize, st: &CountingState) {
            st.counter.fetch_add(1);
            st.counter.fetch_add(1);
        }

        fn check(&self, st: &CountingState) -> Result<(), String> {
            let v = st.counter.load();
            if v == 4 {
                Ok(())
            } else {
                Err(format!("expected counter 4, got {v}"))
            }
        }

        fn state_hash(&self, st: &CountingState) -> Option<u64> {
            Some(st.counter.load())
        }
    }

    #[test]
    fn exhaustive_run_completes_and_prunes_converging_states() {
        let report = Explorer::new(Mode::Exhaustive).run(CountingModel);
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.complete);
        assert!(
            report.pruned > 0,
            "identical interleaved states must hit the prune ({report:?})"
        );
    }

    /// Classic lock-order inversion: t0 takes a then b, t1 takes b then
    /// a. Exhaustive exploration must find the deadlock and name the
    /// blocked resources.
    struct DeadlockModel;

    struct TwoLocks {
        a: LLMutex<()>,
        b: LLMutex<()>,
    }

    impl Model for DeadlockModel {
        type State = TwoLocks;

        fn name(&self) -> &'static str {
            "lock-order-inversion"
        }

        fn threads(&self) -> usize {
            2
        }

        fn make_state(&self) -> TwoLocks {
            TwoLocks {
                a: ShimMutex::new(()),
                b: ShimMutex::new(()),
            }
        }

        fn run_thread(&self, tid: usize, st: &TwoLocks) {
            if tid == 0 {
                let _ga = st.a.lock_recover();
                let _gb = st.b.lock_recover();
            } else {
                let _gb = st.b.lock_recover();
                let _ga = st.a.lock_recover();
            }
        }

        fn check(&self, _st: &TwoLocks) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn exhaustive_run_finds_lock_order_deadlock() {
        let report = Explorer::new(Mode::Exhaustive).run(DeadlockModel);
        let failure = report.failure.expect("inverted lock order must deadlock");
        assert!(
            failure.message.contains("deadlock"),
            "unexpected failure: {}",
            failure.message
        );
        // The recorded schedule must reproduce the exact same failure.
        let replay = Explorer::new(Mode::Replay {
            script: failure.script.clone(),
        })
        .run(DeadlockModel);
        let again = replay.failure.expect("replay must reproduce the deadlock");
        assert_eq!(again.message, failure.message);
    }

    /// A thread that never yields control back (scheduler-visible spin)
    /// must trip the step bound, not hang the explorer.
    struct SpinModel;

    struct SpinState {
        flag: LLAtomicU64,
    }

    impl Model for SpinModel {
        type State = SpinState;

        fn name(&self) -> &'static str {
            "spin"
        }

        fn threads(&self) -> usize {
            1
        }

        fn make_state(&self) -> SpinState {
            SpinState {
                flag: ShimAtomicU64::new(0),
            }
        }

        fn run_thread(&self, _tid: usize, st: &SpinState) {
            while st.flag.load() == 0 {}
        }

        fn check(&self, _st: &SpinState) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn step_bound_catches_livelock() {
        let report = Explorer::new(Mode::Exhaustive)
            .with_max_steps(100)
            .run(SpinModel);
        let failure = report.failure.expect("spin loop must hit the step bound");
        assert!(
            failure.message.contains("step bound"),
            "unexpected failure: {}",
            failure.message
        );
    }

    #[test]
    fn replay_instructions_name_the_model_and_schedule() {
        let f = Failure {
            message: "boom".into(),
            script: vec![1, 0, 2],
            seed: Some((0xCF5F, 7)),
        };
        let text = f.replay_instructions("toy-lock-buggy");
        assert!(text.contains("toy-lock-buggy"));
        assert!(text.contains("[1,0,2]"));
        assert!(text.contains("0xcf5f"));
    }
}
