//! `cfsf-analyze` — runs the repo lint engine and the loom-lite model
//! checks; the CI gate for both.
//!
//! ```text
//! cfsf-analyze [--deny-warnings] [--no-models] [--no-lint]
//!              [--list-rules] [--replay <model> <c0,c1,...>] [--root <dir>]
//!              [--json] [--json-out <path>] [--annotate]
//! ```
//!
//! `--json` replaces the human report on stdout with one machine-readable
//! JSON document; `--json-out <path>` writes the same document to a file
//! while keeping the human report; `--annotate` additionally emits GitHub
//! workflow commands (`::error file=…,line=…::…`) so CI surfaces lint
//! findings and model failures inline on the diff.
//!
//! Exit status: `0` when clean; `1` on any model failure, suppression /
//! allowlist error, or (with `--deny-warnings`) any unsuppressed lint
//! diagnostic. The seeded-race fixture models (`expect_race`) invert:
//! they gate on the race detector *firing*.

use std::path::PathBuf;
use std::process::ExitCode;

use cf_analysis::lint::{self, rules, LintReport};
use cf_analysis::models::{self, ModelRun};
use cf_obs::json::Writer;

struct Args {
    deny_warnings: bool,
    run_lint: bool,
    run_models: bool,
    list_rules: bool,
    replay: Option<(String, Vec<usize>)>,
    root: Option<PathBuf>,
    json: bool,
    json_out: Option<PathBuf>,
    annotate: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_warnings: false,
        run_lint: true,
        run_models: true,
        list_rules: false,
        replay: None,
        root: None,
        json: false,
        json_out: None,
        annotate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-warnings" => args.deny_warnings = true,
            "--no-models" => args.run_models = false,
            "--no-lint" => args.run_lint = false,
            "--list-rules" => args.list_rules = true,
            "--json" => args.json = true,
            "--json-out" => {
                args.json_out = Some(PathBuf::from(it.next().ok_or("--json-out needs a path")?));
            }
            "--annotate" => args.annotate = true,
            "--replay" => {
                let model = it.next().ok_or("--replay needs <model> <schedule>")?;
                let sched = it.next().ok_or("--replay needs <model> <schedule>")?;
                let script = sched
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
                args.replay = Some((model, script));
            }
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a path")?));
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

/// Walks up from the cwd to the workspace root (the directory holding
/// both `Cargo.toml` and `crates/`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Did this model run satisfy its gate? Ordinary models must explore
/// clean; `expect_race` fixtures must fail *with a data-race report* —
/// a clean run means the detector regressed.
fn model_ok(run: &ModelRun) -> bool {
    match (&run.report.failure, run.expect_race) {
        (None, false) => true,
        (Some(f), true) => f.message.contains("data race"),
        _ => false,
    }
}

/// Renders the whole gate result as one JSON document.
fn render_json(lint: Option<&LintReport>, runs: &[ModelRun], ok: bool) -> String {
    let mut w = Writer::new();
    w.begin_object();
    w.key("lint");
    match lint {
        None => w.null(),
        Some(report) => {
            let diag_array = |w: &mut Writer, key: &str, diags: &[lint::Diagnostic]| {
                w.key(key);
                w.begin_array();
                for d in diags {
                    w.elem();
                    w.begin_object();
                    w.key("rule");
                    w.string(d.rule);
                    w.key("path");
                    w.string(&d.path);
                    w.key("line");
                    w.number_u64(d.line as u64);
                    w.key("message");
                    w.string(&d.message);
                    w.end_object();
                }
                w.end_array();
            };
            w.begin_object();
            w.key("files_scanned");
            w.number_u64(report.files_scanned as u64);
            diag_array(&mut w, "errors", &report.errors);
            diag_array(&mut w, "diagnostics", &report.diagnostics);
            diag_array(&mut w, "suppressed", &report.suppressed);
            w.key("unused_suppressions");
            w.begin_array();
            for s in &report.unused_suppressions {
                w.elem();
                w.begin_object();
                w.key("rule");
                w.string(&s.rule);
                w.key("path");
                w.string(&s.path);
                w.key("line");
                w.number_u64(s.line as u64);
                w.end_object();
            }
            w.end_array();
            w.end_object();
        }
    }
    w.key("models");
    w.begin_array();
    for run in runs {
        w.elem();
        w.begin_object();
        w.key("name");
        w.string(run.name);
        w.key("expect_race");
        w.bool(run.expect_race);
        w.key("ok");
        w.bool(model_ok(run));
        w.key("executions");
        w.number_u64(run.report.executions);
        w.key("pruned");
        w.number_u64(run.report.pruned);
        w.key("sleep_pruned");
        w.number_u64(run.report.sleep_pruned);
        w.key("complete");
        w.bool(run.report.complete);
        w.key("failure");
        match &run.report.failure {
            None => w.null(),
            Some(f) => {
                w.begin_object();
                w.key("message");
                w.string(&f.message);
                w.key("script");
                w.begin_array();
                for c in &f.script {
                    w.elem();
                    w.number_u64(*c as u64);
                }
                w.end_array();
                w.key("kinds");
                w.string(&f.kinds);
                w.end_object();
            }
        }
        w.end_object();
    }
    w.end_array();
    w.key("ok");
    w.bool(ok);
    w.end_object();
    w.finish()
}

/// Emits a GitHub workflow command pinned to a file and line.
fn annotate(level: &str, path: &str, line: usize, message: &str) {
    // Workflow commands terminate at the newline; escape the message's.
    let msg = message.replace('%', "%25").replace('\n', "%0A");
    println!("::{level} file={path},line={line}::{msg}");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cfsf-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list_rules {
        for r in rules::RULES {
            println!("{:<18} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if let Some((model, script)) = &args.replay {
        println!("replaying {model} under schedule {script:?}");
        return match models::replay_builtin(model, script.clone()) {
            None => {
                eprintln!(
                    "cfsf-analyze: unknown model '{model}' (known: {})",
                    models::BUILTIN_MODELS.join(", ")
                );
                ExitCode::FAILURE
            }
            Some(report) => match report.failure {
                Some(f) => {
                    println!("reproduced: {}", f.message);
                    println!("{}", f.replay_instructions(model));
                    ExitCode::FAILURE
                }
                None => {
                    println!("schedule ran clean ({} execution(s))", report.executions);
                    ExitCode::SUCCESS
                }
            },
        };
    }

    let human = !args.json;
    let mut failed = false;
    let mut lint_report: Option<LintReport> = None;

    if args.run_lint {
        let root = args.root.clone().or_else(find_root);
        let Some(root) = root else {
            eprintln!("cfsf-analyze: cannot locate workspace root (use --root)");
            return ExitCode::FAILURE;
        };
        let report = lint::run_lint(&root);
        if human {
            println!(
                "lint: scanned {} files — {} diagnostic(s), {} suppressed, {} error(s)",
                report.files_scanned,
                report.diagnostics.len(),
                report.suppressed.len(),
                report.errors.len()
            );
            for d in &report.errors {
                println!("error: {d}");
            }
            for d in &report.diagnostics {
                println!("warning: {d}");
            }
            for d in &report.suppressed {
                println!("note: suppressed {d}");
            }
            for s in &report.unused_suppressions {
                println!(
                    "note: unused suppression of `{}` at {}:{}",
                    s.rule, s.path, s.line
                );
            }
        }
        if args.annotate {
            for d in &report.errors {
                annotate(
                    "error",
                    &d.path,
                    d.line,
                    &format!("[{}] {}", d.rule, d.message),
                );
            }
            for d in &report.diagnostics {
                let level = if args.deny_warnings {
                    "error"
                } else {
                    "warning"
                };
                annotate(
                    level,
                    &d.path,
                    d.line,
                    &format!("[{}] {}", d.rule, d.message),
                );
            }
            for s in &report.unused_suppressions {
                annotate(
                    "warning",
                    &s.path,
                    s.line,
                    &format!("unused suppression of `{}`", s.rule),
                );
            }
        }
        if !report.errors.is_empty() {
            failed = true;
        }
        if args.deny_warnings && !report.diagnostics.is_empty() {
            failed = true;
        }
        lint_report = Some(report);
    }

    let mut runs: Vec<ModelRun> = Vec::new();
    if args.run_models {
        runs = models::run_builtin_models();
        for run in &runs {
            let ok = model_ok(run);
            if !ok {
                failed = true;
            }
            if human {
                let counts = format!(
                    "{} execution(s){}{}{}",
                    run.report.executions,
                    if run.report.pruned > 0 {
                        format!(", {} pruned", run.report.pruned)
                    } else {
                        String::new()
                    },
                    if run.report.sleep_pruned > 0 {
                        format!(", {} sleep-pruned", run.report.sleep_pruned)
                    } else {
                        String::new()
                    },
                    if run.report.complete {
                        " (exhaustive)"
                    } else {
                        ""
                    }
                );
                match (&run.report.failure, run.expect_race, ok) {
                    (None, false, _) => println!("model {}: ok — {counts}", run.name),
                    (Some(f), true, true) => println!(
                        "model {}: ok — detector fired as required: {} ({counts})",
                        run.name, f.message
                    ),
                    (None, true, _) => println!(
                        "model {}: FAILED — seeded race went UNDETECTED ({counts}); \
                         the happens-before detector has regressed",
                        run.name
                    ),
                    (Some(f), _, _) => {
                        println!("model {}: FAILED — {}", run.name, f.message);
                        println!("{}", f.replay_instructions(run.name));
                    }
                }
            }
            if args.annotate && !ok {
                let msg = match &run.report.failure {
                    Some(f) => f.replay_instructions(run.name),
                    None => format!(
                        "model '{}' explored clean but is a seeded-race fixture: \
                         the data-race detector did not fire",
                        run.name
                    ),
                };
                annotate("error", "crates/analysis/src/models.rs", 1, &msg);
            }
        }
    }

    let json = if args.json || args.json_out.is_some() {
        Some(render_json(lint_report.as_ref(), &runs, !failed))
    } else {
        None
    };
    if let Some(doc) = &json {
        if args.json {
            print!("{doc}");
        }
        if let Some(path) = &args.json_out {
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("cfsf-analyze: cannot write {}: {e}", path.display());
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
