//! `cfsf-analyze` — runs the repo lint engine and the loom-lite model
//! checks; the CI gate for both.
//!
//! ```text
//! cfsf-analyze [--deny-warnings] [--no-models] [--no-lint]
//!              [--list-rules] [--replay <model> <c0,c1,...>] [--root <dir>]
//! ```
//!
//! Exit status: `0` when clean; `1` on any model failure, suppression /
//! allowlist error, or (with `--deny-warnings`) any unsuppressed lint
//! diagnostic.

use std::path::PathBuf;
use std::process::ExitCode;

use cf_analysis::lint::{self, rules};
use cf_analysis::models;

struct Args {
    deny_warnings: bool,
    run_lint: bool,
    run_models: bool,
    list_rules: bool,
    replay: Option<(String, Vec<usize>)>,
    root: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_warnings: false,
        run_lint: true,
        run_models: true,
        list_rules: false,
        replay: None,
        root: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-warnings" => args.deny_warnings = true,
            "--no-models" => args.run_models = false,
            "--no-lint" => args.run_lint = false,
            "--list-rules" => args.list_rules = true,
            "--replay" => {
                let model = it.next().ok_or("--replay needs <model> <schedule>")?;
                let sched = it.next().ok_or("--replay needs <model> <schedule>")?;
                let script = sched
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
                args.replay = Some((model, script));
            }
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a path")?));
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

/// Walks up from the cwd to the workspace root (the directory holding
/// both `Cargo.toml` and `crates/`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cfsf-analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list_rules {
        for r in rules::RULES {
            println!("{:<18} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if let Some((model, script)) = &args.replay {
        println!("replaying {model} under schedule {script:?}");
        return match models::replay_builtin(model, script.clone()) {
            None => {
                eprintln!(
                    "cfsf-analyze: unknown model '{model}' (known: {})",
                    models::BUILTIN_MODELS.join(", ")
                );
                ExitCode::FAILURE
            }
            Some(report) => match report.failure {
                Some(f) => {
                    println!("reproduced: {}", f.message);
                    println!("{}", f.replay_instructions(model));
                    ExitCode::FAILURE
                }
                None => {
                    println!("schedule ran clean ({} execution(s))", report.executions);
                    ExitCode::SUCCESS
                }
            },
        };
    }

    let mut failed = false;

    if args.run_lint {
        let root = args.root.clone().or_else(find_root);
        let Some(root) = root else {
            eprintln!("cfsf-analyze: cannot locate workspace root (use --root)");
            return ExitCode::FAILURE;
        };
        let report = lint::run_lint(&root);
        println!(
            "lint: scanned {} files — {} diagnostic(s), {} suppressed, {} error(s)",
            report.files_scanned,
            report.diagnostics.len(),
            report.suppressed.len(),
            report.errors.len()
        );
        for d in &report.errors {
            println!("error: {d}");
        }
        for d in &report.diagnostics {
            println!("warning: {d}");
        }
        for d in &report.suppressed {
            println!("note: suppressed {d}");
        }
        for s in &report.unused_suppressions {
            println!(
                "note: unused suppression of `{}` at {}:{}",
                s.rule, s.path, s.line
            );
        }
        if !report.errors.is_empty() {
            failed = true;
        }
        if args.deny_warnings && !report.diagnostics.is_empty() {
            failed = true;
        }
    }

    if args.run_models {
        for (name, report) in models::run_builtin_models() {
            match &report.failure {
                None => {
                    println!(
                        "model {name}: ok — {} execution(s){}{}",
                        report.executions,
                        if report.pruned > 0 {
                            format!(", {} pruned", report.pruned)
                        } else {
                            String::new()
                        },
                        if report.complete { " (exhaustive)" } else { "" }
                    );
                }
                Some(f) => {
                    println!("model {name}: FAILED — {}", f.message);
                    println!("{}", f.replay_instructions(name));
                    failed = true;
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
