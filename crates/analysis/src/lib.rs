//! cf-analysis — repo-aware static analysis for the CFSF workspace.
//!
//! Two subsystems, both runnable through the `cfsf-analyze` binary and
//! gated in `scripts/check.sh` / CI:
//!
//! 1. **Lint engine** ([`lint`]) — a lightweight token/line-level
//!    scanner (no external parser; vendor nothing) enforcing
//!    repo-specific rules clippy cannot express: panic-free production
//!    code with an auditable allowlist, no clock reads on hot paths
//!    outside the `cf_obs` enabled-gate, no raw float equality outside
//!    the epsilon helpers, no bare `std::sync` locks where the
//!    poison-recovering wrappers are mandated, obs counter/test pairing,
//!    and no `AssertUnwindSafe` over closures capturing `&mut`. Inline
//!    `allow(<rule>)` suppression comments (see [`lint`]) are honored,
//!    counted, and reported; unknown rule ids in one are hard errors.
//!
//! 2. **loom-lite model checker** ([`sched`], [`llsync`], [`models`]) —
//!    a deterministic scheduler exploring thread interleavings
//!    (exhaustive DFS with sleep-set partial-order reduction, seeded
//!    random, exact replay) over the production concurrent cores, which
//!    are generic over [`cf_obs::sync::Shim`]: the sharded second-chance
//!    cache, the slow-trace reservoir, the poisoned-shard reset, the
//!    generation cell, and the fleet aggregator all run the *same code*
//!    in production and under the checker. The checked shim carries a
//!    FastTrack-style happens-before race detector ([`vclock`],
//!    [`llsync::LLCell`]) and models relaxed atomics against a bounded
//!    store buffer of stale values instead of assuming sequential
//!    consistency.

#![warn(missing_docs)]

pub mod lint;
pub mod llsync;
pub mod models;
pub mod sched;
pub mod toylock;
pub mod vclock;
