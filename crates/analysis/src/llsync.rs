//! Scheduler-instrumented implementations of the [`cf_obs::sync`] shim
//! traits.
//!
//! [`LLShim`] is the model checker's counterpart of
//! [`cf_obs::sync::StdShim`]: every operation on its primitives is a
//! *yield point* where the calling thread parks and the
//! [`crate::sched`] scheduler decides who runs next. Lock acquisition
//! goes through a scheduler-side resource table, so a contended acquire
//! parks the thread as `Blocked` (excluded from the ready set) instead
//! of spinning — the schedule tree stays finite for blocking code.
//!
//! The protected data itself lives in ordinary `std::sync` locks inside
//! each primitive. The scheduler guarantees exclusivity before a guard
//! is taken, so those inner locks are uncontended at claim time; they
//! exist to hand out real `Deref` guards with the right lifetimes.
//!
//! Operations performed without a scheduler context — during
//! [`crate::sched::Model::make_state`], in `check()` after all threads
//! joined, or from [`crate::sched::Model::state_hash`] (atomics only) —
//! **free-pass**: they touch the data directly without scheduling.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use cf_obs::sync::{Poisoned, Shim, ShimAtomicBool, ShimAtomicU64, ShimMutex, ShimRwLock};

use crate::sched::{AbortToken, CtxState, ExecCtx, Status, HARNESS};

thread_local! {
    static CURRENT: RefCell<Option<(Arc<ExecCtx>, usize)>> = const { RefCell::new(None) };
}

/// Installs (or clears) this thread's scheduler context. The scheduler
/// calls this for the harness and each worker; user code never needs to.
pub(crate) fn set_current(ctx: Option<(Arc<ExecCtx>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

fn current() -> Option<(Arc<ExecCtx>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The scheduler context an operation should run under: `None` means
/// free-pass (no scheduling).
fn sched_ctx() -> Option<(Arc<ExecCtx>, usize)> {
    match current() {
        Some((_, HARNESS)) | None => None,
        some => some,
    }
}

/// One scheduling yield: parks the calling worker until it is granted
/// the next slice.
fn yield_now(ctx: &ExecCtx, tid: usize) {
    ctx.park(tid, Status::Ready);
}

/// Parks the calling worker as blocked on `rid`, consuming (and
/// returning) the state guard. Returns once the scheduler grants a
/// slice again (after a release promoted the thread to ready).
fn park_blocked<'a>(
    ctx: &'a ExecCtx,
    tid: usize,
    rid: usize,
    mut st: std::sync::MutexGuard<'a, CtxState>,
) -> std::sync::MutexGuard<'a, CtxState> {
    st.status[tid] = Status::Blocked(rid);
    st.active = None;
    ctx.cv.notify_all();
    while st.active != Some(tid) {
        if st.aborted {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        st = ctx
            .cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    let p = &mut st.progress[tid];
    *p = p.saturating_add(1);
    st
}

/// Claims exclusive ownership of `rid` for `tid`, parking while it is
/// held by anyone else. One yield happens before the first attempt.
fn acquire_exclusive(ctx: &ExecCtx, tid: usize, rid: usize) {
    yield_now(ctx, tid);
    let mut st = ctx.lock();
    loop {
        let r = &mut st.resources[rid];
        if r.writer.is_none() && r.readers == 0 {
            r.writer = Some(tid);
            return;
        }
        st = park_blocked(ctx, tid, rid, st);
    }
}

fn release_exclusive(ctx: &ExecCtx, rid: usize) {
    let mut st = ctx.lock();
    st.resources[rid].writer = None;
    ExecCtx::promote_blocked(&mut st, rid);
}

/// Claims shared ownership of `rid` for `tid` (blocks on a writer).
fn acquire_shared(ctx: &ExecCtx, tid: usize, rid: usize) {
    yield_now(ctx, tid);
    let mut st = ctx.lock();
    loop {
        let r = &mut st.resources[rid];
        if r.writer.is_none() {
            r.readers += 1;
            return;
        }
        st = park_blocked(ctx, tid, rid, st);
    }
}

fn release_shared(ctx: &ExecCtx, rid: usize) {
    let mut st = ctx.lock();
    let r = &mut st.resources[rid];
    r.readers = r.readers.saturating_sub(1);
    if r.readers == 0 {
        ExecCtx::promote_blocked(&mut st, rid);
    }
}

/// The model checker's [`Shim`]: schedule-instrumented primitives.
#[derive(Debug, Default, Clone, Copy)]
pub struct LLShim;

// --------------------------------------------------------------------------
// Atomics
// --------------------------------------------------------------------------

/// Schedule-instrumented atomic `bool` (one yield per operation;
/// sequentially consistent by construction).
pub struct LLAtomicBool {
    val: std::sync::Mutex<bool>,
}

impl LLAtomicBool {
    fn with<R>(&self, f: impl FnOnce(&mut bool) -> R) -> R {
        if let Some((ctx, tid)) = sched_ctx() {
            yield_now(&ctx, tid);
        }
        let mut v = self
            .val
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut v)
    }
}

impl ShimAtomicBool for LLAtomicBool {
    fn new(v: bool) -> Self {
        Self {
            val: std::sync::Mutex::new(v),
        }
    }
    fn load(&self) -> bool {
        self.with(|v| *v)
    }
    fn store(&self, v: bool) {
        self.with(|x| *x = v)
    }
    fn swap(&self, v: bool) -> bool {
        self.with(|x| std::mem::replace(x, v))
    }
}

/// Schedule-instrumented atomic `u64`.
pub struct LLAtomicU64 {
    val: std::sync::Mutex<u64>,
}

impl LLAtomicU64 {
    fn with<R>(&self, f: impl FnOnce(&mut u64) -> R) -> R {
        if let Some((ctx, tid)) = sched_ctx() {
            yield_now(&ctx, tid);
        }
        let mut v = self
            .val
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut v)
    }
}

impl ShimAtomicU64 for LLAtomicU64 {
    fn new(v: u64) -> Self {
        Self {
            val: std::sync::Mutex::new(v),
        }
    }
    fn load(&self) -> u64 {
        self.with(|v| *v)
    }
    fn store(&self, v: u64) {
        self.with(|x| *x = v)
    }
    fn fetch_add(&self, v: u64) -> u64 {
        self.with(|x| {
            let old = *x;
            *x = x.wrapping_add(v);
            old
        })
    }
}

// --------------------------------------------------------------------------
// Mutex
// --------------------------------------------------------------------------

/// Schedule-instrumented mutex. Matches [`cf_obs::sync::RecoverMutex`]'s
/// contract: `lock_recover` never observes poison (model-thread panics
/// abort the whole execution instead).
pub struct LLMutex<T> {
    ctx: Option<Arc<ExecCtx>>,
    rid: usize,
    data: std::sync::Mutex<T>,
}

/// Guard for [`LLMutex`]; releases the scheduler resource on drop.
pub struct LLMutexGuard<'a, T> {
    lock: &'a LLMutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    scheduled: bool,
}

impl<T> Deref for LLMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> DerefMut for LLMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for LLMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // release the data lock first
        if self.scheduled {
            if let Some(ctx) = &self.lock.ctx {
                release_exclusive(ctx, self.lock.rid);
            }
        }
    }
}

impl<T: Send + 'static> ShimMutex<T> for LLMutex<T> {
    type Guard<'a>
        = LLMutexGuard<'a, T>
    where
        T: 'a;

    fn new(value: T) -> Self {
        let (ctx, rid) = match current() {
            Some((ctx, _)) => {
                let rid = ctx.alloc_resource();
                (Some(ctx), rid)
            }
            None => (None, 0),
        };
        Self {
            ctx,
            rid,
            data: std::sync::Mutex::new(value),
        }
    }

    fn lock_recover(&self) -> Self::Guard<'_> {
        let scheduled = match (sched_ctx(), &self.ctx) {
            (Some((_, tid)), Some(ctx)) => {
                acquire_exclusive(ctx, tid, self.rid);
                true
            }
            _ => false,
        };
        let inner = if scheduled {
            // The scheduler granted exclusivity; the data lock is free.
            self.data
                .try_lock()
                .unwrap_or_else(|_| unreachable!("scheduler-granted mutex contended"))
        } else {
            self.data
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        };
        LLMutexGuard {
            lock: self,
            inner: Some(inner),
            scheduled,
        }
    }
}

// --------------------------------------------------------------------------
// RwLock
// --------------------------------------------------------------------------

/// Schedule-instrumented reader-writer lock with the full poison
/// protocol of [`cf_obs::sync::ShimRwLock`].
pub struct LLRwLock<T> {
    ctx: Option<Arc<ExecCtx>>,
    rid: usize,
    data: std::sync::RwLock<T>,
}

impl<T> LLRwLock<T> {
    fn set_poisoned(&self, poisoned: bool) {
        if let Some(ctx) = &self.ctx {
            ctx.lock().resources[self.rid].poisoned = poisoned;
        }
    }

    fn poisoned_flag(&self) -> bool {
        match &self.ctx {
            Some(ctx) => ctx.lock().resources[self.rid].poisoned,
            None => false,
        }
    }
}

/// Shared guard for [`LLRwLock`].
pub struct LLReadGuard<'a, T> {
    lock: &'a LLRwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    scheduled: bool,
}

impl<T> Deref for LLReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> Drop for LLReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.scheduled {
            if let Some(ctx) = &self.lock.ctx {
                release_shared(ctx, self.lock.rid);
            }
        }
    }
}

/// Exclusive guard for [`LLRwLock`]. Dropping it while panicking
/// poisons the lock, exactly like `std`.
pub struct LLWriteGuard<'a, T> {
    lock: &'a LLRwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    scheduled: bool,
}

impl<T> Deref for LLWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> DerefMut for LLWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for LLWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if std::thread::panicking() {
            self.lock.set_poisoned(true);
        }
        if self.scheduled {
            if let Some(ctx) = &self.lock.ctx {
                release_exclusive(ctx, self.lock.rid);
            }
        }
    }
}

impl<T: Send + Sync + 'static> LLRwLock<T> {
    fn claim_shared(&self) -> LLReadGuard<'_, T> {
        let scheduled = match (sched_ctx(), &self.ctx) {
            (Some((_, tid)), Some(ctx)) => {
                acquire_shared(ctx, tid, self.rid);
                true
            }
            _ => false,
        };
        let inner = if scheduled {
            self.data
                .try_read()
                .unwrap_or_else(|_| unreachable!("scheduler-granted shared lock contended"))
        } else {
            self.data
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        };
        LLReadGuard {
            lock: self,
            inner: Some(inner),
            scheduled,
        }
    }

    fn claim_exclusive(&self) -> LLWriteGuard<'_, T> {
        let scheduled = match (sched_ctx(), &self.ctx) {
            (Some((_, tid)), Some(ctx)) => {
                acquire_exclusive(ctx, tid, self.rid);
                true
            }
            _ => false,
        };
        let inner = if scheduled {
            self.data
                .try_write()
                .unwrap_or_else(|_| unreachable!("scheduler-granted exclusive lock contended"))
        } else {
            self.data
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        };
        LLWriteGuard {
            lock: self,
            inner: Some(inner),
            scheduled,
        }
    }
}

impl<T: Send + Sync + 'static> ShimRwLock<T> for LLRwLock<T> {
    type ReadGuard<'a>
        = LLReadGuard<'a, T>
    where
        T: 'a;
    type WriteGuard<'a>
        = LLWriteGuard<'a, T>
    where
        T: 'a;

    fn new(value: T) -> Self {
        let (ctx, rid) = match current() {
            Some((ctx, _)) => {
                let rid = ctx.alloc_resource();
                (Some(ctx), rid)
            }
            None => (None, 0),
        };
        Self {
            ctx,
            rid,
            data: std::sync::RwLock::new(value),
        }
    }

    fn read(&self) -> Result<Self::ReadGuard<'_>, Poisoned> {
        // Acquire first, then report poison (matching std: a poisoned
        // read still waits for the lock; our contract then drops the
        // guard and reports).
        let g = self.claim_shared();
        if self.poisoned_flag() {
            drop(g);
            return Err(Poisoned);
        }
        Ok(g)
    }

    fn write(&self) -> Result<Self::WriteGuard<'_>, Poisoned> {
        let g = self.claim_exclusive();
        if self.poisoned_flag() {
            drop(g);
            return Err(Poisoned);
        }
        Ok(g)
    }

    fn write_recover(&self) -> Self::WriteGuard<'_> {
        self.claim_exclusive()
    }

    fn clear_poison(&self) {
        if let Some((ctx, tid)) = sched_ctx() {
            yield_now(&ctx, tid);
        }
        self.set_poisoned(false);
    }

    fn is_poisoned(&self) -> bool {
        if let Some((ctx, tid)) = sched_ctx() {
            yield_now(&ctx, tid);
        }
        self.poisoned_flag()
    }

    fn poison(&self) {
        // Exactly what a panicking writer does: acquire exclusively,
        // mark poisoned, release.
        let g = self.claim_exclusive();
        self.set_poisoned(true);
        drop(g);
    }
}

impl Shim for LLShim {
    type AtomicBool = LLAtomicBool;
    type AtomicU64 = LLAtomicU64;
    type Mutex<T: Send + 'static> = LLMutex<T>;
    type RwLock<T: Send + Sync + 'static> = LLRwLock<T>;
}
