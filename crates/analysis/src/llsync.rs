//! Scheduler-instrumented implementations of the [`cf_obs::sync`] shim
//! traits.
//!
//! [`LLShim`] is the model checker's counterpart of
//! [`cf_obs::sync::StdShim`]: every operation on its primitives is a
//! *yield point* where the calling thread declares the operation it is
//! about to perform (its [`OpId`], feeding the sleep-set reduction),
//! parks, and the [`crate::sched`] scheduler decides who runs next.
//! Lock acquisition goes through a scheduler-side resource table, so a
//! contended acquire parks the thread as `Blocked` (excluded from the
//! ready set) instead of spinning — the schedule tree stays finite for
//! blocking code. Lock *release* is a yield point too: a release can
//! wake waiters, so it must be a visible transition of its own for the
//! sleep-set reduction to stay sound.
//!
//! Three correctness layers ride on the yield points:
//!
//! - **Vector clocks** ([`crate::vclock`]): each thread carries a
//!   happens-before clock. Lock acquire joins the resource's clock;
//!   lock release publishes the holder's clock to the resource and
//!   increments the holder's epoch. `Acquire` loads of `Release` stores
//!   do the same through the store buffer.
//! - **Weak-memory atomics**: [`LLAtomicU64`]/[`LLAtomicBool`] keep a
//!   bounded buffer of recent stores. A `Relaxed`/`Acquire` load may
//!   observe any buffered value not older than (a) the newest store
//!   happens-before-visible to the reader and (b) anything the reader
//!   already observed at this location (per-location coherence). When
//!   several values qualify, the pick is a recorded schedule decision —
//!   DFS explores every stale read, and a failing stale read replays
//!   exactly. `SeqCst` operations and RMWs read the newest value.
//! - **Race detection** ([`LLCell`]): plain shared data wrapped in
//!   [`cf_obs::sync::ShimCell`] gets FastTrack-style epoch shadow
//!   state. Two accesses to the same cell, at least one a write, with
//!   neither happening before the other, abort the execution with both
//!   access sites — and the failure carries the replayable schedule.
//!
//! The protected data itself lives in ordinary `std::sync` locks inside
//! each primitive. The scheduler guarantees exclusivity before a guard
//! is taken, so those inner locks are uncontended at claim time; they
//! exist to hand out real `Deref` guards with the right lifetimes.
//!
//! Operations performed without a scheduler context — during
//! [`crate::sched::Model::make_state`], in `check()` after all threads
//! joined, or from [`crate::sched::Model::state_hash`] — **free-pass**:
//! they touch the newest data directly without scheduling, clocks, or
//! race checks.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::Arc;

use cf_obs::sync::{
    Ordering, Poisoned, Shim, ShimAtomicBool, ShimAtomicU64, ShimCell, ShimMutex, ShimRwLock,
};

use crate::sched::{splitmix, AbortToken, CtxState, ExecCtx, OpId, Status, HARNESS};
use crate::vclock::{Epoch, VClock};

/// How many recent stores a modeled atomic retains. A relaxed load may
/// observe any retained value its coherence floor allows, so this
/// bounds how stale a modeled read can be (depth 2 = newest plus one
/// stale value), keeping the value-choice fan-out tractable.
pub const STORE_BUFFER_DEPTH: usize = 2;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<ExecCtx>, usize)>> = const { RefCell::new(None) };
}

/// Installs (or clears) this thread's scheduler context. The scheduler
/// calls this for the harness and each worker; user code never needs to.
pub(crate) fn set_current(ctx: Option<(Arc<ExecCtx>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

fn current() -> Option<(Arc<ExecCtx>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The scheduler context an operation should run under: `None` means
/// free-pass (no scheduling).
fn sched_ctx() -> Option<(Arc<ExecCtx>, usize)> {
    match current() {
        Some((_, HARNESS)) | None => None,
        some => some,
    }
}

/// Parks the calling worker as blocked on `rid`, consuming (and
/// returning) the state guard. Returns once the scheduler grants a
/// slice again (after a release promoted the thread to ready).
fn park_blocked<'a>(
    ctx: &'a ExecCtx,
    tid: usize,
    rid: usize,
    mut st: std::sync::MutexGuard<'a, CtxState>,
) -> std::sync::MutexGuard<'a, CtxState> {
    st.status[tid] = Status::Blocked(rid);
    st.active = None;
    ctx.cv.notify_all();
    while st.active != Some(tid) {
        if st.aborted {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        st = ctx
            .cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    let p = &mut st.progress[tid];
    *p = p.saturating_add(1);
    st
}

/// Claims exclusive ownership of `rid` for `tid`, parking while it is
/// held by anyone else. One yield happens before the first attempt; the
/// claim joins the resource's happens-before clock (acquire edge).
fn acquire_exclusive(ctx: &ExecCtx, tid: usize, rid: usize) {
    ctx.park_op(tid, OpId::Lock(rid));
    let mut st = ctx.lock();
    loop {
        let r = &mut st.resources[rid];
        if r.writer.is_none() && r.readers == 0 {
            r.writer = Some(tid);
            let rc = st.resource_clocks[rid].clone();
            st.clocks[tid].join(&rc);
            return;
        }
        st = park_blocked(ctx, tid, rid, st);
    }
}

/// Releases exclusive ownership. A scheduled release is its own yield
/// point (skipped mid-unwind: a panicking thread must not park) and a
/// release edge: the holder's clock is published to the resource and
/// its own epoch advances.
fn release_exclusive(ctx: &ExecCtx, tid: Option<usize>, rid: usize) {
    if let Some(t) = tid {
        if !std::thread::panicking() {
            ctx.park_op(t, OpId::Lock(rid));
        }
    }
    let mut st = ctx.lock();
    if let Some(t) = tid {
        let c = st.clocks[t].clone();
        st.resource_clocks[rid].join(&c);
        st.clocks[t].inc(t);
    }
    st.resources[rid].writer = None;
    ExecCtx::promote_blocked(&mut st, rid);
}

/// Claims shared ownership of `rid` for `tid` (blocks on a writer).
fn acquire_shared(ctx: &ExecCtx, tid: usize, rid: usize) {
    ctx.park_op(tid, OpId::Lock(rid));
    let mut st = ctx.lock();
    loop {
        let r = &mut st.resources[rid];
        if r.writer.is_none() {
            r.readers += 1;
            let rc = st.resource_clocks[rid].clone();
            st.clocks[tid].join(&rc);
            return;
        }
        st = park_blocked(ctx, tid, rid, st);
    }
}

/// Releases shared ownership. Readers are treated conservatively like
/// writers for the clocks (they publish and bump) — this can only *add*
/// happens-before edges, so the race detector stays sound (it may miss
/// read-side races the rwlock protocol already serializes anyway).
fn release_shared(ctx: &ExecCtx, tid: Option<usize>, rid: usize) {
    if let Some(t) = tid {
        if !std::thread::panicking() {
            ctx.park_op(t, OpId::Lock(rid));
        }
    }
    let mut st = ctx.lock();
    if let Some(t) = tid {
        let c = st.clocks[t].clone();
        st.resource_clocks[rid].join(&c);
        st.clocks[t].inc(t);
    }
    let r = &mut st.resources[rid];
    r.readers = r.readers.saturating_sub(1);
    if r.readers == 0 {
        ExecCtx::promote_blocked(&mut st, rid);
    }
}

/// The model checker's [`Shim`]: schedule-instrumented primitives.
#[derive(Debug, Default, Clone, Copy)]
pub struct LLShim;

// --------------------------------------------------------------------------
// Weak-memory atomics
// --------------------------------------------------------------------------

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

/// One buffered store.
struct WeakEntry {
    val: u64,
    /// Monotone per-atomic sequence number (coherence order).
    seq: u64,
    /// The storer's epoch at the store: the visibility floor — a reader
    /// that happens-after this store may not read anything older.
    epoch: Epoch,
    /// The storer's full clock (joined by acquire loads iff `release`).
    clock: VClock,
    /// Whether the store had release semantics.
    release: bool,
}

struct WeakInner {
    /// Oldest → newest; never empty; `len <= STORE_BUFFER_DEPTH`.
    entries: Vec<WeakEntry>,
    next_seq: u64,
    /// Per-tid coherence floor: the newest seq this thread observed.
    last_seen: Vec<u64>,
}

impl WeakInner {
    fn newest(&self) -> &WeakEntry {
        self.entries.last().expect("store buffer never empty")
    }

    /// Data-state digest for the prune key: buffered values (with
    /// their release flags and relative age) plus each thread's floor
    /// as an offset from the newest store. Storer identities and clocks
    /// are excluded — they only affect happens-before bookkeeping, not
    /// which values code can observe next.
    fn digest(&self) -> u64 {
        let newest = self.newest().seq;
        let mut h = 0x2545_F491_4F6C_DD1Du64;
        for (i, e) in self.entries.iter().enumerate() {
            h = splitmix(h ^ e.val ^ ((i as u64) << 56) ^ ((e.release as u64) << 63));
        }
        for (t, &s) in self.last_seen.iter().enumerate() {
            let off = newest.saturating_sub(s).min(STORE_BUFFER_DEPTH as u64 + 1);
            h = splitmix(h ^ ((t as u64) << 8) ^ off);
        }
        h
    }

    fn floor_slot(&mut self, tid: usize) -> &mut u64 {
        if self.last_seen.len() <= tid {
            self.last_seen.resize(tid + 1, 0);
        }
        &mut self.last_seen[tid]
    }
}

/// The shared weak-memory core behind both atomic shims (`u64`-valued;
/// the bool shim maps `false`/`true` to `0`/`1`).
struct WeakCore {
    ctx: Option<(Arc<ExecCtx>, usize)>,
    inner: std::sync::Mutex<WeakInner>,
}

impl WeakCore {
    fn new(v: u64) -> Self {
        let ctx = current().map(|(c, _)| {
            let id = c.alloc_tracked();
            (c, id)
        });
        Self {
            ctx,
            inner: std::sync::Mutex::new(WeakInner {
                entries: vec![WeakEntry {
                    val: v,
                    seq: 0,
                    epoch: Epoch::NONE,
                    clock: VClock::new(),
                    release: false,
                }],
                next_seq: 1,
                last_seen: Vec::new(),
            }),
        }
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, WeakInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn load(&self, order: Ordering) -> u64 {
        let (ctx, id, tid) = match (&self.ctx, sched_ctx()) {
            (Some((ctx, id)), Some((_, tid))) => (ctx, *id, tid),
            _ => return self.lock_inner().newest().val,
        };
        ctx.park_op(tid, OpId::AtomicLoad(id));
        let clock = ctx.clock_of(tid);
        let mut inner = self.lock_inner();
        // Coherence floor: nothing older than what this thread already
        // saw here, and nothing older than the newest store that
        // happens-before this load.
        let hb_floor = inner
            .entries
            .iter()
            .filter(|e| e.epoch.visible_to(&clock))
            .map(|e| e.seq)
            .max()
            .unwrap_or(0);
        let own_floor = *inner.floor_slot(tid);
        let floor = hb_floor.max(own_floor);
        let visible: Vec<usize> = inner
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.seq >= floor)
            .map(|(i, _)| i)
            .collect();
        let pick = if order == Ordering::SeqCst || visible.len() <= 1 {
            // SeqCst loads read the newest value (the modeled SC order
            // is coherence order — an approximation documented in
            // DESIGN.md §9). `visible` is never empty: the newest entry
            // always qualifies.
            *visible.last().expect("newest entry always visible")
        } else {
            // Stale-read choice, newest first so index 0 (the DFS
            // default) is the strongest behavior.
            let k = ctx.pick_value(visible.len());
            visible[visible.len() - 1 - k]
        };
        let e = &inner.entries[pick];
        let val = e.val;
        let sync = (is_acquire(order) && e.release).then(|| e.clock.clone());
        let seq = e.seq;
        *inner.floor_slot(tid) = seq;
        let digest = inner.digest();
        drop(inner);
        if let Some(c) = sync {
            ctx.join_clock(tid, &c);
        }
        ctx.set_tracked_digest(id, digest);
        val
    }

    fn store(&self, v: u64, order: Ordering) {
        let (ctx, id, tid) = match (&self.ctx, sched_ctx()) {
            (Some((ctx, id)), Some((_, tid))) => (ctx, *id, tid),
            _ => {
                // Free-pass store (harness): collapse the buffer so later
                // reads are deterministic.
                let mut inner = self.lock_inner();
                let seq = inner.next_seq;
                inner.next_seq += 1;
                inner.entries = vec![WeakEntry {
                    val: v,
                    seq,
                    epoch: Epoch::NONE,
                    clock: VClock::new(),
                    release: false,
                }];
                return;
            }
        };
        ctx.park_op(tid, OpId::AtomicStore(id));
        let clock = ctx.clock_of(tid);
        let mut inner = self.lock_inner();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push(WeakEntry {
            val: v,
            seq,
            epoch: Epoch::of(tid, &clock),
            clock,
            release: is_release(order),
        });
        if inner.entries.len() > STORE_BUFFER_DEPTH {
            inner.entries.remove(0);
        }
        *inner.floor_slot(tid) = seq;
        let digest = inner.digest();
        drop(inner);
        if is_release(order) {
            ctx.bump_clock(tid);
        }
        ctx.set_tracked_digest(id, digest);
    }

    /// RMW: reads the newest value atomically (no staleness — that is
    /// what makes it an RMW), writes `f(old)`, returns `old`.
    fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        let (ctx, id, tid) = match (&self.ctx, sched_ctx()) {
            (Some((ctx, id)), Some((_, tid))) => (ctx, *id, tid),
            _ => {
                let mut inner = self.lock_inner();
                let old = inner.newest().val;
                let seq = inner.next_seq;
                inner.next_seq += 1;
                inner.entries = vec![WeakEntry {
                    val: f(old),
                    seq,
                    epoch: Epoch::NONE,
                    clock: VClock::new(),
                    release: false,
                }];
                return old;
            }
        };
        ctx.park_op(tid, OpId::AtomicStore(id));
        let mut clock = ctx.clock_of(tid);
        let mut inner = self.lock_inner();
        let (old, sync) = {
            let newest = inner.newest();
            (
                newest.val,
                (is_acquire(order) && newest.release).then(|| newest.clock.clone()),
            )
        };
        if let Some(c) = &sync {
            clock.join(c);
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push(WeakEntry {
            val: f(old),
            seq,
            epoch: Epoch::of(tid, &clock),
            clock: clock.clone(),
            release: is_release(order),
        });
        if inner.entries.len() > STORE_BUFFER_DEPTH {
            inner.entries.remove(0);
        }
        *inner.floor_slot(tid) = seq;
        let digest = inner.digest();
        drop(inner);
        if let Some(c) = sync {
            ctx.join_clock(tid, &c);
        }
        if is_release(order) {
            ctx.bump_clock(tid);
        }
        ctx.set_tracked_digest(id, digest);
        old
    }
}

/// Schedule-instrumented atomic `bool` over the weak-memory core.
pub struct LLAtomicBool(WeakCore);

impl ShimAtomicBool for LLAtomicBool {
    fn new(v: bool) -> Self {
        Self(WeakCore::new(v as u64))
    }
    fn load(&self, order: Ordering) -> bool {
        self.0.load(order) != 0
    }
    fn store(&self, v: bool, order: Ordering) {
        self.0.store(v as u64, order)
    }
    fn swap(&self, v: bool, order: Ordering) -> bool {
        self.0.rmw(order, |_| v as u64) != 0
    }
}

/// Schedule-instrumented atomic `u64` over the weak-memory core.
pub struct LLAtomicU64(WeakCore);

impl ShimAtomicU64 for LLAtomicU64 {
    fn new(v: u64) -> Self {
        Self(WeakCore::new(v))
    }
    fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }
    fn store(&self, v: u64, order: Ordering) {
        self.0.store(v, order)
    }
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        self.0.rmw(order, |old| old.wrapping_add(v))
    }
}

// --------------------------------------------------------------------------
// Tracked data cell (FastTrack race detection)
// --------------------------------------------------------------------------

/// Read shadow: the epochs of reads not yet ordered before a write.
/// Invariant: entries are pairwise concurrent (a new read evicts every
/// entry it happens-after), so the common same-thread / totally-ordered
/// pattern keeps exactly one entry — FastTrack's epoch optimization.
struct ReadShadow {
    reads: Vec<(Epoch, &'static Location<'static>)>,
}

struct CellInner<T> {
    val: T,
    write: Epoch,
    write_site: &'static Location<'static>,
    shadow: ReadShadow,
}

/// A race-tracked plain data cell: the checked counterpart of
/// [`cf_obs::sync::StdCell`]. Every scheduled access runs a FastTrack
/// happens-before check; a conflicting unordered pair panics with both
/// access sites, which the scheduler turns into a replayable failure.
pub struct LLCell<T> {
    ctx: Option<(Arc<ExecCtx>, usize)>,
    inner: std::sync::Mutex<CellInner<T>>,
}

fn race(
    id: usize,
    kind_a: &str,
    tid_a: usize,
    site_a: &Location<'_>,
    kind_b: &str,
    epoch_b: Epoch,
    site_b: &Location<'_>,
) -> ! {
    std::panic::panic_any(format!(
        "data race on tracked cell #{id}: {kind_a} by thread {tid_a} at {site_a} \
         is concurrent with {kind_b} by thread {} at {site_b}",
        epoch_b.tid
    ))
}

impl<T: Copy + Send + 'static> ShimCell<T> for LLCell<T> {
    #[track_caller]
    fn new(v: T) -> Self {
        let site = Location::caller();
        let ctx = current().map(|(c, _)| {
            let id = c.alloc_tracked();
            (c, id)
        });
        Self {
            ctx,
            inner: std::sync::Mutex::new(CellInner {
                val: v,
                write: Epoch::NONE,
                write_site: site,
                shadow: ReadShadow { reads: Vec::new() },
            }),
        }
    }

    #[track_caller]
    fn get(&self) -> T {
        let site = Location::caller();
        let (ctx, id, tid) = match (&self.ctx, sched_ctx()) {
            (Some((ctx, id)), Some((_, tid))) => (ctx, *id, tid),
            _ => {
                return self
                    .inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .val
            }
        };
        ctx.park_op(tid, OpId::CellRead(id));
        let clock = ctx.clock_of(tid);
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !inner.write.visible_to(&clock) {
            let (we, ws) = (inner.write, inner.write_site);
            race(id, "read", tid, site, "write", we, ws);
        }
        // Evict reads this one happens-after; keep concurrent ones.
        inner
            .shadow
            .reads
            .retain(|(e, _)| !(e.tid == tid as u32 || e.visible_to(&clock)));
        inner.shadow.reads.push((Epoch::of(tid, &clock), site));
        inner.val
    }

    #[track_caller]
    fn set(&self, v: T) {
        let site = Location::caller();
        let (ctx, id, tid) = match (&self.ctx, sched_ctx()) {
            (Some((ctx, id)), Some((_, tid))) => (ctx, *id, tid),
            _ => {
                self.inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .val = v;
                return;
            }
        };
        ctx.park_op(tid, OpId::CellWrite(id));
        let clock = ctx.clock_of(tid);
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !inner.write.visible_to(&clock) {
            let (we, ws) = (inner.write, inner.write_site);
            race(id, "write", tid, site, "write", we, ws);
        }
        if let Some(&(e, s)) = inner
            .shadow
            .reads
            .iter()
            .find(|(e, _)| !(e.tid == tid as u32 || e.visible_to(&clock)))
        {
            race(id, "write", tid, site, "read", e, s);
        }
        // All prior accesses are ordered before this write.
        inner.shadow.reads.clear();
        inner.write = Epoch::of(tid, &clock);
        inner.write_site = site;
        inner.val = v;
    }
}

// --------------------------------------------------------------------------
// Mutex
// --------------------------------------------------------------------------

/// Schedule-instrumented mutex. Matches [`cf_obs::sync::RecoverMutex`]'s
/// contract: `lock_recover` never observes poison (model-thread panics
/// abort the whole execution instead).
pub struct LLMutex<T> {
    ctx: Option<Arc<ExecCtx>>,
    rid: usize,
    data: std::sync::Mutex<T>,
}

/// Guard for [`LLMutex`]; releases the scheduler resource on drop.
pub struct LLMutexGuard<'a, T> {
    lock: &'a LLMutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    scheduled: bool,
}

impl<T> Deref for LLMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> DerefMut for LLMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for LLMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // release the data lock first
        if self.scheduled {
            if let Some(ctx) = &self.lock.ctx {
                let tid = sched_ctx().map(|(_, t)| t);
                release_exclusive(ctx, tid, self.lock.rid);
            }
        }
    }
}

impl<T: Send + 'static> ShimMutex<T> for LLMutex<T> {
    type Guard<'a>
        = LLMutexGuard<'a, T>
    where
        T: 'a;

    fn new(value: T) -> Self {
        let (ctx, rid) = match current() {
            Some((ctx, _)) => {
                let rid = ctx.alloc_resource();
                (Some(ctx), rid)
            }
            None => (None, 0),
        };
        Self {
            ctx,
            rid,
            data: std::sync::Mutex::new(value),
        }
    }

    fn lock_recover(&self) -> Self::Guard<'_> {
        let scheduled = match (sched_ctx(), &self.ctx) {
            (Some((_, tid)), Some(ctx)) => {
                acquire_exclusive(ctx, tid, self.rid);
                true
            }
            _ => false,
        };
        let inner = if scheduled {
            // The scheduler granted exclusivity; the data lock is free.
            self.data
                .try_lock()
                .unwrap_or_else(|_| unreachable!("scheduler-granted mutex contended"))
        } else {
            self.data
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        };
        LLMutexGuard {
            lock: self,
            inner: Some(inner),
            scheduled,
        }
    }
}

// --------------------------------------------------------------------------
// RwLock
// --------------------------------------------------------------------------

/// Schedule-instrumented reader-writer lock with the full poison
/// protocol of [`cf_obs::sync::ShimRwLock`].
pub struct LLRwLock<T> {
    ctx: Option<Arc<ExecCtx>>,
    rid: usize,
    data: std::sync::RwLock<T>,
}

impl<T> LLRwLock<T> {
    fn set_poisoned(&self, poisoned: bool) {
        if let Some(ctx) = &self.ctx {
            ctx.lock().resources[self.rid].poisoned = poisoned;
        }
    }

    fn poisoned_flag(&self) -> bool {
        match &self.ctx {
            Some(ctx) => ctx.lock().resources[self.rid].poisoned,
            None => false,
        }
    }

    /// Yield point for poison-flag reads/writes outside a held guard:
    /// they touch the resource, so they classify as `Lock(rid)`.
    fn yield_flag_op(&self) {
        if let (Some((ctx, tid)), Some(_)) = (sched_ctx(), &self.ctx) {
            ctx.park_op(tid, OpId::Lock(self.rid));
        }
    }
}

/// Shared guard for [`LLRwLock`].
pub struct LLReadGuard<'a, T> {
    lock: &'a LLRwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    scheduled: bool,
}

impl<T> Deref for LLReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> Drop for LLReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.scheduled {
            if let Some(ctx) = &self.lock.ctx {
                let tid = sched_ctx().map(|(_, t)| t);
                release_shared(ctx, tid, self.lock.rid);
            }
        }
    }
}

/// Exclusive guard for [`LLRwLock`]. Dropping it while panicking
/// poisons the lock, exactly like `std`.
pub struct LLWriteGuard<'a, T> {
    lock: &'a LLRwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    scheduled: bool,
}

impl<T> Deref for LLWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> DerefMut for LLWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for LLWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if std::thread::panicking() {
            self.lock.set_poisoned(true);
        }
        if self.scheduled {
            if let Some(ctx) = &self.lock.ctx {
                let tid = sched_ctx().map(|(_, t)| t);
                release_exclusive(ctx, tid, self.lock.rid);
            }
        }
    }
}

impl<T: Send + Sync + 'static> LLRwLock<T> {
    fn claim_shared(&self) -> LLReadGuard<'_, T> {
        let scheduled = match (sched_ctx(), &self.ctx) {
            (Some((_, tid)), Some(ctx)) => {
                acquire_shared(ctx, tid, self.rid);
                true
            }
            _ => false,
        };
        let inner = if scheduled {
            self.data
                .try_read()
                .unwrap_or_else(|_| unreachable!("scheduler-granted shared lock contended"))
        } else {
            self.data
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        };
        LLReadGuard {
            lock: self,
            inner: Some(inner),
            scheduled,
        }
    }

    fn claim_exclusive(&self) -> LLWriteGuard<'_, T> {
        let scheduled = match (sched_ctx(), &self.ctx) {
            (Some((_, tid)), Some(ctx)) => {
                acquire_exclusive(ctx, tid, self.rid);
                true
            }
            _ => false,
        };
        let inner = if scheduled {
            self.data
                .try_write()
                .unwrap_or_else(|_| unreachable!("scheduler-granted exclusive lock contended"))
        } else {
            self.data
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        };
        LLWriteGuard {
            lock: self,
            inner: Some(inner),
            scheduled,
        }
    }
}

impl<T: Send + Sync + 'static> ShimRwLock<T> for LLRwLock<T> {
    type ReadGuard<'a>
        = LLReadGuard<'a, T>
    where
        T: 'a;
    type WriteGuard<'a>
        = LLWriteGuard<'a, T>
    where
        T: 'a;

    fn new(value: T) -> Self {
        let (ctx, rid) = match current() {
            Some((ctx, _)) => {
                let rid = ctx.alloc_resource();
                (Some(ctx), rid)
            }
            None => (None, 0),
        };
        Self {
            ctx,
            rid,
            data: std::sync::RwLock::new(value),
        }
    }

    fn read(&self) -> Result<Self::ReadGuard<'_>, Poisoned> {
        // Acquire first, then report poison (matching std: a poisoned
        // read still waits for the lock; our contract then drops the
        // guard and reports).
        let g = self.claim_shared();
        if self.poisoned_flag() {
            drop(g);
            return Err(Poisoned);
        }
        Ok(g)
    }

    fn write(&self) -> Result<Self::WriteGuard<'_>, Poisoned> {
        let g = self.claim_exclusive();
        if self.poisoned_flag() {
            drop(g);
            return Err(Poisoned);
        }
        Ok(g)
    }

    fn write_recover(&self) -> Self::WriteGuard<'_> {
        self.claim_exclusive()
    }

    fn clear_poison(&self) {
        self.yield_flag_op();
        self.set_poisoned(false);
    }

    fn is_poisoned(&self) -> bool {
        self.yield_flag_op();
        self.poisoned_flag()
    }

    fn poison(&self) {
        // Exactly what a panicking writer does: acquire exclusively,
        // mark poisoned, release.
        let g = self.claim_exclusive();
        self.set_poisoned(true);
        drop(g);
    }
}

impl Shim for LLShim {
    type AtomicBool = LLAtomicBool;
    type AtomicU64 = LLAtomicU64;
    type Mutex<T: Send + 'static> = LLMutex<T>;
    type RwLock<T: Send + Sync + 'static> = LLRwLock<T>;
    type Cell<T: Copy + Send + 'static> = LLCell<T>;
}
