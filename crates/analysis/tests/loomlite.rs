//! Seed-replay regression tests for the loom-lite checker itself.
//!
//! The fixture is `ToyLockModel` (`crates/analysis/src/toylock.rs`): a
//! deliberately broken check-then-act flag lock and its fixed variant
//! built on the shim's blocking mutex. The checker must (a) find the
//! race under a *recorded* random seed, (b) reproduce it exactly from
//! the recorded schedule, and (c) pass the fixed variant by exhausting
//! every interleaving.

use cf_analysis::sched::{Explorer, Mode};
use cf_analysis::toylock::ToyLockModel;

/// Recorded seed known to expose the check-then-act race at 2 threads
/// within 64 iterations (found once, pinned forever; the generator is
/// deterministic so this can never flake).
const RECORDED_SEED: u64 = 0x1;

#[test]
fn buggy_toy_lock_fails_on_the_recorded_seed() {
    let report = Explorer::new(Mode::Random {
        seed: RECORDED_SEED,
        iterations: 64,
    })
    .run(ToyLockModel {
        buggy: true,
        threads: 2,
    });
    let failure = report
        .failure
        .expect("recorded seed must expose the mutual-exclusion race");
    assert!(
        failure.message.contains("mutual exclusion violated"),
        "unexpected failure: {}",
        failure.message
    );
    let (seed, _) = failure.seed.expect("random-mode failures carry their seed");
    assert_eq!(seed, RECORDED_SEED);

    // The printed reproducer must actually reproduce: replaying the
    // recorded schedule hits the identical violation.
    let replay = Explorer::new(Mode::Replay {
        script: failure.script.clone(),
    })
    .run(ToyLockModel {
        buggy: true,
        threads: 2,
    });
    let again = replay
        .failure
        .expect("recorded schedule must reproduce the race");
    assert_eq!(again.message, failure.message);
}

#[test]
fn fixed_toy_lock_passes_exhaustively_at_two_threads() {
    let report = Explorer::new(Mode::Exhaustive).run(ToyLockModel {
        buggy: false,
        threads: 2,
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete, "exploration must finish the whole tree");
    assert!(report.executions > 1, "a 2-thread lock has >1 interleaving");
}

#[test]
fn fixed_toy_lock_passes_exhaustively_at_three_threads() {
    let report = Explorer::new(Mode::Exhaustive).run(ToyLockModel {
        buggy: false,
        threads: 3,
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
#[ignore = "larger tree; run with --ignored for the full sweep"]
fn fixed_toy_lock_passes_exhaustively_at_four_threads() {
    let report = Explorer::new(Mode::Exhaustive).run(ToyLockModel {
        buggy: false,
        threads: 4,
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn random_mode_is_deterministic_per_seed() {
    let run = || {
        Explorer::new(Mode::Random {
            seed: RECORDED_SEED,
            iterations: 64,
        })
        .run(ToyLockModel {
            buggy: true,
            threads: 2,
        })
    };
    let (a, b) = (run(), run());
    let fa = a.failure.expect("seeded run fails");
    let fb = b.failure.expect("same seed, same failure");
    assert_eq!(fa.script, fb.script);
    assert_eq!(fa.seed, fb.seed);
    assert_eq!(a.executions, b.executions);
}
