//! Seed-replay regression tests for the loom-lite checker itself.
//!
//! The fixture is `ToyLockModel` (`crates/analysis/src/toylock.rs`): a
//! deliberately broken check-then-act flag lock and its fixed variant
//! built on the shim's blocking mutex. The checker must (a) find the
//! race under a *recorded* random seed, (b) reproduce it exactly from
//! the recorded schedule, and (c) pass the fixed variant by exhausting
//! every interleaving.

use cf_analysis::models::RacyCellModel;
use cf_analysis::sched::{Explorer, Mode};
use cf_analysis::toylock::ToyLockModel;

/// Recorded seed known to expose the check-then-act race at 2 threads
/// within 64 iterations (found once, pinned forever; the generator is
/// deterministic so this can never flake).
const RECORDED_SEED: u64 = 0x1;

#[test]
fn buggy_toy_lock_fails_on_the_recorded_seed() {
    let report = Explorer::new(Mode::Random {
        seed: RECORDED_SEED,
        iterations: 64,
    })
    .run(ToyLockModel {
        buggy: true,
        threads: 2,
    });
    let failure = report
        .failure
        .expect("recorded seed must expose the mutual-exclusion race");
    assert!(
        failure.message.contains("mutual exclusion violated"),
        "unexpected failure: {}",
        failure.message
    );
    let (seed, _) = failure.seed.expect("random-mode failures carry their seed");
    assert_eq!(seed, RECORDED_SEED);

    // The printed reproducer must actually reproduce: replaying the
    // recorded schedule hits the identical violation.
    let replay = Explorer::new(Mode::Replay {
        script: failure.script.clone(),
    })
    .run(ToyLockModel {
        buggy: true,
        threads: 2,
    });
    let again = replay
        .failure
        .expect("recorded schedule must reproduce the race");
    assert_eq!(again.message, failure.message);
}

#[test]
fn fixed_toy_lock_passes_exhaustively_at_two_threads() {
    let report = Explorer::new(Mode::Exhaustive).run(ToyLockModel {
        buggy: false,
        threads: 2,
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete, "exploration must finish the whole tree");
    assert!(report.executions > 1, "a 2-thread lock has >1 interleaving");
}

#[test]
fn fixed_toy_lock_passes_exhaustively_at_three_threads() {
    let report = Explorer::new(Mode::Exhaustive).run(ToyLockModel {
        buggy: false,
        threads: 3,
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
#[ignore = "larger tree; run with --ignored for the full sweep"]
fn fixed_toy_lock_passes_exhaustively_at_four_threads() {
    let report = Explorer::new(Mode::Exhaustive).run(ToyLockModel {
        buggy: false,
        threads: 4,
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn race_detector_fires_on_unguarded_cell_and_replays() {
    let report = Explorer::new(Mode::Exhaustive).run(RacyCellModel {
        fixed: false,
        threads: 2,
    });
    let failure = report
        .failure
        .expect("unguarded increments must be reported as a data race");
    // The report must name the race and BOTH conflicting access sites.
    assert!(
        failure.message.contains("data race"),
        "unexpected failure: {}",
        failure.message
    );
    assert!(
        failure.message.contains("read by thread") && failure.message.contains("write by thread"),
        "race report must carry both access sites: {}",
        failure.message
    );
    assert_eq!(
        failure.message.matches("models.rs").count(),
        2,
        "both sites must resolve to source locations: {}",
        failure.message
    );

    // The recorded schedule is a working reproducer.
    let replay = Explorer::new(Mode::Replay {
        script: failure.script.clone(),
    })
    .run(RacyCellModel {
        fixed: false,
        threads: 2,
    });
    let again = replay
        .failure
        .expect("recorded schedule must reproduce the race");
    assert_eq!(again.message, failure.message);
}

#[test]
fn race_detector_fires_under_a_recorded_seed() {
    // Random mode must find the race too, and stamp the failure with the
    // seed so the operator can rerun the exact search.
    let report = Explorer::new(Mode::Random {
        seed: RECORDED_SEED,
        iterations: 16,
    })
    .run(RacyCellModel {
        fixed: false,
        threads: 2,
    });
    let failure = report.failure.expect("seeded run must expose the race");
    assert!(failure.message.contains("data race"), "{}", failure.message);
    let (seed, _) = failure.seed.expect("random failures carry a seed");
    assert_eq!(seed, RECORDED_SEED);
}

#[test]
fn fixed_racy_cell_passes_exhaustively_at_two_and_three_threads() {
    for threads in [2, 3] {
        let report = Explorer::new(Mode::Exhaustive).run(RacyCellModel {
            fixed: true,
            threads,
        });
        assert!(
            report.failure.is_none(),
            "threads={threads}: {:?}",
            report.failure
        );
        assert!(report.complete, "threads={threads}: must exhaust the tree");
    }
}

#[test]
#[ignore = "deep sweep; run with --ignored"]
fn fixed_racy_cell_is_race_free_across_a_deep_bounded_sweep_at_four_threads() {
    // Four threads of lock/get/set/unlock have too many interleavings to
    // exhaust even under sleep sets (the tree outgrows the 1M-execution
    // safety valve), so this sweep is explicitly *bounded*: DFS order is
    // deterministic, and no schedule in the first 200k executions may
    // trip the race detector or the final-count check.
    let report = Explorer::new(Mode::Exhaustive)
        .with_max_executions(200_000)
        .run(RacyCellModel {
            fixed: true,
            threads: 4,
        });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.executions >= 200_000 || report.complete);
}

#[test]
fn random_mode_is_deterministic_per_seed() {
    let run = || {
        Explorer::new(Mode::Random {
            seed: RECORDED_SEED,
            iterations: 64,
        })
        .run(ToyLockModel {
            buggy: true,
            threads: 2,
        })
    };
    let (a, b) = (run(), run());
    let fa = a.failure.expect("seeded run fails");
    let fb = b.failure.expect("same seed, same failure");
    assert_eq!(fa.script, fb.script);
    assert_eq!(fa.seed, fb.seed);
    assert_eq!(a.executions, b.executions);
}
