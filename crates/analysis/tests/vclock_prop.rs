//! Property tests for the race detector's vector-clock lattice.
//!
//! The happens-before detector is sound only if `join`/`leq` really
//! form a join-semilattice: join must be idempotent, commutative, and
//! associative; `leq` must be a partial order; and `join` must compute
//! the *least* upper bound. Epochs must agree with the clocks they
//! compress. Each law is checked over arbitrary clocks.

use cf_analysis::vclock::{Epoch, VClock};
use proptest::prelude::*;

/// Strategy: an arbitrary clock over up to 6 threads with small
/// timestamps (collisions between components are the interesting case).
fn clock() -> impl Strategy<Value = VClock> {
    proptest::collection::vec(0u32..5, 0..6).prop_map(|vals| {
        let mut c = VClock::new();
        for (t, v) in vals.into_iter().enumerate() {
            c.set(t, v);
        }
        c
    })
}

fn joined(a: &VClock, b: &VClock) -> VClock {
    let mut j = a.clone();
    j.join(b);
    j
}

proptest! {
    #[test]
    fn join_is_idempotent_commutative_associative(
        a in clock(), b in clock(), c in clock(),
    ) {
        prop_assert_eq!(joined(&a, &a), a.clone());
        let ab = joined(&a, &b);
        let ba = joined(&b, &a);
        // Commutativity up to trailing zeros: compare componentwise via
        // the partial order, which ignores representation length.
        prop_assert!(ab.leq(&ba) && ba.leq(&ab));
        let ab_c = joined(&joined(&a, &b), &c);
        let a_bc = joined(&a, &joined(&b, &c));
        prop_assert!(ab_c.leq(&a_bc) && a_bc.leq(&ab_c));
    }

    #[test]
    fn leq_is_a_partial_order(a in clock(), b in clock(), c in clock()) {
        // Reflexive.
        prop_assert!(a.leq(&a));
        // Antisymmetric (up to representation: mutual leq means every
        // component agrees).
        if a.leq(&b) && b.leq(&a) {
            for t in 0..8 {
                prop_assert_eq!(a.get(t), b.get(t));
            }
        }
        // Transitive.
        if a.leq(&b) && b.leq(&c) {
            prop_assert!(a.leq(&c));
        }
    }

    #[test]
    fn join_is_the_least_upper_bound(a in clock(), b in clock(), c in clock()) {
        let j = joined(&a, &b);
        // Upper bound of both inputs…
        prop_assert!(a.leq(&j));
        prop_assert!(b.leq(&j));
        // …and least among upper bounds.
        if a.leq(&c) && b.leq(&c) {
            prop_assert!(j.leq(&c));
        }
        // Join is monotone: ordered inputs keep ordered joins.
        if a.leq(&b) {
            prop_assert!(joined(&a, &c).leq(&joined(&b, &c)));
        }
    }

    #[test]
    fn epoch_visibility_matches_the_clock_it_compresses(
        a in clock(), b in clock(), t in 0usize..6,
    ) {
        // FastTrack's point: `Epoch::of(t, a)` visible to `b` must be
        // exactly the component test `a[t] <= b[t]`.
        let e = Epoch::of(t, &a);
        prop_assert_eq!(e.visible_to(&b), a.get(t) <= b.get(t));
        // Full-clock ordering implies epoch visibility.
        if a.leq(&b) {
            prop_assert!(e.visible_to(&b));
        }
        // The sentinel is visible to everything.
        prop_assert!(Epoch::NONE.visible_to(&a));
    }

    #[test]
    fn inc_strictly_advances_only_the_holder(a in clock(), t in 0usize..6) {
        let mut bumped = a.clone();
        bumped.inc(t);
        prop_assert!(a.leq(&bumped));
        prop_assert!(!bumped.leq(&a), "inc must strictly advance");
        prop_assert_eq!(bumped.get(t), a.get(t) + 1);
        for other in (0..8).filter(|&o| o != t) {
            prop_assert_eq!(bumped.get(other), a.get(other));
        }
    }
}
