//! Property tests for the suppression comment grammar: rendering a set
//! of rule ids and re-scanning the file must round-trip exactly, and
//! unknown rule ids must always surface as hard errors.

use cf_analysis::lint::rules::RULES;
use cf_analysis::lint::{parse_suppressions, render_suppression, scan_file};
use proptest::prelude::*;

proptest! {
    /// render → scan → parse is the identity on known rule ids,
    /// wherever the comment lands in the file and whatever code
    /// surrounds it.
    #[test]
    fn suppression_round_trips(
        idxs in proptest::collection::vec(0usize..RULES.len(), 1..4),
        pad_before in 0usize..4,
        trailing in proptest::option::of(0usize..RULES.len()),
    ) {
        // Dedupe while keeping order (duplicate ids in one comment are
        // legal and parse once each; keep the oracle simple).
        let mut ids: Vec<&str> = Vec::new();
        for i in idxs {
            if !ids.contains(&RULES[i].id) {
                ids.push(RULES[i].id);
            }
        }
        let comment = render_suppression(&ids);

        let mut src = String::new();
        for _ in 0..pad_before {
            src.push_str("fn pad() {}\n");
        }
        src.push_str(&comment);
        src.push('\n');
        // Same-line form on a code line, optionally.
        if let Some(t) = trailing {
            src.push_str(&format!("let x = 1; {}\n", render_suppression(&[RULES[t].id])));
        }

        let scan = scan_file("crates/core/src/x.rs", &src);
        let (found, errors) = parse_suppressions(&scan);
        prop_assert!(errors.is_empty(), "round-trip produced errors: {errors:?}");

        let standalone: Vec<&str> = found
            .iter()
            .filter(|s| s.line == pad_before + 1)
            .map(|s| s.rule.as_str())
            .collect();
        prop_assert_eq!(standalone, ids);
        if let Some(t) = trailing {
            let inline: Vec<&str> = found
                .iter()
                .filter(|s| s.line == pad_before + 2)
                .map(|s| s.rule.as_str())
                .collect();
            prop_assert_eq!(inline, vec![RULES[t].id]);
        }
    }

    /// Any id not in the catalog is a hard error, never silently
    /// accepted — mixed known/unknown comments still error.
    #[test]
    fn unknown_rule_ids_are_hard_errors(
        n in 0u32..1_000_000,
        known in proptest::option::of(0usize..RULES.len()),
    ) {
        let bogus = format!("nope-{n}");
        prop_assume!(!RULES.iter().any(|r| r.id == bogus));
        let ids: Vec<&str> = match known {
            Some(k) => vec![RULES[k].id, &bogus],
            None => vec![&bogus],
        };
        let src = format!("{}\nfn f() {{}}\n", render_suppression(&ids));
        let scan = scan_file("crates/core/src/x.rs", &src);
        let (found, errors) = parse_suppressions(&scan);
        prop_assert_eq!(errors.len(), 1);
        prop_assert_eq!(errors[0].rule, "bad-suppression");
        prop_assert!(errors[0].message.contains(&bogus));
        // The known id (if any) still parses alongside the error.
        prop_assert_eq!(found.len(), usize::from(known.is_some()));
    }
}
