//! Chaos tests for the serving tier, gated on the `faultinject` feature:
//! a shard that drops connections mid-request (response computed, never
//! written) must cost the router retries — never request errors.
//!
//! Run with `cargo test -p cf-serve --features faultinject`.

#![cfg(feature = "faultinject")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::Duration;

use cf_matrix::{ItemId, UserId};
use cf_serve::client::ClientOptions;
use cf_serve::router::{Router, RouterConfig};
use cf_serve::server::{ShardOptions, ShardServer};
use cfsf_core::{Cfsf, CfsfConfig};

fn model() -> Arc<Cfsf> {
    let d = cf_data::SyntheticConfig::small().generate();
    Arc::new(Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap())
}

fn counter(name: &str) -> u64 {
    cf_obs::global().counter(name).get()
}

#[test]
fn dropped_connections_cost_retries_not_errors() {
    let model = model();
    let shard =
        ShardServer::bind("127.0.0.1:0", Arc::clone(&model), ShardOptions::default()).unwrap();

    // Fire on every 5th request served: the shard computes the answer,
    // then hangs up without writing it. The router sees a dead
    // connection mid-exchange — the worst moment to lose a shard.
    cf_faultinject::arm(
        "serve.shard.drop_conn",
        cf_faultinject::Policy::Probability(0.2),
    );

    let router = Router::connect(RouterConfig {
        shards: vec![shard.local_addr().to_string()],
        client: ClientOptions {
            connect_timeout: Duration::from_millis(300),
            io_timeout: Duration::from_millis(100),
            request_deadline: Duration::from_secs(2),
        },
        max_in_flight_per_shard: 64,
        // Generous retries: each drop kills one pooled connection, and
        // the next attempt reconnects to a still-alive shard.
        retries: 3,
        backoff: Duration::from_millis(2),
        down_cooldown: Duration::from_millis(100),
    })
    .unwrap();

    let users = model.matrix().num_users() as u32;
    let mut exact = 0u32;
    let mut degraded = 0u32;
    for round in 0..4 {
        for user in 0..users {
            let item = round % model.matrix().num_items() as u32;
            let p = router.predict(user, item).unwrap();
            assert!(p.fused.is_finite());
            if p.shard.is_some() {
                // A shard answer must still be bit-for-bit right, chaos
                // or not.
                let local = model
                    .predict_with_breakdown(UserId::new(user), ItemId::new(item))
                    .unwrap();
                assert_eq!(p.fused.to_bits(), local.fused.to_bits());
                exact += 1;
            } else {
                degraded += 1;
            }
        }
    }
    // Read the counts before disarming: disarm drops the point (and its
    // counters) from the registry.
    let fired = cf_faultinject::fired_count("serve.shard.drop_conn");
    cf_faultinject::disarm("serve.shard.drop_conn");

    assert!(
        fired > 0,
        "the chaos point must actually fire for this test to mean anything"
    );
    assert!(exact > 0, "most requests should survive via retry");
    // Some requests may degrade (drop exhausted the retries) — that is
    // the designed behavior. What must NOT happen is an error:
    assert_eq!(counter("router.request_errors"), 0);
    assert!(
        counter("router.retries") > 0,
        "drops must surface as retries"
    );
    let _ = degraded;

    shard.shutdown();
}
