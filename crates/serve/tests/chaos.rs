//! Chaos tests for the serving tier, gated on the `faultinject` feature:
//!
//! - a shard that drops connections mid-request (response computed,
//!   never written) must cost the router retries — never request errors;
//! - a background model refresh stalled (or the shard killed) mid-swap
//!   must never pause or fail a request: readers stay on the old
//!   generation until the publish, and a killed serving tier does not
//!   stop the rebuild from completing.
//!
//! Run with `cargo test -p cf-serve --features faultinject`. Scenarios
//! share the global fault registry, so they serialize on a mutex and
//! disarm everything on entry.

#![cfg(feature = "faultinject")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use cf_matrix::{ItemId, UserId};
use cf_serve::client::ClientOptions;
use cf_serve::frame::{Request, Response};
use cf_serve::router::{Router, RouterConfig};
use cf_serve::server::{ShardOptions, ShardServer};
use cf_serve::{ModelHandle, ShardClient};
use cfsf_core::{Cfsf, CfsfConfig, DriftConfig, SelfHealingCfsf};

static FAULTS: Mutex<()> = Mutex::new(());

fn scenario() -> MutexGuard<'static, ()> {
    let lock = FAULTS.lock().unwrap_or_else(PoisonError::into_inner);
    cf_faultinject::disarm_all();
    lock
}

fn fitted() -> Cfsf {
    let d = cf_data::SyntheticConfig::small().generate();
    Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap()
}

fn model() -> Arc<Cfsf> {
    Arc::new(fitted())
}

fn counter(name: &str) -> u64 {
    cf_obs::global().counter(name).get()
}

#[test]
fn dropped_connections_cost_retries_not_errors() {
    let _guard = scenario();
    let model = model();
    let shard = ShardServer::bind(
        "127.0.0.1:0",
        ModelHandle::fixed(Arc::clone(&model)),
        ShardOptions::default(),
    )
    .unwrap();

    // Fire on every 5th request served: the shard computes the answer,
    // then hangs up without writing it. The router sees a dead
    // connection mid-exchange — the worst moment to lose a shard.
    cf_faultinject::arm(
        "serve.shard.drop_conn",
        cf_faultinject::Policy::Probability(0.2),
    );

    let router = Router::connect(RouterConfig {
        shards: vec![shard.local_addr().to_string()],
        client: ClientOptions {
            connect_timeout: Duration::from_millis(300),
            io_timeout: Duration::from_millis(100),
            request_deadline: Duration::from_secs(2),
        },
        max_in_flight_per_shard: 64,
        // Generous retries: each drop kills one pooled connection, and
        // the next attempt reconnects to a still-alive shard.
        retries: 3,
        backoff: Duration::from_millis(2),
        down_cooldown: Duration::from_millis(100),
    })
    .unwrap();

    let users = model.matrix().num_users() as u32;
    let mut exact = 0u32;
    let mut degraded = 0u32;
    for round in 0..4 {
        for user in 0..users {
            let item = round % model.matrix().num_items() as u32;
            let p = router.predict(user, item).unwrap();
            assert!(p.fused.is_finite());
            if p.shard.is_some() {
                // A shard answer must still be bit-for-bit right, chaos
                // or not.
                let local = model
                    .predict_with_breakdown(UserId::new(user), ItemId::new(item))
                    .unwrap();
                assert_eq!(p.fused.to_bits(), local.fused.to_bits());
                exact += 1;
            } else {
                degraded += 1;
            }
        }
    }
    // Read the counts before disarming: disarm drops the point (and its
    // counters) from the registry.
    let fired = cf_faultinject::fired_count("serve.shard.drop_conn");
    cf_faultinject::disarm("serve.shard.drop_conn");

    assert!(
        fired > 0,
        "the chaos point must actually fire for this test to mean anything"
    );
    assert!(exact > 0, "most requests should survive via retry");
    // Some requests may degrade (drop exhausted the retries) — that is
    // the designed behavior. What must NOT happen is an error:
    assert_eq!(counter("router.request_errors"), 0);
    assert!(
        counter("router.retries") > 0,
        "drops must surface as retries"
    );
    let _ = degraded;

    shard.shutdown();
}

/// A drift config that never trips on its own, so the scenario controls
/// exactly when the rebuild starts (via `trigger`).
fn parked() -> DriftConfig {
    DriftConfig {
        mae_trip_pm: i64::MAX,
        mae_clear_pm: 0,
        hist_trip_pm: i64::MAX,
        hist_clear_pm: 0,
        fallback_trip_pm: i64::MAX,
        fallback_clear_pm: 0,
        trip_windows: u32::MAX,
        ..DriftConfig::default()
    }
}

/// Unrated cells of the served matrix, usable as fresh live ratings.
fn unrated(model: &Cfsf, n: usize) -> Vec<(UserId, ItemId)> {
    let m = model.matrix();
    let mut out = Vec::with_capacity(n);
    'outer: for u in 0..m.num_users() {
        for i in 0..m.num_items() {
            let (user, item) = (UserId::from(u), ItemId::from(i));
            if m.get(user, item).is_none() {
                out.push((user, item));
                if out.len() == n {
                    break 'outer;
                }
            }
        }
    }
    out
}

fn client_opts() -> ClientOptions {
    ClientOptions {
        connect_timeout: Duration::from_millis(300),
        io_timeout: Duration::from_millis(500),
        request_deadline: Duration::from_secs(2),
    }
}

#[test]
fn shard_kill_during_refresh_neither_blocks_serving_nor_kills_rebuild() {
    let _guard = scenario();

    // Self-healing model behind the generation cell; the shard serves
    // through `ModelHandle::from_cell`, so a publish swaps it live.
    let healing = SelfHealingCfsf::new(fitted(), parked()).unwrap();
    let cell = healing.cell();
    let gen0 = cell.load();
    let shard = ShardServer::bind(
        "127.0.0.1:0",
        ModelHandle::from_cell(Arc::clone(&cell)),
        ShardOptions::default(),
    )
    .unwrap();

    let mut client = ShardClient::connect(shard.local_addr(), client_opts()).unwrap();
    match client.request(&Request::Health).unwrap() {
        Response::Health(h) => assert_eq!(h.generation, 0, "fresh shard serves generation 0"),
        other => panic!("expected Health, got {other:?}"),
    }

    // Merge fresh ratings, then stall the rebuild worker mid-build: the
    // refresh is now provably in flight while we keep serving.
    let scale = gen0.matrix().scale();
    for (user, item) in unrated(&gen0, 16) {
        healing.add_rating(user, item, scale.min).unwrap();
    }
    cf_faultinject::arm("refresh.worker_stall", cf_faultinject::Policy::Always);
    assert!(healing.trigger(), "manual trigger must start the rebuild");

    // While the worker is stalled, wire requests are answered from
    // generation 0 bit-for-bit — the rebuild never pauses the shard.
    let (users, items) = (
        gen0.matrix().num_users() as u32,
        gen0.matrix().num_items() as u32,
    );
    for k in 0..16u32 {
        let (user, item) = (k % users, (k * 3) % items);
        match client.request(&Request::predict(user, item)).unwrap() {
            Response::Prediction(p) => {
                let local = gen0
                    .predict_with_breakdown(UserId::new(user), ItemId::new(item))
                    .unwrap();
                assert_eq!(
                    p.fused.to_bits(),
                    local.fused.to_bits(),
                    "request served during the stalled rebuild diverged from \
                     the old generation"
                );
            }
            other => panic!("expected Prediction, got {other:?}"),
        }
    }
    assert_eq!(
        healing.generation(),
        0,
        "the worker stall must have held the publish back while we served"
    );
    assert!(
        cf_faultinject::fired_count("refresh.worker_stall") > 0,
        "the stall point must actually fire for this test to mean anything"
    );

    // Kill the serving tier mid-refresh. The model tier must not care:
    // the rebuild still completes and publishes.
    drop(client);
    shard.shutdown();
    cf_faultinject::disarm("refresh.worker_stall");
    healing.wait_idle();
    assert_eq!(
        healing.generation(),
        1,
        "the rebuild must publish even with the serving tier gone"
    );

    // A replacement shard over the same cell serves the new generation
    // immediately — recovery is just re-binding.
    let shard = ShardServer::bind(
        "127.0.0.1:0",
        ModelHandle::from_cell(Arc::clone(&cell)),
        ShardOptions::default(),
    )
    .unwrap();
    let mut client = ShardClient::connect(shard.local_addr(), client_opts()).unwrap();
    match client.request(&Request::Health).unwrap() {
        Response::Health(h) => assert_eq!(h.generation, 1, "replacement shard serves generation 1"),
        other => panic!("expected Health, got {other:?}"),
    }
    shard.shutdown();
}
