//! In-process integration tests for the sharded serving tier: real TCP
//! sockets, real threads, one process. Shards and router run against the
//! same loaded model, so every remote answer can be compared bit-for-bit
//! with the in-process API.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::Duration;

use cf_matrix::{ItemId, UserId};
use cf_serve::client::{ClientOptions, ShardClient};
use cf_serve::frame::{Request, Response};
use cf_serve::router::{shard_for_user, Router, RouterConfig, RouterServer};
use cf_serve::server::{ServerOptions, ShardOptions, ShardServer};
use cfsf_core::{Cfsf, CfsfConfig, DegradeLevel};

fn model() -> Arc<Cfsf> {
    let d = cf_data::SyntheticConfig::small().generate();
    Arc::new(Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap())
}

fn spawn_shards(model: &Arc<Cfsf>, n: u32) -> Vec<ShardServer> {
    (0..n)
        .map(|i| {
            ShardServer::bind(
                "127.0.0.1:0",
                cf_serve::ModelHandle::fixed(Arc::clone(model)),
                ShardOptions {
                    shard_id: i,
                    server: ServerOptions::default(),
                },
            )
            .unwrap()
        })
        .collect()
}

/// Router config tuned for tests: small timeouts so a dead shard is
/// detected in milliseconds, not seconds.
fn fast_cfg(shards: &[ShardServer]) -> RouterConfig {
    RouterConfig {
        shards: shards.iter().map(|s| s.local_addr().to_string()).collect(),
        client: ClientOptions {
            connect_timeout: Duration::from_millis(300),
            io_timeout: Duration::from_millis(100),
            request_deadline: Duration::from_secs(2),
        },
        max_in_flight_per_shard: 64,
        retries: 1,
        backoff: Duration::from_millis(5),
        down_cooldown: Duration::from_millis(300),
    }
}

fn counter(name: &str) -> u64 {
    cf_obs::global().counter(name).get()
}

fn degrade_total() -> u64 {
    counter("online.degrade.user_mean") + counter("online.degrade.global_mean")
}

#[test]
fn shard_answers_bit_for_bit() {
    let model = model();
    let shard = ShardServer::bind(
        "127.0.0.1:0",
        cf_serve::ModelHandle::fixed(Arc::clone(&model)),
        ShardOptions {
            shard_id: 7,
            server: ServerOptions::default(),
        },
    )
    .unwrap();
    let mut client = ShardClient::connect(shard.local_addr(), ClientOptions::default()).unwrap();

    match client.request(&Request::Health).unwrap() {
        Response::Health(h) => {
            assert_eq!(h.shard_id, 7);
            assert_eq!(h.num_users, model.matrix().num_users() as u64);
            assert_eq!(h.num_items, model.matrix().num_items() as u64);
        }
        other => panic!("health answered {other:?}"),
    }

    match client.request(&Request::Profile).unwrap() {
        Response::Profile(p) => {
            assert_eq!(p.user_means.len(), model.matrix().num_users());
            assert_eq!(
                p.global_mean.to_bits(),
                model.matrix().global_mean().to_bits()
            );
        }
        other => panic!("profile answered {other:?}"),
    }

    let users = model.matrix().num_users() as u32;
    let items = model.matrix().num_items() as u32;
    for user in 0..users.min(10) {
        for item in (0..items).step_by(3) {
            let local = model
                .predict_with_breakdown(UserId::new(user), ItemId::new(item))
                .unwrap();
            match client.request(&Request::predict(user, item)).unwrap() {
                Response::Prediction(p) => {
                    assert_eq!(p.fused.to_bits(), local.fused.to_bits());
                    assert_eq!(p.level, local.level.code());
                    assert_eq!(p.fallback, local.used_fallback);
                }
                other => panic!("predict answered {other:?}"),
            }
        }
        let local = model.recommend_top_n(UserId::new(user), 5);
        match client
            .request(&Request::recommend_top_n(user, 5, 0, u32::MAX))
            .unwrap()
        {
            Response::TopN(remote) => {
                let local: Vec<(u32, u64)> =
                    local.iter().map(|(i, s)| (i.raw(), s.to_bits())).collect();
                let remote: Vec<(u32, u64)> =
                    remote.iter().map(|(i, s)| (*i, s.to_bits())).collect();
                assert_eq!(remote, local);
            }
            other => panic!("recommend answered {other:?}"),
        }
    }

    // Out-of-range ids get a typed error, not a closed connection: the
    // same client keeps working afterwards.
    match client.request(&Request::predict(users + 1000, 0)).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, cf_serve::frame::ERR_OUT_OF_RANGE),
        other => panic!("out-of-range predict answered {other:?}"),
    }
    assert!(matches!(
        client.request(&Request::Health).unwrap(),
        Response::Health(_)
    ));

    shard.shutdown();
}

#[test]
fn shard_batch_answers_match_in_process_breakdowns_bit_for_bit() {
    let model = model();
    let shard = ShardServer::bind(
        "127.0.0.1:0",
        cf_serve::ModelHandle::fixed(Arc::clone(&model)),
        ShardOptions::default(),
    )
    .unwrap();
    let mut client = ShardClient::connect(shard.local_addr(), ClientOptions::default()).unwrap();

    let users = model.matrix().num_users() as u32;
    let items = model.matrix().num_items() as u32;
    // Deliberately shuffled order with out-of-range pairs mixed in: the
    // shard strip-sorts internally but must answer in request order, with
    // unpredictable pairs as None elements, not errors.
    let pairs: Vec<(u32, u32)> = (0..200u32)
        .map(|k| ((k.wrapping_mul(37) + 11) % (users + 2), (k * 13) % items))
        .chain([(users + 999, 0), (0, items + 999)])
        .collect();

    let served = client.predict_batch(pairs.clone()).unwrap();
    assert_eq!(served.len(), pairs.len());
    for (k, (&(u, i), remote)) in pairs.iter().zip(&served).enumerate() {
        let local = model.predict_with_breakdown(UserId::new(u), ItemId::new(i));
        match (remote, local) {
            (Some(r), Some(l)) => {
                assert_eq!(r.fused.to_bits(), l.fused.to_bits(), "pair {k}");
                assert_eq!(r.level, l.level.code(), "pair {k}");
                assert_eq!(r.fallback, l.used_fallback, "pair {k}");
            }
            (None, None) => {}
            other => panic!("pair {k} ({u},{i}): served vs local disagree: {other:?}"),
        }
    }
    // The same client keeps working after a batch.
    assert!(matches!(
        client.request(&Request::Health).unwrap(),
        Response::Health(_)
    ));

    shard.shutdown();
}

#[test]
fn router_matches_local_model_bit_for_bit() {
    let model = model();
    let shards = spawn_shards(&model, 2);
    let router = Router::connect(fast_cfg(&shards)).unwrap();

    let users = model.matrix().num_users() as u32;
    let items = model.matrix().num_items() as u32;
    for user in 0..users.min(12) {
        for item in (0..items).step_by(5) {
            let local = model
                .predict_with_breakdown(UserId::new(user), ItemId::new(item))
                .unwrap();
            let p = router.predict(user, item).unwrap();
            assert_eq!(p.fused.to_bits(), local.fused.to_bits());
            assert_eq!(p.level, local.level);
            assert_eq!(p.fallback, local.used_fallback);
            assert_eq!(p.shard, Some(shard_for_user(user, 2)));
        }
        // Scatter-gather over the stripes merges to exactly the
        // single-process top-N.
        let local: Vec<(u32, u64)> = model
            .recommend_top_n(UserId::new(user), 7)
            .iter()
            .map(|(i, s)| (i.raw(), s.to_bits()))
            .collect();
        let remote = router.recommend_top_n(user, 7).unwrap();
        assert!(remote.complete);
        let remote: Vec<(u32, u64)> = remote
            .items
            .iter()
            .map(|(i, s)| (*i, s.to_bits()))
            .collect();
        assert_eq!(remote, local);
    }

    assert!(router.predict(users + 1, 0).is_none());
    assert!(router.recommend_top_n(users + 1, 5).is_none());
    assert_eq!(counter("router.request_errors"), 0);

    for s in shards {
        s.shutdown();
    }
}

#[test]
fn dead_shard_degrades_and_never_errors() {
    let model = model();
    let mut shards = spawn_shards(&model, 2);
    let router = Router::connect(fast_cfg(&shards)).unwrap();
    let users = model.matrix().num_users() as u32;

    // Kill shard 1; its users must degrade to the fallback ladder, with
    // zero router-visible errors.
    let dead = shards.remove(1);
    dead.shutdown();

    let degrade_before = degrade_total();
    let fallback_before = counter("router.fallback_served");
    let mut dead_users = 0u32;
    for user in 0..users {
        let owner = shard_for_user(user, 2);
        let p = router.predict(user, 0).unwrap();
        if owner == 1 {
            dead_users += 1;
            assert!(p.fallback, "user {user} on the dead shard must degrade");
            assert!(
                matches!(p.level, DegradeLevel::UserMean | DegradeLevel::GlobalMean),
                "user {user} got {:?}",
                p.level
            );
            assert_eq!(p.shard, None);
            assert!(p.fused.is_finite());
        } else {
            // Users on the surviving shard are untouched: exact answers.
            let local = model
                .predict_with_breakdown(UserId::new(user), ItemId::new(0))
                .unwrap();
            assert_eq!(p.fused.to_bits(), local.fused.to_bits());
            assert_eq!(p.shard, Some(0));
        }
    }
    assert!(dead_users > 0, "hash should place some users on shard 1");
    assert!(
        degrade_total() >= degrade_before + u64::from(dead_users),
        "every dead-shard user must bump online.degrade.*"
    );
    assert!(counter("router.fallback_served") >= fallback_before + u64::from(dead_users));

    // Recommend still answers from the surviving stripe: partial,
    // ordered, never an error.
    let partial_before = counter("router.recommend.partial");
    let r = router.recommend_top_n(0, 5).unwrap();
    assert!(!r.complete);
    assert!(!r.items.is_empty(), "surviving stripe must contribute");
    assert!(r
        .items
        .windows(2)
        .all(|w| w[0].1 >= w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)));
    assert!(counter("router.recommend.partial") > partial_before);

    // The load-shed invariant the whole design exists for:
    assert_eq!(counter("router.request_errors"), 0);

    let (total, up) = router.shards_up();
    assert_eq!(total, 2);
    assert_eq!(up, 1);

    for s in shards {
        s.shutdown();
    }
}

#[test]
fn admission_bound_sheds_to_fallback() {
    let model = model();
    let shards = spawn_shards(&model, 1);
    let mut cfg = fast_cfg(&shards);
    // A zero bound sheds every request: the pathological limit of
    // admission control, and the easy way to test the shed path without
    // racing real traffic.
    cfg.max_in_flight_per_shard = 0;
    let router = Router::connect(cfg).unwrap();

    let shed_before = counter("router.shed_busy");
    let p = router.predict(0, 0).unwrap();
    assert!(p.fallback);
    assert!(matches!(
        p.level,
        DegradeLevel::UserMean | DegradeLevel::GlobalMean
    ));
    assert!(counter("router.shed_busy") > shed_before);
    assert_eq!(counter("router.request_errors"), 0);

    for s in shards {
        s.shutdown();
    }
}

#[test]
fn router_front_speaks_the_shard_protocol() {
    let model = model();
    let shards = spawn_shards(&model, 2);
    let router = Arc::new(Router::connect(fast_cfg(&shards)).unwrap());
    let front =
        RouterServer::bind("127.0.0.1:0", Arc::clone(&router), ServerOptions::default()).unwrap();

    // A client cannot tell the router from a shard: same frames, same
    // answers — and the health frame marks the front tier.
    let mut client = ShardClient::connect(front.local_addr(), ClientOptions::default()).unwrap();
    match client.request(&Request::Health).unwrap() {
        Response::Health(h) => {
            assert_eq!(h.shard_id, u32::MAX);
            assert_eq!(h.num_users, model.matrix().num_users() as u64);
        }
        other => panic!("health answered {other:?}"),
    }

    for user in 0..4u32 {
        let local = model
            .predict_with_breakdown(UserId::new(user), ItemId::new(1))
            .unwrap();
        match client.request(&Request::predict(user, 1)).unwrap() {
            Response::Prediction(p) => assert_eq!(p.fused.to_bits(), local.fused.to_bits()),
            other => panic!("predict answered {other:?}"),
        }
        let local: Vec<(u32, u64)> = model
            .recommend_top_n(UserId::new(user), 3)
            .iter()
            .map(|(i, s)| (i.raw(), s.to_bits()))
            .collect();
        match client
            .request(&Request::recommend_top_n(user, 3, 0, u32::MAX))
            .unwrap()
        {
            Response::TopN(remote) => {
                let remote: Vec<(u32, u64)> =
                    remote.iter().map(|(i, s)| (*i, s.to_bits())).collect();
                assert_eq!(remote, local);
            }
            other => panic!("recommend answered {other:?}"),
        }
    }

    front.shutdown();
    for s in shards {
        s.shutdown();
    }
}
