//! A blocking client for the CFSF wire protocol: one connection, one
//! request in flight, explicit timeouts everywhere. The router composes
//! these into pools; tests and tools use one directly.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::frame::{self, FrameError, Request, Response};

/// Timeouts for one client connection.
#[derive(Debug, Clone, Copy)]
pub struct ClientOptions {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-read/write socket timeout.
    pub io_timeout: Duration,
    /// End-to-end budget for one request (send + serve + receive).
    pub request_deadline: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(250),
            request_deadline: Duration::from_secs(5),
        }
    }
}

/// A connected protocol client. Dropping it closes the connection.
pub struct ShardClient {
    stream: TcpStream,
    opts: ClientOptions,
}

impl ShardClient {
    /// Connects to `addr` within the connect timeout and hardens the
    /// stream (blocking mode + io timeouts).
    pub fn connect(addr: impl ToSocketAddrs, opts: ClientOptions) -> std::io::Result<Self> {
        // ToSocketAddrs can yield several candidates; try each within
        // the budget, keeping the last error.
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, opts.connect_timeout) {
                Ok(stream) => {
                    cf_obs::net::harden(&stream, opts.io_timeout)?;
                    return Ok(Self { stream, opts });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address to connect to")
        }))
    }

    /// Sends `req` and waits for the answer within the request deadline.
    /// Any error leaves the connection in an unknown framing state — the
    /// caller must drop this client and reconnect.
    pub fn request(&mut self, req: &Request) -> Result<Response, FrameError> {
        Ok(self.request_traced(req)?.0)
    }

    /// [`ShardClient::request`] that also surfaces the remote spans the
    /// server shipped back on the response frame — the router stitches
    /// these into its own trace under the propagated trace id.
    pub fn request_traced(
        &mut self,
        req: &Request,
    ) -> Result<(Response, Vec<cf_obs::trace::RemoteSpan>), FrameError> {
        frame::write_request(&mut self.stream, req)?;
        frame::read_response_with_spans(
            &mut self.stream,
            self.opts.request_deadline,
            Instant::now() + self.opts.request_deadline,
        )
    }

    /// Typed [`Request::PredictBatch`]: one frame out, one answer per
    /// pair back, in request order. Any other response kind (including a
    /// server-side error frame) is a [`FrameError::Malformed`].
    pub fn predict_batch(
        &mut self,
        pairs: Vec<(u32, u32)>,
    ) -> Result<Vec<Option<crate::frame::WirePrediction>>, FrameError> {
        match self.request(&Request::predict_batch(pairs))? {
            Response::Predictions(preds) => Ok(preds),
            Response::Error { .. } => Err(FrameError::Malformed("server rejected the batch")),
            _ => Err(FrameError::Malformed("unexpected response kind for batch")),
        }
    }
}
