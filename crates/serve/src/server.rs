//! The frame-serving TCP loop and the model shard built on it.
//!
//! [`FrameServer`] is the transport: a nonblocking accept loop polling a
//! stop flag (the same shape as `cf_obs::serve`, hardened the same way —
//! accepted streams go back to blocking mode with timeouts armed before
//! the first read), one thread per connection with a hard connection
//! cap, and per-connection frame loops that answer every decodable
//! request and close on protocol errors.
//!
//! [`ShardServer`] plugs a loaded [`Cfsf`] model into that transport:
//! `predict` / `predict_batch` / `recommend_top_n` / `health` /
//! `profile` frames answered straight from the model, bit-for-bit with
//! the in-process API (batches run through the strip-sorted
//! [`Cfsf::predict_batch_with_breakdown`] engine). The
//! router front tier reuses the same transport with its own handler
//! (see [`crate::router`]), so both tiers speak the identical protocol
//! and fix socket bugs in exactly one place.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cf_matrix::{ItemId, UserId};

use crate::frame::{
    self, HealthInfo, ReadOutcome, Request, Response, WirePrediction, WireProfile, WireStats,
    ERR_BUSY, ERR_OUT_OF_RANGE,
};
use crate::live::ModelHandle;

/// How long the accept loop sleeps between polls of the stop flag.
const POLL: Duration = Duration::from_millis(10);

/// Tuning for a frame server.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Per-read/write socket timeout; also the idle tick between stop
    /// flag polls on a quiet connection.
    pub io_timeout: Duration,
    /// Budget for one frame to finish arriving once its first byte has.
    pub frame_deadline: Duration,
    /// Hard cap on concurrently served connections; excess connections
    /// get an `ERR_BUSY` error frame and are closed.
    pub max_connections: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            io_timeout: Duration::from_millis(250),
            frame_deadline: Duration::from_secs(2),
            max_connections: 64,
        }
    }
}

/// What the per-connection loop should do after one request.
pub(crate) enum ConnAction {
    /// Answer written; keep the connection for the next frame.
    Continue,
    /// Close the connection (injected fault or handler decision).
    #[cfg_attr(not(feature = "faultinject"), allow(dead_code))]
    Close,
}

/// A request handler: maps one decoded request to one response.
/// `Send + Sync` because connections are served on their own threads.
pub(crate) trait Handler: Send + Sync + 'static {
    fn handle(&self, req: Request) -> Response;
    /// Name used for the obs counters (`serve.shard.*` / `router.front.*`).
    fn bump(&self, ok: bool);
    /// Post-response hook; the shard's fault injection lives here.
    fn after_response(&self) -> ConnAction {
        ConnAction::Continue
    }
}

/// A running frame server; dropping the handle stops and joins it.
pub struct FrameServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl FrameServer {
    pub(crate) fn bind(
        addr: impl ToSocketAddrs,
        opts: ServerOptions,
        handler: Arc<dyn Handler>,
        thread_name: &str,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = std::thread::Builder::new()
            .name(thread_name.to_string())
            .spawn({
                let stop = Arc::clone(&stop);
                let conn_threads = Arc::clone(&conn_threads);
                move || accept_loop(listener, &stop, &opts, &handler, &conn_threads)
            })?;
        Ok(Self {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The actually-bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the server to stop and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let threads = {
            let mut guard = self
                .conn_threads
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    stop: &Arc<AtomicBool>,
    opts: &ServerOptions,
    handler: &Arc<dyn Handler>,
    conn_threads: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if cf_obs::net::harden(&stream, opts.io_timeout).is_err() {
                    cf_obs::counter!("serve.conn_errors").inc();
                    continue;
                }
                // Admission at the door: beyond the cap the server sheds
                // with an explicit busy frame instead of queueing the
                // connection into timeout purgatory.
                if active.load(Ordering::Relaxed) >= opts.max_connections {
                    cf_obs::counter!("serve.conns_rejected").inc();
                    let _ = frame::write_response(
                        &mut stream,
                        &Response::Error {
                            code: ERR_BUSY,
                            message: "server at connection limit".into(),
                        },
                    );
                    continue;
                }
                cf_obs::counter!("serve.conns_accepted").inc();
                active.fetch_add(1, Ordering::Relaxed);
                let spawned = std::thread::Builder::new()
                    .name("cf-serve-conn".into())
                    .spawn({
                        let stop = Arc::clone(stop);
                        let handler = Arc::clone(handler);
                        let active = Arc::clone(&active);
                        let opts = opts.clone();
                        move || {
                            if connection_loop(&mut stream, &stop, &opts, handler.as_ref()).is_err()
                            {
                                cf_obs::counter!("serve.conn_errors").inc();
                            }
                            active.fetch_sub(1, Ordering::Relaxed);
                        }
                    });
                match spawned {
                    Ok(t) => {
                        let mut guard = conn_threads
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        // Reap finished threads so the registry doesn't
                        // grow with connection churn.
                        guard.retain(|t| !t.is_finished());
                        guard.push(t);
                    }
                    Err(_) => {
                        active.fetch_sub(1, Ordering::Relaxed);
                        cf_obs::counter!("serve.conn_errors").inc();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => {
                cf_obs::counter!("serve.accept_errors").inc();
                std::thread::sleep(POLL);
            }
        }
    }
}

/// Serves frames on one hardened connection until EOF, a protocol error,
/// or shutdown. Decodable requests always get an answer; framing errors
/// get a best-effort error frame and close the connection (a desynced
/// byte stream cannot be trusted for another frame).
fn connection_loop(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    opts: &ServerOptions,
    handler: &dyn Handler,
) -> Result<(), crate::frame::FrameError> {
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match frame::read_request(stream, opts.frame_deadline) {
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Eof) => return Ok(()),
            Ok(ReadOutcome::Frame(req)) => {
                // Cross-process tracing happens at the transport layer so
                // every handler gets it for free: a request carrying a
                // trace context is dispatched under remote adoption, and
                // the spans its handling completed ship back on the
                // response frame for the origin to stitch.
                let (resp, spans) = match req.trace_context() {
                    Some(ctx) => {
                        let guard = cf_obs::trace::begin_remote(ctx);
                        let resp = handler.handle(req);
                        (resp, guard.finish())
                    }
                    None => (handler.handle(req), Vec::new()),
                };
                handler.bump(!matches!(resp, Response::Error { .. }));
                match handler.after_response() {
                    ConnAction::Close => return Ok(()),
                    ConnAction::Continue => {}
                }
                frame::write_response_with_spans(stream, &resp, &spans)?;
            }
            Err(crate::frame::FrameError::Io(e)) => return Err(crate::frame::FrameError::Io(e)),
            Err(e) => {
                // Protocol-level garbage: tell the peer why, then drop.
                let _ = frame::write_response(
                    stream,
                    &Response::Error {
                        code: crate::frame::ERR_BAD_REQUEST,
                        message: e.to_string(),
                    },
                );
                return Err(e);
            }
        }
    }
}

// --- the model shard ---------------------------------------------------

/// Identity and limits for one model shard process.
#[derive(Debug, Clone, Default)]
pub struct ShardOptions {
    /// Operator-assigned shard id, reported in health frames and logs.
    pub shard_id: u32,
    /// Transport tuning.
    pub server: ServerOptions,
}

struct ShardHandler {
    handle: ModelHandle,
    shard_id: u32,
}

impl ShardHandler {
    fn health(&self) -> Response {
        let (model, generation) = self.handle.load_with_generation();
        Response::Health(HealthInfo {
            shard_id: self.shard_id,
            num_users: model.matrix().num_users() as u64,
            num_items: model.matrix().num_items() as u64,
            generation,
        })
    }

    fn profile(&self) -> Response {
        let (model, generation) = self.handle.load_with_generation();
        let m = model.matrix();
        let scale = m.scale();
        Response::Profile(WireProfile {
            scale_min: scale.min,
            scale_max: scale.max,
            global_mean: m.global_mean(),
            num_items: m.num_items() as u64,
            user_means: m.user_means().to_vec(),
            generation,
        })
    }

    fn predict(&self, user: u32, item: u32) -> Response {
        match self
            .handle
            .load()
            .predict_with_breakdown(UserId::new(user), ItemId::new(item))
        {
            Some(b) => Response::Prediction(WirePrediction {
                fused: b.fused,
                level: b.level.code(),
                fallback: b.used_fallback,
            }),
            None => Response::Error {
                code: ERR_OUT_OF_RANGE,
                message: format!("user {user} or item {item} outside the model"),
            },
        }
    }

    fn predict_batch(&self, pairs: &[(u32, u32)]) -> Response {
        let reqs: Vec<(UserId, ItemId)> = pairs
            .iter()
            .map(|&(u, i)| (UserId::new(u), ItemId::new(i)))
            .collect();
        // One load for the whole batch: every pair is answered by the
        // same generation even if a refresh publishes mid-batch. The
        // batch engine strip-sorts internally and answers in request
        // order; unpredictable pairs come back as None elements instead
        // of failing the whole frame.
        let preds = self
            .handle
            .load()
            .predict_batch_with_breakdown(&reqs, None)
            .into_iter()
            .map(|b| {
                b.map(|b| WirePrediction {
                    fused: b.fused,
                    level: b.level.code(),
                    fallback: b.used_fallback,
                })
            })
            .collect();
        Response::Predictions(preds)
    }

    fn recommend(&self, user: u32, n: u32, item_start: u32, item_end: u32) -> Response {
        let model = self.handle.load();
        if (user as usize) >= model.matrix().num_users() {
            return Response::Error {
                code: ERR_OUT_OF_RANGE,
                message: format!("user {user} outside the model"),
            };
        }
        let recs =
            model.recommend_top_n_in_range(UserId::new(user), n as usize, item_start..item_end);
        Response::TopN(recs.into_iter().map(|(i, s)| (i.raw(), s)).collect())
    }

    fn stats(&self) -> Response {
        let (_, generation) = self.handle.load_with_generation();
        Response::Stats(WireStats {
            shard_id: self.shard_id,
            generation,
            snapshot: cf_obs::merge::MergeSnapshot::of(cf_obs::global()).to_bytes(),
        })
    }
}

impl Handler for ShardHandler {
    fn handle(&self, req: Request) -> Response {
        cf_obs::time_scope!("serve.shard.request_ns");
        match req {
            Request::Health => self.health(),
            Request::Profile => self.profile(),
            Request::Stats => self.stats(),
            Request::Predict { user, item, .. } => self.predict(user, item),
            Request::PredictBatch { pairs, .. } => self.predict_batch(&pairs),
            Request::RecommendTopN {
                user,
                n,
                item_start,
                item_end,
                ..
            } => self.recommend(user, n, item_start, item_end),
        }
    }

    fn bump(&self, ok: bool) {
        cf_obs::counter!("serve.shard.requests").inc();
        if ok {
            cf_obs::counter!("serve.shard.responses.ok").inc();
        } else {
            cf_obs::counter!("serve.shard.responses.error").inc();
        }
    }

    fn after_response(&self) -> ConnAction {
        #[cfg(feature = "faultinject")]
        {
            // Chaos hook: die mid-request — the response is computed but
            // never written, modeling a shard crashing under load. The
            // router must absorb this as a retry/failover, never an error.
            if cf_faultinject::fires("serve.shard.drop_conn") {
                cf_obs::counter!("serve.shard.injected.drop_conn").inc();
                return ConnAction::Close;
            }
        }
        ConnAction::Continue
    }
}

/// A running model shard: a [`FrameServer`] answering requests through a
/// [`ModelHandle`] — fixed for the classic static deployment, or backed
/// by a live generation cell so a self-healing refresh swaps models under
/// the server with zero pause.
pub struct ShardServer {
    inner: FrameServer,
}

impl ShardServer {
    /// Binds `addr` (port `0` picks a free one) and serves whatever
    /// generation `handle` points at, request by request.
    pub fn bind(
        addr: impl ToSocketAddrs,
        handle: ModelHandle,
        opts: ShardOptions,
    ) -> std::io::Result<Self> {
        let handler = Arc::new(ShardHandler {
            handle,
            shard_id: opts.shard_id,
        });
        // Register the counters up front so even an idle shard's metrics
        // snapshot carries the names (absent vs zero is ambiguous).
        cf_obs::counter!("serve.shard.requests").add(0);
        cf_obs::counter!("serve.shard.responses.ok").add(0);
        cf_obs::counter!("serve.shard.responses.error").add(0);
        cf_obs::gauge!("serve.shard.id").set(i64::from(opts.shard_id));
        let inner = FrameServer::bind(addr, opts.server, handler, "cf-serve-shard")?;
        Ok(Self { inner })
    }

    /// The actually-bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Stops the accept loop and joins every connection thread.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}
