//! The router front tier: hashes users across N shard processes,
//! bounds the work in flight per shard, retries transient failures with
//! backoff, and — when a shard is down or saturated — **load-sheds onto
//! the degradation ladder** instead of queueing to death: the affected
//! user gets a user-mean/global-mean answer from the router's local
//! fallback table, served from the same `online.degrade.*` counters the
//! in-process ladder uses, and the request never errors.
//!
//! Routing:
//!
//! - `predict(user, item)` goes to the user's **owning shard**
//!   (`shard_for_user`). Deliberately no cross-shard failover: in a
//!   capacity-planned fleet the other shards have their own users' load,
//!   and redirecting a dead shard's traffic at them turns one failure
//!   into a cascade. A dead shard's users degrade — bounded blast
//!   radius — until it returns.
//! - `recommend_top_n(user, n)` scatter-gathers: the item space is cut
//!   into one fixed stripe per configured shard, each live shard scores
//!   its stripe ([`Cfsf::recommend_top_n_in_range`]), and the router
//!   merges with [`cfsf_core::topk::top_k_by_score`] — the same
//!   comparator the model uses, so with all shards up the merged answer
//!   is bit-for-bit the single-process answer. A dead shard's stripe is
//!   dropped and the (still valid, still ordered) partial result is
//!   returned, counted in `router.recommend.partial`.
//!
//! A shard that exhausts its retries is marked **down** for a cooldown;
//! during it the router sheds straight to the fallback table without
//! touching the socket, so a dead shard costs one failed exchange per
//! cooldown, not one per request.

use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

use cf_matrix::RatingScale;
use cfsf_core::DegradeLevel;

use crate::client::{ClientOptions, ShardClient};
use crate::frame::{FrameError, HealthInfo, Request, Response, WireProfile, WireStats};

/// Tuning for the router tier.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Shard addresses; index order defines stripe ownership, so every
    /// router in a fleet must list shards in the same order.
    pub shards: Vec<String>,
    /// Per-connection timeouts for shard traffic.
    pub client: ClientOptions,
    /// Bounded queue per shard: requests beyond this many in flight are
    /// shed onto the fallback ladder instead of piling onto a struggling
    /// shard.
    pub max_in_flight_per_shard: usize,
    /// Reconnect-and-resend attempts after the first failure.
    pub retries: u32,
    /// Sleep between attempts (grows linearly per attempt).
    pub backoff: Duration,
    /// How long a shard that exhausted its retries stays marked down
    /// before the router probes it again.
    pub down_cooldown: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            shards: Vec::new(),
            client: ClientOptions::default(),
            max_in_flight_per_shard: 64,
            retries: 1,
            backoff: Duration::from_millis(50),
            down_cooldown: Duration::from_secs(1),
        }
    }
}

/// Why the router could not use a shard for one request.
enum ShardUnavailable {
    /// Marked down and inside its cooldown.
    Down,
    /// At its in-flight bound (admission control shed).
    Busy,
    /// All attempts failed; the shard has just been marked down.
    Failed,
}

/// The compact model summary the router serves fallback answers from:
/// the bottom rungs of the degradation ladder need only means and the
/// scale, not the weight planes. Carries the model generation it was
/// built from so a self-healing shard fleet can tell the router its
/// table went stale (see [`Router::refresh_profile_if_stale`]).
struct FallbackTable {
    scale: RatingScale,
    global_mean: f64,
    user_means: Vec<f64>,
    num_items: u64,
    generation: u64,
}

impl FallbackTable {
    fn from_profile(p: WireProfile) -> Self {
        Self {
            scale: RatingScale {
                min: p.scale_min,
                max: p.scale_max,
            },
            global_mean: p.global_mean,
            user_means: p.user_means,
            num_items: p.num_items,
            generation: p.generation,
        }
    }
}

/// A tiny xoshiro256**-style generator seeded through splitmix64 — the
/// same mixer [`shard_for_user`] uses — so retry backoff can be
/// jittered without pulling in a randomness dependency. One instance
/// per shard slot, seeded from the slot's address and index, so two
/// routers (or two slots) that fail at the same instant do not sleep
/// in lockstep and re-stampede the shard together.
struct JitterRng {
    state: Mutex<[u64; 4]>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl JitterRng {
    fn seeded(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: Mutex::new([
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ]),
        }
    }

    /// Seed from a shard slot's identity: the address bytes folded with
    /// the slot index, then expanded through splitmix64.
    fn for_slot(addr: &str, index: usize) -> Self {
        let folded = addr.bytes().fold(index as u64 + 1, |h, b| {
            h.wrapping_mul(131).wrapping_add(u64::from(b))
        });
        Self::seeded(folded)
    }

    fn next_u64(&self) -> u64 {
        let mut s = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Linear backoff plus bounded jitter: `base * attempt` stretched by a
/// uniform draw in `[0, base * attempt / 2]`. Pure in the draw so tests
/// can pin the bounds and the de-correlation without sleeping.
fn jittered_backoff(base: Duration, attempt: u32, draw: u64) -> Duration {
    let linear = base.saturating_mul(attempt);
    let cap = (linear.as_nanos() / 2).min(u128::from(u64::MAX)) as u64;
    let jitter = if cap == 0 { 0 } else { draw % (cap + 1) };
    linear.saturating_add(Duration::from_nanos(jitter))
}

/// One prediction answered by the router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterPrediction {
    /// The prediction (clamped to the model's scale).
    pub fused: f64,
    /// The degradation rung it was served from.
    pub level: DegradeLevel,
    /// Whether the rung is in the ladder's fallback region.
    pub fallback: bool,
    /// Index of the shard that answered; `None` means the router's own
    /// fallback table did (shard down or shed).
    pub shard: Option<usize>,
}

/// One top-N answer from the router.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterTopN {
    /// `(item, score)`, best first — the usual recommend shape.
    pub items: Vec<(u32, f64)>,
    /// `false` when at least one stripe was dropped because its shard
    /// was unavailable: the list is valid and ordered but may miss items
    /// a dead shard would have scored.
    pub complete: bool,
}

struct ShardSlot {
    addr: String,
    /// Idle pooled connections, reused across requests.
    pool: Mutex<Vec<ShardClient>>,
    in_flight: AtomicUsize,
    down_until: Mutex<Option<Instant>>,
    /// Per-slot backoff jitter source (see [`JitterRng`]).
    jitter: JitterRng,
}

/// Decrements the in-flight count even if the request path panics.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The router: see the module docs for the routing and shedding model.
pub struct Router {
    cfg: RouterConfig,
    slots: Vec<ShardSlot>,
    /// Behind a `RwLock` so [`Router::refresh_profile_if_stale`] can
    /// swap in a newer generation's table while requests keep shedding
    /// onto the old one — the router-side mirror of the shards' RCU
    /// generation cell.
    fallback: RwLock<FallbackTable>,
    /// Mirror of `fallback.generation`, readable without the lock so
    /// the staleness probe and the health frame stay off the read path.
    profile_generation: AtomicU64,
    num_users: u64,
    num_items: u64,
}

/// Which shard owns `user` out of `shards` (splitmix64 of the id — the
/// id space is dense, so modulo alone would stripe users pathologically
/// across capacity changes). Exposed so tests and operators can tell
/// which users a given shard owns.
pub fn shard_for_user(user: u32, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut z = u64::from(user).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

/// Errors establishing the router (runtime requests never error — they
/// degrade).
#[derive(Debug)]
pub enum RouterError {
    /// No shard addresses configured.
    NoShards,
    /// A shard could not be reached or answered the wrong frame.
    Unreachable(String, String),
    /// Shards disagree on the model shape — a fleet serving different
    /// models would silently mix predictions.
    ModelMismatch(String),
    /// The fallback profile failed validation.
    BadProfile(String),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoShards => write!(f, "router needs at least one shard address"),
            Self::Unreachable(addr, why) => write!(f, "shard {addr} unreachable: {why}"),
            Self::ModelMismatch(why) => write!(f, "shard model mismatch: {why}"),
            Self::BadProfile(why) => write!(f, "invalid fallback profile: {why}"),
        }
    }
}

impl std::error::Error for RouterError {}

impl Router {
    /// Connects to every configured shard, verifies they serve the same
    /// model shape, and fetches the fallback profile. Startup is strict
    /// (every shard must answer — a fleet booted half-broken should say
    /// so); runtime is lenient (shards may die and return freely).
    pub fn connect(cfg: RouterConfig) -> Result<Self, RouterError> {
        if cfg.shards.is_empty() {
            return Err(RouterError::NoShards);
        }
        let mut shape: Option<HealthInfo> = None;
        let mut profile: Option<WireProfile> = None;
        let mut slots = Vec::with_capacity(cfg.shards.len());
        for (i, addr) in cfg.shards.iter().enumerate() {
            let mut client = ShardClient::connect(addr.as_str(), cfg.client)
                .map_err(|e| RouterError::Unreachable(addr.clone(), e.to_string()))?;
            let health = match client.request(&Request::Health) {
                Ok(Response::Health(h)) => h,
                Ok(other) => {
                    return Err(RouterError::Unreachable(
                        addr.clone(),
                        format!("health probe answered {other:?}"),
                    ))
                }
                Err(e) => return Err(RouterError::Unreachable(addr.clone(), e.to_string())),
            };
            if let Some(first) = shape {
                if (first.num_users, first.num_items) != (health.num_users, health.num_items) {
                    return Err(RouterError::ModelMismatch(format!(
                        "shard {i} ({addr}) serves {}x{}, shard 0 serves {}x{}",
                        health.num_users, health.num_items, first.num_users, first.num_items
                    )));
                }
            } else {
                shape = Some(health);
            }
            if profile.is_none() {
                match client.request(&Request::Profile) {
                    Ok(Response::Profile(p)) => profile = Some(p),
                    Ok(other) => {
                        return Err(RouterError::Unreachable(
                            addr.clone(),
                            format!("profile probe answered {other:?}"),
                        ))
                    }
                    Err(e) => return Err(RouterError::Unreachable(addr.clone(), e.to_string())),
                }
            }
            slots.push(ShardSlot {
                addr: addr.clone(),
                pool: Mutex::new(vec![client]),
                in_flight: AtomicUsize::new(0),
                down_until: Mutex::new(None),
                jitter: JitterRng::for_slot(addr, i),
            });
        }
        let (shape, profile) = match (shape, profile) {
            (Some(s), Some(p)) => (s, p),
            _ => return Err(RouterError::NoShards),
        };
        if profile.user_means.len() as u64 != shape.num_users
            || profile.num_items != shape.num_items
        {
            return Err(RouterError::BadProfile(format!(
                "profile covers {} users / {} items, shards serve {} / {}",
                profile.user_means.len(),
                profile.num_items,
                shape.num_users,
                shape.num_items
            )));
        }
        if !(profile.scale_min.is_finite()
            && profile.scale_max.is_finite()
            && profile.scale_min < profile.scale_max)
        {
            return Err(RouterError::BadProfile(format!(
                "scale [{}, {}]",
                profile.scale_min, profile.scale_max
            )));
        }
        let profile_generation = profile.generation;
        // Register the router's health counters up front: a snapshot must
        // carry `router.request_errors: 0` explicitly — absent vs zero is
        // exactly the ambiguity the chaos gate cannot afford.
        cf_obs::counter!("router.requests").add(0);
        cf_obs::counter!("router.ok").add(0);
        cf_obs::counter!("router.request_errors").add(0);
        cf_obs::counter!("router.fallback_served").add(0);
        cf_obs::counter!("router.shed_busy").add(0);
        cf_obs::counter!("router.shed_down").add(0);
        cf_obs::counter!("router.shard_io_errors").add(0);
        cf_obs::counter!("router.retries").add(0);
        cf_obs::counter!("router.recommend.partial").add(0);
        cf_obs::counter!("router.profile.refreshed").add(0);
        cf_obs::counter!("router.profile.refresh_errors").add(0);
        cf_obs::gauge!("router.shards").set(cfg.shards.len() as i64);
        cf_obs::gauge!("router.shards_up").set(cfg.shards.len() as i64);
        cf_obs::gauge!("router.profile.generation")
            .set(profile_generation.min(i64::MAX as u64) as i64);

        Ok(Self {
            num_users: shape.num_users,
            num_items: shape.num_items,
            fallback: RwLock::new(FallbackTable::from_profile(profile)),
            profile_generation: AtomicU64::new(profile_generation),
            slots,
            cfg,
        })
    }

    /// Users served by this router's shards.
    pub fn num_users(&self) -> u64 {
        self.num_users
    }

    /// Items in the served model.
    pub fn num_items(&self) -> u64 {
        self.num_items
    }

    /// The fallback profile, re-servable to downstream routers.
    pub fn profile(&self) -> WireProfile {
        let fallback = self
            .fallback
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        WireProfile {
            scale_min: fallback.scale.min,
            scale_max: fallback.scale.max,
            global_mean: fallback.global_mean,
            num_items: fallback.num_items,
            user_means: fallback.user_means.clone(),
            generation: fallback.generation,
        }
    }

    /// The model generation the fallback table was built from.
    pub fn profile_generation(&self) -> u64 {
        self.profile_generation.load(Ordering::Relaxed)
    }

    /// Probes a live shard's health frame and, when the shard reports a
    /// newer model generation than the fallback table was built from,
    /// re-fetches the profile and swaps the table — so a self-healing
    /// fleet's background rebuilds propagate to router fallbacks without
    /// a restart. Returns `true` when the table was refreshed. Cheap
    /// when nothing changed: one pooled health exchange, no profile
    /// transfer.
    pub fn refresh_profile_if_stale(&self) -> bool {
        let cached = self.profile_generation.load(Ordering::Relaxed);
        // Find the first live shard that answers health; skip down ones
        // for free via request_on_shard's cooldown check.
        for (i, _slot) in self.slots.iter().enumerate() {
            let health = match self.request_on_shard(i, &Request::Health) {
                Ok((Response::Health(h), _)) => h,
                _ => continue,
            };
            if health.generation <= cached {
                return false;
            }
            match self.request_on_shard(i, &Request::Profile) {
                Ok((Response::Profile(p), _)) => {
                    if p.user_means.len() as u64 != self.num_users
                        || p.num_items != self.num_items
                        || !(p.scale_min.is_finite()
                            && p.scale_max.is_finite()
                            && p.scale_min < p.scale_max)
                    {
                        // A malformed refresh never replaces a working
                        // table: keep serving the old generation.
                        cf_obs::counter!("router.profile.refresh_errors").inc();
                        return false;
                    }
                    let generation = p.generation;
                    {
                        let mut fallback = self
                            .fallback
                            .write()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        *fallback = FallbackTable::from_profile(p);
                    }
                    self.profile_generation.store(generation, Ordering::Relaxed);
                    cf_obs::counter!("router.profile.refreshed").inc();
                    cf_obs::gauge!("router.profile.generation")
                        .set(generation.min(i64::MAX as u64) as i64);
                    cf_obs::trace::note("router.profile_refreshed");
                    return true;
                }
                _ => {
                    cf_obs::counter!("router.profile.refresh_errors").inc();
                    return false;
                }
            }
        }
        false
    }

    /// Predicts `(user, item)` through the owning shard, degrading to
    /// the fallback table when it is down, saturated, or failing.
    /// `None` only for out-of-range ids — mirroring the in-process API.
    ///
    /// Opens a router-side request trace: the owning-shard exchange is a
    /// span, the propagated context rides the predict frame, and the
    /// shard's completed spans come back stitched under the same trace
    /// id — so `/traces` on the router shows the cross-process tree.
    pub fn predict(&self, user: u32, item: u32) -> Option<RouterPrediction> {
        if u64::from(user) >= self.num_users || u64::from(item) >= self.num_items {
            return None;
        }
        cf_obs::counter!("router.requests").inc();
        cf_obs::time_scope!("router.request_ns");
        let trace_req = cf_obs::trace::begin_request(user, item);
        let shard = shard_for_user(user, self.slots.len());
        // Built after begin_request so the frame captures this trace's
        // context (id allocated eagerly, sampling decision included).
        let req = Request::predict(user, item);
        let result = {
            let _s = cf_obs::trace::span("router.shard_call");
            self.request_on_shard(shard, &req)
        };
        let pred = match result {
            Ok((Response::Prediction(p), spans)) => {
                cf_obs::trace::attach_remote_spans(&format!("shard{shard}"), spans);
                cf_obs::counter!("router.ok").inc();
                let level = DegradeLevel::from_code(p.level).unwrap_or(DegradeLevel::GlobalMean);
                RouterPrediction {
                    fused: p.fused,
                    level,
                    fallback: p.fallback,
                    shard: Some(shard),
                }
            }
            Ok(_) => {
                // Decodable but wrong frame: a confused shard. Absorb it
                // the same way as an I/O failure.
                cf_obs::counter!("router.shard_io_errors").inc();
                self.fallback_predict(user)
            }
            Err(_) => self.fallback_predict(user),
        };
        trace_req.finish(cf_obs::trace::Outcome {
            level: pred.level.as_str(),
            fallback: pred.fallback,
            k_used: 0,
            m_used: 0,
            fused: pred.fused,
        });
        Some(pred)
    }

    /// Top-`n` via scatter-gather over all shard stripes (see module
    /// docs). `None` only for an out-of-range user.
    pub fn recommend_top_n(&self, user: u32, n: u32) -> Option<RouterTopN> {
        self.recommend_top_n_in_range(user, n, 0, u32::MAX)
    }

    /// Stripe-restricted scatter-gather, protocol-complete so a router
    /// can front other routers. `item_end == u32::MAX` means the whole
    /// item space.
    pub fn recommend_top_n_in_range(
        &self,
        user: u32,
        n: u32,
        item_start: u32,
        item_end: u32,
    ) -> Option<RouterTopN> {
        if u64::from(user) >= self.num_users {
            return None;
        }
        cf_obs::counter!("router.requests").inc();
        cf_obs::time_scope!("router.request_ns");
        let trace_req = cf_obs::trace::begin_request(user, u32::MAX);
        let total = self.num_items.min(u64::from(u32::MAX)) as u32;
        let end = item_end.min(total);
        let start = item_start.min(end);
        let shards = self.slots.len() as u32;
        // Fixed stripes over the requested range, one per configured
        // shard — liveness-independent, so results are deterministic.
        // Stripe requests are built here, on the tracing thread, so every
        // frame carries this trace's context; the scatter threads have no
        // trace TLS of their own.
        let span = end - start;
        let stripes: Vec<(usize, Request)> = (0..shards)
            .map(|s| {
                let lo = start + (u64::from(s) * u64::from(span) / u64::from(shards)) as u32;
                let hi = start + (u64::from(s + 1) * u64::from(span) / u64::from(shards)) as u32;
                (s as usize, lo, hi)
            })
            .filter(|&(_, lo, hi)| lo < hi)
            .map(|(s, lo, hi)| (s, Request::recommend_top_n(user, n, lo, hi)))
            .collect();

        let mut complete = true;
        let mut candidates: Vec<(u32, f64)> = Vec::new();
        std::thread::scope(|scope| {
            let scatter_span = cf_obs::trace::span("router.scatter");
            let handles: Vec<_> = stripes
                .into_iter()
                .map(|(s, req)| {
                    let h = scope.spawn(move || match self.request_on_shard(s, &req) {
                        Ok((Response::TopN(items), spans)) => (Some(items), spans),
                        Ok(_) => {
                            cf_obs::counter!("router.shard_io_errors").inc();
                            (None, Vec::new())
                        }
                        Err(_) => (None, Vec::new()),
                    });
                    (s, h)
                })
                .collect();
            for (s, h) in handles {
                match h.join() {
                    Ok((Some(items), spans)) => {
                        // Stitching happens back on the tracing thread:
                        // the scatter threads cannot see this trace's TLS.
                        cf_obs::trace::attach_remote_spans(&format!("shard{s}"), spans);
                        candidates.extend(items);
                    }
                    Ok((None, _)) => complete = false,
                    Err(_) => {
                        // A panicking scatter thread is absorbed like a
                        // dead stripe, never propagated to the caller.
                        complete = false;
                    }
                }
            }
            drop(scatter_span);
        });
        if complete {
            cf_obs::counter!("router.ok").inc();
        } else {
            cf_obs::counter!("router.recommend.partial").inc();
            cf_obs::counter!("router.fallback_served").inc();
            // A partial recommend is a degraded answer: account for it on
            // the ladder operators already watch. The missing stripe's
            // items were effectively served from "nothing", the rung
            // below single-estimator territory.
            DegradeLevel::ClusterSmoothed.record();
        }
        let level = if complete {
            DegradeLevel::Full
        } else {
            DegradeLevel::ClusterSmoothed
        };
        trace_req.finish(cf_obs::trace::Outcome {
            level: level.as_str(),
            fallback: !complete,
            k_used: 0,
            m_used: 0,
            fused: f64::NAN,
        });
        Some(RouterTopN {
            items: cfsf_core::topk::top_k_by_score(n as usize, candidates),
            complete,
        })
    }

    /// Polls every shard's mergeable metrics snapshot (a `Stats` frame
    /// per shard, through the same admission/retry/down-marking path as
    /// serving traffic). Element `i` is `None` when shard `i` is down or
    /// failed the exchange — the fleet aggregator keeps its last good
    /// snapshot in that case.
    pub fn poll_shard_stats(&self) -> Vec<Option<WireStats>> {
        (0..self.slots.len())
            .map(|i| match self.request_on_shard(i, &Request::Stats) {
                Ok((Response::Stats(s), _)) => Some(s),
                _ => None,
            })
            .collect()
    }

    /// Number of shard slots this router fronts.
    pub fn num_shards(&self) -> usize {
        self.slots.len()
    }

    /// Health of the fleet as this router sees it: `(configured, up)`.
    pub fn shards_up(&self) -> (usize, usize) {
        let up = self.slots.iter().filter(|s| !Self::is_down_now(s)).count();
        (self.slots.len(), up)
    }

    fn is_down_now(slot: &ShardSlot) -> bool {
        let guard = slot
            .down_until
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.is_some_and(|t| Instant::now() < t)
    }

    /// One request against one shard with admission control, pooled
    /// connections, retry + backoff, and down-marking. Also returns any
    /// remote spans the shard shipped back on the response frame.
    fn request_on_shard(
        &self,
        shard: usize,
        req: &Request,
    ) -> Result<(Response, Vec<cf_obs::trace::RemoteSpan>), ShardUnavailable> {
        let slot = &self.slots[shard];
        // Down and inside cooldown: shed immediately, zero socket cost.
        {
            let mut guard = slot
                .down_until
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match *guard {
                Some(t) if Instant::now() < t => {
                    drop(guard);
                    cf_obs::counter!("router.shed_down").inc();
                    return Err(ShardUnavailable::Down);
                }
                Some(_) => {
                    // Cooldown over: half-open. Clear the mark and let
                    // this request be the probe.
                    *guard = None;
                }
                None => {}
            }
        }
        // Bounded queue: admission control, not an actual queue — beyond
        // the bound we shed to the ladder rather than add latency to a
        // shard that is already behind.
        if slot.in_flight.fetch_add(1, Ordering::Relaxed) >= self.cfg.max_in_flight_per_shard {
            slot.in_flight.fetch_sub(1, Ordering::Relaxed);
            cf_obs::counter!("router.shed_busy").inc();
            return Err(ShardUnavailable::Busy);
        }
        let _guard = InFlightGuard(&slot.in_flight);

        let mut attempt = 0u32;
        loop {
            let client = {
                let mut pool = slot
                    .pool
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                pool.pop()
            };
            let mut client = match client {
                Some(c) => c,
                None => match ShardClient::connect(slot.addr.as_str(), self.cfg.client) {
                    Ok(c) => c,
                    Err(e) => {
                        if self.note_attempt_failed(&mut attempt, slot, &e.to_string()) {
                            continue;
                        }
                        return Err(ShardUnavailable::Failed);
                    }
                },
            };
            match client.request_traced(req) {
                Ok(resp) => {
                    let mut pool = slot
                        .pool
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    pool.push(client);
                    return Ok(resp);
                }
                Err(e) => {
                    // The connection's framing state is unknown: drop it,
                    // never pool it.
                    drop(client);
                    let why = match &e {
                        FrameError::Io(io) => io.to_string(),
                        other => other.to_string(),
                    };
                    if self.note_attempt_failed(&mut attempt, slot, &why) {
                        continue;
                    }
                    return Err(ShardUnavailable::Failed);
                }
            }
        }
    }

    /// Counts a failed attempt; returns `true` while retries remain
    /// (after the backoff sleep), otherwise marks the shard down.
    fn note_attempt_failed(&self, attempt: &mut u32, slot: &ShardSlot, why: &str) -> bool {
        cf_obs::counter!("router.shard_io_errors").inc();
        *attempt += 1;
        if *attempt <= self.cfg.retries {
            cf_obs::counter!("router.retries").inc();
            // Linear backoff with bounded jitter: slots that fail at the
            // same instant de-correlate their retries instead of
            // re-stampeding the shard in lockstep.
            std::thread::sleep(jittered_backoff(
                self.cfg.backoff,
                *attempt,
                slot.jitter.next_u64(),
            ));
            return true;
        }
        // Out of attempts: mark down for the cooldown and shed.
        {
            let mut guard = slot
                .down_until
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *guard = Some(Instant::now() + self.cfg.down_cooldown);
        }
        // Drain the pool: every pooled connection points at a shard we
        // just declared dead.
        {
            let mut pool = slot
                .pool
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            pool.clear();
        }
        let (_total, up) = self.shards_up();
        cf_obs::gauge!("router.shards_up").set(up as i64);
        cf_obs::trace::note("router.shard_down");
        eprintln!(
            "router: shard {addr} marked down for {cooldown:?}: {why}",
            addr = slot.addr,
            cooldown = self.cfg.down_cooldown,
        );
        false
    }

    /// Serves a prediction from the router-local fallback table — the
    /// user-mean / global-mean rungs of the degradation ladder, the same
    /// rungs (and the same counters) the in-process model bottoms out
    /// on.
    fn fallback_predict(&self, user: u32) -> RouterPrediction {
        cf_obs::counter!("router.fallback_served").inc();
        let fallback = self
            .fallback
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mean = fallback
            .user_means
            .get(user as usize)
            .copied()
            .unwrap_or(f64::NAN);
        let (value, level) = if mean.is_finite() {
            (mean, DegradeLevel::UserMean)
        } else {
            (fallback.global_mean, DegradeLevel::GlobalMean)
        };
        level.record();
        RouterPrediction {
            fused: fallback.scale.clamp(value),
            level,
            fallback: true,
            shard: None,
        }
    }
}

// --- the router as a frame server --------------------------------------

use std::sync::Arc;

use crate::frame::ERR_OUT_OF_RANGE;
use crate::server::{FrameServer, Handler, ServerOptions};

struct RouterHandler {
    router: Arc<Router>,
}

impl Handler for RouterHandler {
    fn handle(&self, req: Request) -> Response {
        match req {
            Request::Health => Response::Health(HealthInfo {
                // u32::MAX marks a front tier, distinguishing it from any
                // operator-assigned shard id.
                shard_id: u32::MAX,
                num_users: self.router.num_users(),
                num_items: self.router.num_items(),
                generation: self.router.profile_generation(),
            }),
            Request::Profile => Response::Profile(self.router.profile()),
            // A router answers stats frames with its *own* registry (the
            // front tier's counters and request histograms), marked with
            // the front-tier id — so stacked routers can aggregate tiers
            // without conflating them with shards.
            Request::Stats => Response::Stats(WireStats {
                shard_id: u32::MAX,
                generation: self.router.profile_generation(),
                snapshot: cf_obs::merge::MergeSnapshot::of(cf_obs::global()).to_bytes(),
            }),
            // The front answers batches pair by pair so each pair gets
            // the full failover/degradation ladder independently; the
            // locality win from strip-sorted batching happens on the
            // shards, which see the per-pair requests of their own users.
            Request::PredictBatch { pairs, .. } => Response::Predictions(
                pairs
                    .into_iter()
                    .map(|(user, item)| {
                        self.router
                            .predict(user, item)
                            .map(|p| crate::frame::WirePrediction {
                                fused: p.fused,
                                level: p.level.code(),
                                fallback: p.fallback,
                            })
                    })
                    .collect(),
            ),
            Request::Predict { user, item, .. } => match self.router.predict(user, item) {
                Some(p) => Response::Prediction(crate::frame::WirePrediction {
                    fused: p.fused,
                    level: p.level.code(),
                    fallback: p.fallback,
                }),
                None => Response::Error {
                    code: ERR_OUT_OF_RANGE,
                    message: format!("user {user} or item {item} outside the model"),
                },
            },
            Request::RecommendTopN {
                user,
                n,
                item_start,
                item_end,
                ..
            } => match self
                .router
                .recommend_top_n_in_range(user, n, item_start, item_end)
            {
                Some(t) => Response::TopN(t.items),
                None => Response::Error {
                    code: ERR_OUT_OF_RANGE,
                    message: format!("user {user} outside the model"),
                },
            },
        }
    }

    fn bump(&self, ok: bool) {
        cf_obs::counter!("router.front.requests").inc();
        if ok {
            cf_obs::counter!("router.front.responses.ok").inc();
        } else {
            // Only out-of-range / malformed requests land here — shard
            // failures degrade, they do not error.
            cf_obs::counter!("router.front.responses.error").inc();
        }
    }
}

/// The router exposed over the same wire protocol the shards speak, so
/// clients cannot tell a router from a shard (and routers can stack).
pub struct RouterServer {
    inner: FrameServer,
}

impl RouterServer {
    /// Binds `addr` and serves `router` to downstream clients.
    pub fn bind(
        addr: impl ToSocketAddrs,
        router: Arc<Router>,
        opts: ServerOptions,
    ) -> std::io::Result<Self> {
        cf_obs::counter!("router.front.requests").add(0);
        cf_obs::counter!("router.front.responses.ok").add(0);
        cf_obs::counter!("router.front.responses.error").add(0);
        let handler = Arc::new(RouterHandler { router });
        let inner = FrameServer::bind(addr, opts, handler, "cf-serve-router")?;
        Ok(Self { inner })
    }

    /// The actually-bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.inner.local_addr()
    }

    /// Stops the accept loop and joins every connection thread.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// The retry schedule two slots would sleep, as durations — pure:
    /// no sockets, no sleeping.
    fn schedule(rng: &JitterRng, base: Duration, attempts: u32) -> Vec<Duration> {
        (1..=attempts)
            .map(|a| jittered_backoff(base, a, rng.next_u64()))
            .collect()
    }

    #[test]
    fn jittered_backoff_stays_within_bounds() {
        let base = Duration::from_millis(50);
        let rng = JitterRng::seeded(7);
        for attempt in 1..=8u32 {
            let linear = base * attempt;
            for _ in 0..64 {
                let d = jittered_backoff(base, attempt, rng.next_u64());
                assert!(d >= linear, "jitter must only stretch the linear backoff");
                assert!(
                    d <= linear + linear / 2,
                    "jitter bounded by half the linear backoff: {d:?} vs {linear:?}"
                );
            }
        }
        // Zero base degenerates to zero sleep, never a panic.
        assert_eq!(
            jittered_backoff(Duration::ZERO, 3, u64::MAX),
            Duration::ZERO
        );
    }

    #[test]
    fn retry_timestamps_decorrelate_across_slots() {
        // Two slots failing at the same instant must not sleep in
        // lockstep: their cumulative retry timestamps diverge. Seeds
        // derive from slot identity, exactly as Router::connect does.
        let base = Duration::from_millis(50);
        let a = JitterRng::for_slot("10.0.0.1:7400", 0);
        let b = JitterRng::for_slot("10.0.0.2:7400", 1);
        let sched_a = schedule(&a, base, 16);
        let sched_b = schedule(&b, base, 16);
        assert_ne!(sched_a, sched_b, "two slots drew identical jitter");
        // Cumulative wake-up times (both slots start failing at t=0)
        // must differ at almost every retry — identical wake-ups are
        // exactly the stampede jitter exists to break.
        let cumulative = |s: &[Duration]| -> Vec<Duration> {
            s.iter()
                .scan(Duration::ZERO, |t, d| {
                    *t += *d;
                    Some(*t)
                })
                .collect()
        };
        let wake_a = cumulative(&sched_a);
        let wake_b = cumulative(&sched_b);
        let collisions = wake_a
            .iter()
            .zip(wake_b.iter())
            .filter(|(x, y)| x == y)
            .count();
        assert!(
            collisions <= 1,
            "{collisions}/16 retry timestamps collide across slots"
        );
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        // Same slot identity → same schedule: failures replay
        // identically under test harnesses and chaos reruns.
        let x = JitterRng::for_slot("127.0.0.1:9000", 2);
        let y = JitterRng::for_slot("127.0.0.1:9000", 2);
        assert_eq!(
            schedule(&x, Duration::from_millis(10), 8),
            schedule(&y, Duration::from_millis(10), 8)
        );
    }
}
