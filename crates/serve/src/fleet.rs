//! Fleet-wide metric aggregation and SLO evaluation for the router tier.
//!
//! The router polls every shard's [`crate::frame::Request::Stats`] frame
//! and decodes the mergeable snapshot each one carries
//! ([`cf_obs::merge::MergeSnapshot`]). Because every process shares the
//! same deterministic histogram bucket boundaries, the merged fleet
//! histogram is *exactly* the bucket-wise sum of the per-shard snapshots
//! — no re-binning, no quantile folding error.
//!
//! [`FleetAggregator`] owns three concerns:
//!
//! - **last-good retention** — a shard that misses a poll keeps its last
//!   decoded snapshot (marked unreachable) so merged totals never step
//!   backwards while a shard restarts,
//! - **scrape splicing** — it implements [`cf_obs::serve::ScrapeExtra`],
//!   so the router's `/metrics` carries merged `cfsf_fleet_*` series and
//!   the same families labelled `shard="N"`, and `/stats.json` gains a
//!   `"fleet"` section with per-shard generations and the merged
//!   snapshot,
//! - **SLO evaluation** — every poll feeds the merged cumulative
//!   snapshot to a [`cf_obs::slo::SloEngine`], whose burn-rate gauges
//!   land in the router's global registry (and therefore on `/metrics`).
//!
//! The aggregator deliberately merges *shard* snapshots only. The
//! router's own registry renders through the normal `/metrics` path, so
//! "merged fleet series == bucket-wise sum of the per-shard scrapes"
//! holds as a testable identity.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cf_obs::merge::MergeSnapshot;
use cf_obs::prom;
use cf_obs::slo::{SloEngine, SloSpec, DEFAULT_WINDOWS};
use cf_obs::sync::{Shim, ShimMutex, StdShim};

use crate::frame::WireStats;
use crate::router::Router;

/// One shard's last-known stats. Kept across poll failures so a
/// restarting shard does not drag merged totals backwards.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The shard's self-reported id (`u32::MAX` for a stacked router).
    pub shard_id: u32,
    /// Model generation the shard was serving at the poll.
    pub generation: u64,
    /// Decoded mergeable snapshot from the stats frame.
    pub snapshot: MergeSnapshot,
    /// Whether the most recent poll reached the shard and decoded.
    pub reachable: bool,
}

/// Aggregation core, decoupled from the [`Router`] so tests can drive it
/// with synthetic stats frames instead of a live fleet.
#[derive(Debug, Default)]
pub struct FleetState {
    shards: Vec<Option<ShardStats>>,
}

impl FleetState {
    /// State for a fleet of `n` shard slots, none polled yet.
    pub fn new(n: usize) -> Self {
        FleetState {
            shards: vec![None; n],
        }
    }

    /// Folds one poll result for slot `i` into the state. `None` (shard
    /// unreachable) or an undecodable payload demotes the slot to its
    /// last-good snapshot, marked unreachable. Returns `true` when the
    /// poll produced a fresh decoded snapshot.
    pub fn ingest(&mut self, i: usize, polled: Option<&WireStats>) -> bool {
        let Some(slot) = self.shards.get_mut(i) else {
            return false;
        };
        match polled.and_then(|w| {
            MergeSnapshot::from_bytes(&w.snapshot)
                .ok()
                .map(|snap| (w, snap))
        }) {
            Some((w, snapshot)) => {
                *slot = Some(ShardStats {
                    shard_id: w.shard_id,
                    generation: w.generation,
                    snapshot,
                    reachable: true,
                });
                true
            }
            None => {
                if let Some(entry) = slot {
                    entry.reachable = false;
                }
                false
            }
        }
    }

    /// The per-slot last-known stats (`None` = never successfully
    /// polled).
    pub fn shards(&self) -> &[Option<ShardStats>] {
        &self.shards
    }

    /// The bucket-wise merge of every last-known shard snapshot.
    pub fn merged(&self) -> MergeSnapshot {
        let mut out = MergeSnapshot::default();
        for entry in self.shards.iter().flatten() {
            out.merge(&entry.snapshot);
        }
        out
    }

    /// Spread between the newest and oldest model generation across the
    /// fleet — nonzero while a rollout (or a stuck shard) is in flight.
    pub fn generation_skew(&self) -> u64 {
        let gens: Vec<u64> = self.shards.iter().flatten().map(|e| e.generation).collect();
        match (gens.iter().max(), gens.iter().min()) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// Count of slots whose most recent poll succeeded.
    pub fn reachable(&self) -> usize {
        self.shards.iter().flatten().filter(|e| e.reachable).count()
    }

    /// Renders the merged fleet series plus the same families labelled
    /// per shard, in Prometheus exposition format. Merged families are
    /// unlabelled `cfsf_fleet_*` series; per-shard series carry
    /// `shard="N"` (the slot index, stable across restarts — the
    /// self-reported id is exported as its own gauge).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&prom::format_series(
            "fleet.shards_total",
            &[],
            self.shards.len() as u64,
        ));
        out.push_str(&prom::format_series(
            "fleet.shards_reachable",
            &[],
            self.reachable() as u64,
        ));
        out.push_str(&prom::format_series(
            "fleet.generation_skew",
            &[],
            self.generation_skew(),
        ));

        let merged = self.merged();
        for (name, v) in &merged.counters {
            out.push_str(&prom::format_series(&format!("fleet.{name}"), &[], *v));
        }
        for (name, h) in &merged.histograms {
            out.push_str(&prom::format_summary(
                &format!("fleet.{name}"),
                &[],
                &h.summary(),
            ));
        }

        for (slot, entry) in self.shards.iter().enumerate() {
            let Some(entry) = entry else { continue };
            let shard = slot.to_string();
            let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
            out.push_str(&prom::format_series(
                "fleet.shard.up",
                labels,
                u64::from(entry.reachable),
            ));
            out.push_str(&prom::format_series(
                "fleet.shard.generation",
                labels,
                entry.generation,
            ));
            for (name, v) in &entry.snapshot.counters {
                out.push_str(&prom::format_series(&format!("fleet.{name}"), labels, *v));
            }
            // Gauges are instantaneous per-process readings: they only
            // exist per shard, never merged.
            for (name, v) in &entry.snapshot.gauges {
                let pname = prom::normalize_metric_name(&format!("fleet.{name}"));
                out.push_str(&format!("{pname}{{shard=\"{shard}\"}} {v}\n"));
            }
            for (name, h) in &entry.snapshot.histograms {
                out.push_str(&prom::format_summary(
                    &format!("fleet.{name}"),
                    labels,
                    &h.summary(),
                ));
            }
        }
        out
    }

    /// The `"fleet"` section of `/stats.json`: per-shard generation and
    /// reachability plus the merged snapshot in the standard JSON shape.
    pub fn stats_json(&self) -> String {
        let mut w = cf_obs::json::Writer::new();
        w.begin_object();
        w.key("shards_total");
        w.number_u64(self.shards.len() as u64);
        w.key("shards_reachable");
        w.number_u64(self.reachable() as u64);
        w.key("generation_skew");
        w.number_u64(self.generation_skew());
        w.key("shards");
        w.begin_array();
        for entry in &self.shards {
            w.elem();
            match entry {
                Some(e) => {
                    w.begin_object();
                    w.key("shard_id");
                    w.number_u64(e.shard_id as u64);
                    w.key("generation");
                    w.number_u64(e.generation);
                    w.key("reachable");
                    w.bool(e.reachable);
                    w.end_object();
                }
                None => w.null(),
            }
        }
        w.end_array();
        w.key("merged");
        w.raw(&self.merged().summarize().to_json());
        w.end_object();
        w.finish()
    }
}

/// The aggregator's concurrency core: the fleet state and the SLO
/// engine behind [`cf_obs::sync::Shim`] mutexes, so the poll-vs-scrape
/// surface runs under the loom-lite model checker with the *same* code
/// production executes (`cf-analysis` model `fleet-scrape`).
///
/// Locking contract (what the models pin down):
///
/// - [`ingest`](Self::ingest) takes the state lock **per slot**, not
///   across the whole batch, so a `/metrics` scrape interleaves with a
///   fleet poll instead of stalling behind N decodes;
/// - a [`scrape`](Self::scrape) reads everything it renders under one
///   lock hold, so "merged == bucket-wise sum of the per-shard series"
///   holds *within* one scrape even mid-poll;
/// - the SLO lock is always taken after (never inside) the state lock,
///   so the two locks cannot deadlock against each other.
pub struct FleetSync<S: Shim> {
    state: S::Mutex<FleetState>,
    slo: S::Mutex<SloEngine>,
}

impl<S: Shim> FleetSync<S> {
    /// A core for `shards` slots evaluating `slos` over `windows`.
    pub fn new(shards: usize, slos: Vec<SloSpec>, windows: Vec<Duration>) -> Self {
        FleetSync {
            state: ShimMutex::new(FleetState::new(shards)),
            slo: ShimMutex::new(SloEngine::new(slos, windows)),
        }
    }

    /// Folds one batch of poll results into the state, slot by slot
    /// (the state lock is released between slots — see the type docs).
    /// Returns the number of slots that produced a fresh snapshot.
    pub fn ingest(&self, polled: &[Option<WireStats>]) -> usize {
        let mut fresh = 0;
        for (i, w) in polled.iter().enumerate() {
            if self.state.lock_recover().ingest(i, w.as_ref()) {
                fresh += 1;
            }
        }
        fresh
    }

    /// Feeds the current merged cumulative snapshot to the SLO engine as
    /// one tick at `now`.
    pub fn observe(&self, now: Instant) {
        let merged = self.merged();
        self.slo.lock_recover().observe(&merged, now);
    }

    /// The SLO burn-rate / budget gauges as of `now`.
    pub fn gauges(&self, now: Instant) -> Vec<(String, i64)> {
        self.slo.lock_recover().gauges(now)
    }

    /// Publishes the SLO gauges into the global registry.
    pub fn publish(&self, now: Instant) {
        self.slo.lock_recover().publish(now);
    }

    /// Runs `f` over the fleet state under a single lock hold — the
    /// consistency boundary every exposition path must stay inside.
    pub fn scrape<R>(&self, f: impl FnOnce(&FleetState) -> R) -> R {
        f(&self.state.lock_recover())
    }

    /// The merged fleet snapshot as of the last ingested poll.
    pub fn merged(&self) -> MergeSnapshot {
        self.state.lock_recover().merged()
    }

    /// The SLO report JSON (`BENCH_slo.json` payload) as of `now`.
    pub fn slo_report(&self, now: Instant) -> String {
        self.slo.lock_recover().report_json(now)
    }
}

/// Polls shard stats frames through a [`Router`], maintains the merged
/// fleet view and evaluates SLOs over it. Install with
/// [`cf_obs::serve::set_scrape_extra`] to splice the fleet view into the
/// router's `/metrics` and `/stats.json`. All shared state lives in a
/// [`FleetSync<StdShim>`]; the checked-shim instantiation of the same
/// core is model-checked in `cf-analysis`.
pub struct FleetAggregator {
    router: Arc<Router>,
    sync: FleetSync<StdShim>,
}

impl FleetAggregator {
    /// An aggregator for `router`'s fleet evaluating `slos` over the
    /// default burn-rate windows.
    pub fn new(router: Arc<Router>, slos: Vec<SloSpec>) -> Self {
        let n = router.num_shards();
        FleetAggregator {
            router,
            sync: FleetSync::new(n, slos, DEFAULT_WINDOWS.to_vec()),
        }
    }

    /// One aggregation cycle: polls every shard's stats frame, folds the
    /// results into the fleet state, feeds the merged cumulative
    /// snapshot to the SLO engine and publishes its burn-rate gauges
    /// into the global registry. Returns the number of shards that
    /// answered with a fresh snapshot.
    pub fn poll(&self, now: Instant) -> usize {
        let polled = self.router.poll_shard_stats();
        let fresh = self.sync.ingest(&polled);
        cf_obs::counter!("fleet.poll_failures").add((polled.len() - fresh) as u64);
        cf_obs::counter!("fleet.polls").inc();
        // Reachability and skew render from the scrape extra (one
        // series each); publishing them as registry gauges too would
        // duplicate the exposition lines.
        self.sync.observe(now);
        self.sync.publish(now);
        fresh
    }

    /// The merged fleet snapshot as of the last poll.
    pub fn merged(&self) -> MergeSnapshot {
        self.sync.merged()
    }

    /// The SLO report JSON (`BENCH_slo.json` payload) as of `now`.
    pub fn slo_report(&self, now: Instant) -> String {
        self.sync.slo_report(now)
    }
}

impl cf_obs::serve::ScrapeExtra for FleetAggregator {
    fn prometheus(&self) -> String {
        self.sync.scrape(FleetState::render_prometheus)
    }

    fn stats_sections(&self) -> Vec<(String, String)> {
        vec![(
            "fleet".to_string(),
            self.sync.scrape(FleetState::stats_json),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_obs::Registry;

    fn stats_frame(shard_id: u32, generation: u64, latencies: &[u64], reqs: u64) -> WireStats {
        let reg = Registry::new();
        reg.counter("online.predictions").add(reqs);
        reg.gauge("serve.generation").set(generation as i64);
        let h = reg.histogram("online.request_ns");
        for &v in latencies {
            h.record(v);
        }
        WireStats {
            shard_id,
            generation,
            snapshot: MergeSnapshot::of(&reg).to_bytes(),
        }
    }

    #[test]
    fn merged_is_bucket_wise_sum_of_shards() {
        let mut state = FleetState::new(2);
        assert!(state.ingest(0, Some(&stats_frame(0, 1, &[100, 2_000, 30_000], 3))));
        assert!(state.ingest(1, Some(&stats_frame(1, 1, &[100, 5_000_000], 2))));

        let merged = state.merged();
        assert_eq!(merged.counters["online.predictions"], 5);
        let combined = cf_obs::Histogram::new();
        for v in [100u64, 2_000, 30_000, 100, 5_000_000] {
            combined.record(v);
        }
        assert_eq!(merged.histograms["online.request_ns"], combined.buckets());
    }

    #[test]
    fn failed_poll_keeps_last_good_and_marks_unreachable() {
        let mut state = FleetState::new(2);
        state.ingest(0, Some(&stats_frame(0, 1, &[100], 7)));
        state.ingest(1, Some(&stats_frame(1, 3, &[200], 9)));
        assert_eq!(state.reachable(), 2);
        assert_eq!(state.generation_skew(), 2);

        // Shard 1 misses a poll: totals must not move, reachability must.
        assert!(!state.ingest(1, None));
        assert_eq!(state.reachable(), 1);
        assert_eq!(state.merged().counters["online.predictions"], 16);

        // A garbled payload is a failed poll, not a decode panic.
        let mut bad = stats_frame(1, 3, &[1], 1);
        bad.snapshot.truncate(3);
        assert!(!state.ingest(1, Some(&bad)));
        assert_eq!(state.merged().counters["online.predictions"], 16);
    }

    #[test]
    fn prometheus_renders_merged_and_per_shard_families() {
        let mut state = FleetState::new(2);
        state.ingest(0, Some(&stats_frame(0, 4, &[100, 200], 10)));
        state.ingest(1, Some(&stats_frame(1, 4, &[300], 20)));
        let text = state.render_prometheus();

        assert!(text.contains("cfsf_fleet_shards_total 2"), "{text}");
        assert!(text.contains("cfsf_fleet_generation_skew 0"), "{text}");
        assert!(text.contains("cfsf_fleet_online_predictions 30"), "{text}");
        assert!(
            text.contains("cfsf_fleet_online_predictions{shard=\"0\"} 10"),
            "{text}"
        );
        assert!(
            text.contains("cfsf_fleet_online_predictions{shard=\"1\"} 20"),
            "{text}"
        );
        assert!(
            text.contains("cfsf_fleet_online_request_ns_count 3"),
            "{text}"
        );
        assert!(
            text.contains("cfsf_fleet_online_request_ns_count{shard=\"0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("cfsf_fleet_shard_generation{shard=\"1\"} 4"),
            "{text}"
        );
        // Gauges render per shard only — no merged gauge series.
        assert!(
            text.contains("cfsf_fleet_serve_generation{shard=\"0\"} 4"),
            "{text}"
        );
        assert!(!text.contains("cfsf_fleet_serve_generation "), "{text}");
    }

    #[test]
    fn stats_json_names_shards_and_merged_section() {
        let mut state = FleetState::new(3);
        state.ingest(0, Some(&stats_frame(0, 2, &[50], 1)));
        state.ingest(2, Some(&stats_frame(2, 5, &[60], 1)));
        let json = state.stats_json();
        for needle in [
            "\"shards_total\": 3",
            "\"shards_reachable\": 2",
            "\"generation_skew\": 3",
            "\"shard_id\": 2",
            "null",
            "\"merged\"",
            "\"online.predictions\": 2",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
