//! Sharded multi-process serving for the CFSF model.
//!
//! This crate turns the single-process recommender into a small fleet:
//!
//! - [`frame`] — the length-framed, versioned, CRC-checked binary wire
//!   protocol (the serving twin of the persistence format's V2 header
//!   discipline: magic, version, length-before-allocate, checksum).
//! - [`server`] — [`server::ShardServer`]: one process, one loaded
//!   model, answering predict / recommend / health / profile frames on
//!   the hardened [`cf_obs::net`] socket loop.
//! - [`client`] — [`client::ShardClient`]: a blocking, deadline-bounded
//!   protocol client.
//! - [`router`] — [`router::Router`] and [`router::RouterServer`]: the
//!   front tier. Hashes users across shards, bounds in-flight work per
//!   shard, and load-sheds failures onto the model's degradation ladder
//!   (`online.degrade.*`) instead of returning errors; recommends via
//!   scatter-gather whose merged result is bit-for-bit the
//!   single-process answer when every shard is up.
//!
//! Everything is std-only, blocking I/O with explicit timeouts — the
//! same discipline as the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod fleet;
pub mod frame;
pub mod live;
pub mod router;
pub mod server;

pub use client::{ClientOptions, ShardClient};
pub use fleet::FleetAggregator;
pub use frame::{FrameError, Request, Response};
pub use live::ModelHandle;
pub use router::{Router, RouterConfig, RouterServer};
pub use server::{ServerOptions, ShardOptions, ShardServer};
