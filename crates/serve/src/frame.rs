//! The CFSF wire protocol: length-framed, versioned, checksummed binary
//! frames over TCP — persist-V2 style, but per message instead of per
//! file section.
//!
//! Frame layout (everything little-endian):
//!
//! ```text
//! magic "CFWP" | u16 version | u16 kind | u32 len | payload (len bytes) | u32 crc32
//! ```
//!
//! The crc32 ([`cfsf_core::crc32`], the same IEEE polynomial the model
//! files use) covers the payload only; the fixed header is validated
//! field by field so a desynced or hostile peer fails fast with a
//! specific error instead of a mis-sized read. `len` is capped by
//! [`MAX_FRAME_BYTES`] **before** any allocation, so a corrupt length
//! can't OOM the server.
//!
//! Requests and responses share the same framing; kinds below 16 are
//! requests, 16 and up are responses. Both sides ignore unknown *trailing
//! payload bytes* within a known kind (append-only evolution), and
//! reject unknown kinds — version bumps are for layout changes, not
//! additions.
//!
//! Floating-point values travel as `f64::to_bits`, so a prediction
//! served through a shard is bit-for-bit the prediction the same model
//! serves in process.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use cf_obs::trace::{RemoteSpan, TraceContext, REMOTE_SPANS_CAP};

/// Frame magic: CFSF Wire Protocol.
pub const MAGIC: [u8; 4] = *b"CFWP";
/// Current protocol version. Bumped only for layout changes; appending
/// fields to an existing payload is allowed within a version.
pub const VERSION: u16 = 1;
/// Hard cap on one frame's payload. Generous enough for a 1M-user
/// profile frame (8 MiB of user means), small enough that a corrupt
/// length field cannot balloon allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;
/// Fixed header size: magic + version + kind + len.
pub const HEADER_LEN: usize = 12;

/// Error code: the requested user or item id is outside the model.
pub const ERR_OUT_OF_RANGE: u16 = 1;
/// Error code: the frame decoded but the request is malformed.
pub const ERR_BAD_REQUEST: u16 = 2;
/// Error code: the server is at its connection/queue limit.
pub const ERR_BUSY: u16 = 3;
/// Error code: an internal failure the server absorbed.
pub const ERR_INTERNAL: u16 = 4;

const KIND_HEALTH: u16 = 1;
const KIND_PREDICT: u16 = 2;
const KIND_RECOMMEND: u16 = 3;
const KIND_PROFILE: u16 = 4;
const KIND_PREDICT_BATCH: u16 = 5;
const KIND_STATS: u16 = 6;
const KIND_R_HEALTH: u16 = 16;
const KIND_R_PREDICTION: u16 = 17;
const KIND_R_TOP_N: u16 = 18;
const KIND_R_PROFILE: u16 = 19;
const KIND_R_ERROR: u16 = 20;
const KIND_R_PREDICTIONS: u16 = 21;
const KIND_R_STATS: u16 = 22;

/// Everything that can go wrong reading or decoding a frame.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket failure (including timeouts mid-frame).
    Io(std::io::Error),
    /// The stream does not start with [`MAGIC`] — not a CFSF peer, or a
    /// desynced one.
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    BadVersion(u16),
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    TooLarge(u32),
    /// The payload checksum did not match.
    BadCrc {
        /// CRC carried by the frame.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// A kind byte neither side of this build understands.
    UnknownKind(u16),
    /// The kind is known but the payload doesn't decode.
    Malformed(&'static str),
    /// The peer closed the stream mid-frame (clean EOF between frames is
    /// [`ReadOutcome::Eof`], not an error).
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::TooLarge(n) => write!(f, "frame payload of {n} bytes exceeds the limit"),
            Self::BadCrc { expected, actual } => {
                write!(
                    f,
                    "payload crc mismatch: frame says {expected:08x}, computed {actual:08x}"
                )
            }
            Self::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            Self::Malformed(what) => write!(f, "malformed payload: {what}"),
            Self::Truncated => write!(f, "peer closed the stream mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// A request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness + model-shape probe.
    Health,
    /// Predict one `(user, item)` rating.
    Predict {
        /// 0-based user id.
        user: u32,
        /// 0-based item id.
        item: u32,
        /// Caller's trace context, propagated so the shard continues the
        /// span tree under the same trace id. Travels as appended
        /// trailing payload — old peers ignore it, and frames from old
        /// peers decode as `None`.
        trace: Option<TraceContext>,
    },
    /// Top-`n` recommendations for `user` over the item stripe
    /// `[item_start, item_end)`; `item_end == u32::MAX` means "through
    /// the last item". The router scatters stripes across shards and
    /// merges; plain clients just pass the full range.
    RecommendTopN {
        /// 0-based user id.
        user: u32,
        /// How many items to return.
        n: u32,
        /// First item of the stripe (inclusive).
        item_start: u32,
        /// One past the last item of the stripe; `u32::MAX` = item count.
        item_end: u32,
        /// Caller's trace context (see [`Request::Predict::trace`]).
        trace: Option<TraceContext>,
    },
    /// Fetch the fallback profile (scale, global/user means) the router
    /// serves degraded answers from when a shard is unreachable.
    Profile,
    /// Predict a whole batch of `(user, item)` pairs in one frame. The
    /// shard runs them through [`cfsf_core::Cfsf::predict_batch_with_breakdown`]
    /// (strip-sorted for locality), so amortized per-request cost beats a
    /// stream of [`Request::Predict`] frames while answers stay
    /// bit-identical and in request order.
    PredictBatch {
        /// 0-based `(user, item)` pairs, answered in this order.
        pairs: Vec<(u32, u32)>,
        /// Caller's trace context (see [`Request::Predict::trace`]).
        trace: Option<TraceContext>,
    },
    /// Fetch the shard's mergeable metrics snapshot
    /// ([`cf_obs::merge::MergeSnapshot`] wire bytes) for fleet
    /// aggregation.
    Stats,
}

impl Request {
    /// A [`Request::Predict`] carrying the calling thread's current
    /// trace context (if a request trace is active). Always build
    /// predict frames through this — the `trace-context-dropped` lint
    /// flags literal construction outside this module.
    pub fn predict(user: u32, item: u32) -> Self {
        Self::Predict {
            user,
            item,
            trace: cf_obs::trace::current_context(),
        }
    }

    /// A [`Request::RecommendTopN`] carrying the current trace context.
    pub fn recommend_top_n(user: u32, n: u32, item_start: u32, item_end: u32) -> Self {
        Self::RecommendTopN {
            user,
            n,
            item_start,
            item_end,
            trace: cf_obs::trace::current_context(),
        }
    }

    /// A [`Request::PredictBatch`] carrying the current trace context.
    pub fn predict_batch(pairs: Vec<(u32, u32)>) -> Self {
        Self::PredictBatch {
            pairs,
            trace: cf_obs::trace::current_context(),
        }
    }

    /// The propagated trace context, if the request carries one.
    pub fn trace_context(&self) -> Option<TraceContext> {
        match self {
            Self::Predict { trace, .. }
            | Self::RecommendTopN { trace, .. }
            | Self::PredictBatch { trace, .. } => *trace,
            Self::Health | Self::Profile | Self::Stats => None,
        }
    }
}

/// A shard's mergeable metrics snapshot, for the router's fleet
/// aggregator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStats {
    /// Operator-assigned shard id.
    pub shard_id: u32,
    /// Refresh generation currently serving.
    pub generation: u64,
    /// [`cf_obs::merge::MergeSnapshot::to_bytes`] payload; versioned and
    /// bounds-checked by its own decoder, so the frame layer just
    /// carries the bytes.
    pub snapshot: Vec<u8>,
}

/// Shard identity and model shape, for health checks and mismatch
/// detection at router startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthInfo {
    /// Operator-assigned shard id (`u32::MAX` for a router front).
    pub shard_id: u32,
    /// Users in the loaded model.
    pub num_users: u64,
    /// Items in the loaded model.
    pub num_items: u64,
    /// Refresh generation currently serving (0 before any live refresh
    /// and on peers predating the field — appended trailing payload, so
    /// old and new builds interoperate without a version bump).
    pub generation: u64,
}

/// One served prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePrediction {
    /// The fused, clamped prediction (bit-exact with the in-process
    /// model).
    pub fused: f64,
    /// [`cfsf_core::DegradeLevel::code`] of the rung that served it.
    pub level: u8,
    /// Whether the rung is in the fallback region of the ladder.
    pub fallback: bool,
}

/// The fallback profile: enough of the model for a router to serve the
/// bottom rungs of the degradation ladder on its own.
#[derive(Debug, Clone, PartialEq)]
pub struct WireProfile {
    /// Rating scale minimum.
    pub scale_min: f64,
    /// Rating scale maximum.
    pub scale_max: f64,
    /// Global mean rating — the rung that cannot be missing.
    pub global_mean: f64,
    /// Items in the model (users is `user_means.len()`).
    pub num_items: u64,
    /// Per-user mean ratings, indexed by user id.
    pub user_means: Vec<f64>,
    /// Refresh generation the profile was cut from (0 on peers predating
    /// the field — appended trailing payload, no version bump). The
    /// router compares this against health frames to notice its fallback
    /// table has gone stale.
    pub generation: u64,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Health`].
    Health(HealthInfo),
    /// Answer to [`Request::Predict`].
    Prediction(WirePrediction),
    /// Answer to [`Request::RecommendTopN`]: `(item, score)`, best
    /// first.
    TopN(Vec<(u32, f64)>),
    /// Answer to [`Request::Profile`].
    Profile(WireProfile),
    /// Answer to [`Request::PredictBatch`], element `k` answering pair
    /// `k`; `None` marks a pair the model cannot predict (out of range or
    /// no local information) without failing the rest of the batch.
    Predictions(Vec<Option<WirePrediction>>),
    /// The request could not be served; `code` is one of the `ERR_*`
    /// constants.
    Error {
        /// Machine-readable `ERR_*` code.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to [`Request::Stats`].
    Stats(WireStats),
}

/// Outcome of one [`read_frame`] call on a stream with a read timeout.
#[derive(Debug)]
pub enum ReadOutcome<T> {
    /// A complete, checksummed, decoded frame.
    Frame(T),
    /// The socket timeout elapsed with **zero** bytes of a new frame —
    /// the connection is idle. Callers poll their stop flag and retry.
    Idle,
    /// Clean EOF on a frame boundary: the peer is done.
    Eof,
}

// --- payload cursor ----------------------------------------------------

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or(FrameError::Malformed(
                "payload shorter than declared fields",
            ))?;
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` appended after the original payload fields — the
    /// append-only evolution rule: a short payload (old peer) decodes as
    /// `default` instead of failing.
    fn u64_or(&mut self, default: u64) -> u64 {
        self.u64().unwrap_or(default)
    }

    /// Bytes left between the read position and the end of the payload —
    /// the tightest bound any decoded length can honestly claim.
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

// --- trailing telemetry blobs ------------------------------------------
//
// Trace context (on Predict/RecommendTopN/PredictBatch requests) and
// completed remote spans (on Prediction/TopN/Predictions responses)
// travel as *appended* trailing payload, per the append-only evolution
// rule: old decoders stop at the original fields and never see them, and
// this decoder reads them leniently — a short or garbled tail decodes as
// "no context" / "no spans", never as a frame error, because telemetry
// must not be able to fail serving.

/// Appends `ctx` after the request's original payload fields.
fn put_trace_context(out: &mut Vec<u8>, ctx: &Option<TraceContext>) {
    if let Some(ctx) = ctx {
        out.push(1);
        put_u64(out, ctx.trace_id);
        put_u32(out, ctx.parent_span);
        out.push(u8::from(ctx.sampled));
    }
    // `None` appends nothing: the frame is byte-identical to one from a
    // build predating trace propagation.
}

/// Leniently reads a trailing trace context; anything short, absent or
/// unrecognized is `None`.
fn take_trace_context(c: &mut Cursor) -> Option<TraceContext> {
    if c.u8().ok()? != 1 {
        return None;
    }
    let trace_id = c.u64().ok()?;
    let parent_span = c.u32().ok()?;
    let sampled = c.u8().ok()? != 0;
    Some(TraceContext {
        trace_id,
        parent_span,
        sampled,
    })
}

/// Appends completed remote spans after a response's original payload.
fn put_spans(out: &mut Vec<u8>, spans: &[RemoteSpan]) {
    if spans.is_empty() {
        return;
    }
    let n = spans.len().min(REMOTE_SPANS_CAP);
    put_u32(out, n as u32);
    for span in &spans[..n] {
        let name = span.name.as_bytes();
        let len = name.len().min(u16::MAX as usize);
        put_u16(out, len as u16);
        out.extend_from_slice(&name[..len]);
        put_u64(out, span.start_ns);
        put_u64(out, span.dur_ns);
        out.push(span.depth);
    }
}

/// Leniently reads trailing remote spans; a short or garbled tail yields
/// the spans decoded so far (possibly none). `origin` is not on the wire
/// — the receiver knows which shard it asked.
fn take_spans(c: &mut Cursor) -> Vec<RemoteSpan> {
    let Ok(count) = c.u32() else {
        return Vec::new();
    };
    let mut spans = Vec::new();
    for _ in 0..count.min(REMOTE_SPANS_CAP as u32) {
        let Ok(len) = c.u16() else { break };
        let len = (len as usize).min(c.remaining());
        let Ok(name) = c.take(len) else {
            break;
        };
        let name = String::from_utf8_lossy(name).into_owned();
        let (Ok(start_ns), Ok(dur_ns), Ok(depth)) = (c.u64(), c.u64(), c.u8()) else {
            break;
        };
        spans.push(RemoteSpan {
            origin: String::new(),
            name,
            start_ns,
            dur_ns,
            depth,
        });
    }
    spans
}

/// Response kinds that may carry a trailing remote-span blob. Profile is
/// deliberately excluded: its decoder reads a lenient trailing
/// `generation` u64, which a span blob would corrupt.
fn span_capable(kind: u16) -> bool {
    matches!(kind, KIND_R_PREDICTION | KIND_R_TOP_N | KIND_R_PREDICTIONS)
}

// --- encode ------------------------------------------------------------

impl Request {
    fn kind(&self) -> u16 {
        match self {
            Self::Health => KIND_HEALTH,
            Self::Predict { .. } => KIND_PREDICT,
            Self::RecommendTopN { .. } => KIND_RECOMMEND,
            Self::Profile => KIND_PROFILE,
            Self::PredictBatch { .. } => KIND_PREDICT_BATCH,
            Self::Stats => KIND_STATS,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Health | Self::Profile | Self::Stats => {}
            Self::Predict { user, item, trace } => {
                put_u32(&mut out, *user);
                put_u32(&mut out, *item);
                put_trace_context(&mut out, trace);
            }
            Self::RecommendTopN {
                user,
                n,
                item_start,
                item_end,
                trace,
            } => {
                put_u32(&mut out, *user);
                put_u32(&mut out, *n);
                put_u32(&mut out, *item_start);
                put_u32(&mut out, *item_end);
                put_trace_context(&mut out, trace);
            }
            Self::PredictBatch { pairs, trace } => {
                put_u32(&mut out, pairs.len() as u32);
                for &(user, item) in pairs {
                    put_u32(&mut out, user);
                    put_u32(&mut out, item);
                }
                put_trace_context(&mut out, trace);
            }
        }
        out
    }

    fn decode(kind: u16, payload: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(payload);
        Ok(match kind {
            KIND_HEALTH => Self::Health,
            KIND_PROFILE => Self::Profile,
            KIND_STATS => Self::Stats,
            KIND_PREDICT => Self::Predict {
                user: c.u32()?,
                item: c.u32()?,
                trace: take_trace_context(&mut c),
            },
            KIND_RECOMMEND => Self::RecommendTopN {
                user: c.u32()?,
                n: c.u32()?,
                item_start: c.u32()?,
                item_end: c.u32()?,
                trace: take_trace_context(&mut c),
            },
            KIND_PREDICT_BATCH => {
                let count = c.u32()? as usize;
                // Sanity-bound against the payload that actually arrived
                // (8 bytes per pair) before allocating.
                if count > payload.len() / 8 + 1 {
                    return Err(FrameError::Malformed("batch count exceeds payload"));
                }
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    let user = c.u32()?;
                    let item = c.u32()?;
                    pairs.push((user, item));
                }
                Self::PredictBatch {
                    pairs,
                    trace: take_trace_context(&mut c),
                }
            }
            other => return Err(FrameError::UnknownKind(other)),
        })
    }
}

impl Response {
    fn kind(&self) -> u16 {
        match self {
            Self::Health(_) => KIND_R_HEALTH,
            Self::Prediction(_) => KIND_R_PREDICTION,
            Self::TopN(_) => KIND_R_TOP_N,
            Self::Profile(_) => KIND_R_PROFILE,
            Self::Error { .. } => KIND_R_ERROR,
            Self::Predictions(_) => KIND_R_PREDICTIONS,
            Self::Stats(_) => KIND_R_STATS,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Health(h) => {
                put_u32(&mut out, h.shard_id);
                put_u64(&mut out, h.num_users);
                put_u64(&mut out, h.num_items);
                put_u64(&mut out, h.generation);
            }
            Self::Prediction(p) => {
                put_f64(&mut out, p.fused);
                out.push(p.level);
                out.push(u8::from(p.fallback));
            }
            Self::TopN(items) => {
                put_u32(&mut out, items.len() as u32);
                for &(item, score) in items {
                    put_u32(&mut out, item);
                    put_f64(&mut out, score);
                }
            }
            Self::Profile(p) => {
                put_f64(&mut out, p.scale_min);
                put_f64(&mut out, p.scale_max);
                put_f64(&mut out, p.global_mean);
                put_u64(&mut out, p.num_items);
                put_u64(&mut out, p.user_means.len() as u64);
                for &m in &p.user_means {
                    put_f64(&mut out, m);
                }
                put_u64(&mut out, p.generation);
            }
            Self::Error { code, message } => {
                put_u16(&mut out, *code);
                let msg = message.as_bytes();
                put_u32(&mut out, msg.len() as u32);
                out.extend_from_slice(msg);
            }
            Self::Predictions(preds) => {
                put_u32(&mut out, preds.len() as u32);
                for p in preds {
                    match p {
                        Some(p) => {
                            out.push(1);
                            put_f64(&mut out, p.fused);
                            out.push(p.level);
                            out.push(u8::from(p.fallback));
                        }
                        None => out.push(0),
                    }
                }
            }
            Self::Stats(s) => {
                put_u32(&mut out, s.shard_id);
                put_u64(&mut out, s.generation);
                put_u32(&mut out, s.snapshot.len() as u32);
                out.extend_from_slice(&s.snapshot);
            }
        }
        out
    }

    #[cfg(test)]
    fn decode(kind: u16, payload: &[u8]) -> Result<Self, FrameError> {
        Ok(Self::decode_with_spans(kind, payload)?.0)
    }

    /// [`Response::decode`] plus any trailing remote-span blob the
    /// responder appended (always empty for kinds that cannot carry
    /// one).
    fn decode_with_spans(kind: u16, payload: &[u8]) -> Result<(Self, Vec<RemoteSpan>), FrameError> {
        let mut c = Cursor::new(payload);
        let resp = Self::decode_body(&mut c, kind, payload)?;
        let spans = if span_capable(kind) {
            take_spans(&mut c)
        } else {
            Vec::new()
        };
        Ok((resp, spans))
    }

    fn decode_body(c: &mut Cursor, kind: u16, payload: &[u8]) -> Result<Self, FrameError> {
        Ok(match kind {
            KIND_R_HEALTH => Self::Health(HealthInfo {
                shard_id: c.u32()?,
                num_users: c.u64()?,
                num_items: c.u64()?,
                generation: c.u64_or(0),
            }),
            KIND_R_PREDICTION => Self::Prediction(WirePrediction {
                fused: c.f64()?,
                level: c.u8()?,
                fallback: c.u8()? != 0,
            }),
            KIND_R_TOP_N => {
                let count = c.u32()? as usize;
                // Sanity-bound against the payload that actually arrived
                // (12 bytes per entry) before allocating.
                if count > payload.len() / 12 + 1 {
                    return Err(FrameError::Malformed("top-n count exceeds payload"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    let item = c.u32()?;
                    let score = c.f64()?;
                    items.push((item, score));
                }
                Self::TopN(items)
            }
            KIND_R_PROFILE => {
                let scale_min = c.f64()?;
                let scale_max = c.f64()?;
                let global_mean = c.f64()?;
                let num_items = c.u64()?;
                let n_users = c.u64()? as usize;
                if n_users > payload.len() / 8 + 1 {
                    return Err(FrameError::Malformed("profile count exceeds payload"));
                }
                let mut user_means = Vec::with_capacity(n_users);
                for _ in 0..n_users {
                    user_means.push(c.f64()?);
                }
                let generation = c.u64_or(0);
                Self::Profile(WireProfile {
                    scale_min,
                    scale_max,
                    global_mean,
                    num_items,
                    user_means,
                    generation,
                })
            }
            KIND_R_ERROR => {
                let code = c.u16()?;
                let len = c.u32()? as usize;
                if len > c.remaining() {
                    return Err(FrameError::Malformed("error message exceeds payload"));
                }
                let bytes = c.take(len)?;
                Self::Error {
                    code,
                    message: String::from_utf8_lossy(bytes).into_owned(),
                }
            }
            KIND_R_PREDICTIONS => {
                let count = c.u32()? as usize;
                // At least one flag byte per element must have arrived.
                if count > payload.len() + 1 {
                    return Err(FrameError::Malformed("predictions count exceeds payload"));
                }
                let mut preds = Vec::with_capacity(count);
                for _ in 0..count {
                    preds.push(if c.u8()? != 0 {
                        Some(WirePrediction {
                            fused: c.f64()?,
                            level: c.u8()?,
                            fallback: c.u8()? != 0,
                        })
                    } else {
                        None
                    });
                }
                Self::Predictions(preds)
            }
            KIND_R_STATS => {
                let shard_id = c.u32()?;
                let generation = c.u64()?;
                let len = c.u32()? as usize;
                if len > payload.len() {
                    return Err(FrameError::Malformed("stats length exceeds payload"));
                }
                let snapshot = c.take(len)?.to_vec();
                Self::Stats(WireStats {
                    shard_id,
                    generation,
                    snapshot,
                })
            }
            other => return Err(FrameError::UnknownKind(other)),
        })
    }
}

// --- wire i/o ----------------------------------------------------------

fn write_frame(stream: &mut TcpStream, kind: u16, payload: &[u8]) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&cfsf_core::crc32(payload).to_le_bytes());
    // One write_all for the whole frame: no interleaving torn frames when
    // several router threads share a pool connection sequentially.
    stream.write_all(&out)?;
    stream.flush()
}

/// Writes `req` as one frame.
pub fn write_request(stream: &mut TcpStream, req: &Request) -> std::io::Result<()> {
    write_frame(stream, req.kind(), &req.payload())
}

/// Writes `resp` as one frame.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    write_frame(stream, resp.kind(), &resp.payload())
}

/// Writes `resp` with the responder's completed remote spans appended as
/// trailing payload (only on kinds that can carry them — spans for any
/// other kind are dropped, since e.g. an error frame's caller is not
/// stitching a trace).
pub fn write_response_with_spans(
    stream: &mut TcpStream,
    resp: &Response,
    spans: &[RemoteSpan],
) -> std::io::Result<()> {
    let mut payload = resp.payload();
    if span_capable(resp.kind()) {
        put_spans(&mut payload, spans);
    }
    write_frame(stream, resp.kind(), &payload)
}

/// How one `fill` call ended.
enum Fill {
    Done,
    /// Zero bytes arrived before the socket timeout (only reported when
    /// `idle_ok`).
    Idle,
    /// Clean EOF before the first byte (only when `idle_ok`).
    Eof,
}

/// Reads exactly `buf.len()` bytes. With `idle_ok`, a timeout or EOF
/// *before the first byte* is reported as `Idle`/`Eof` instead of an
/// error; once any byte has arrived the frame is in flight and must
/// complete before `deadline`.
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    idle_ok: bool,
    deadline: Instant,
) -> Result<Fill, FrameError> {
    let mut got = 0usize;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return if got == 0 && idle_ok {
                    Ok(Fill::Eof)
                } else {
                    Err(FrameError::Truncated)
                };
            }
            Ok(n) => got += n,
            Err(e) if cf_obs::net::is_timeout(&e) => {
                if got == 0 && idle_ok {
                    return Ok(Fill::Idle);
                }
                if Instant::now() >= deadline {
                    return Err(FrameError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "frame did not complete before the deadline",
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Fill::Done)
}

/// Reads one frame from a stream whose read timeout is already armed
/// (see [`cf_obs::net::harden`]). A timeout before the first byte is
/// [`ReadOutcome::Idle`] — the caller's loop polls its stop flag and
/// calls again; a timeout mid-frame is an error once `frame_deadline`
/// (measured from the first header byte) has passed.
pub fn read_frame(
    stream: &mut TcpStream,
    frame_deadline: Duration,
) -> Result<ReadOutcome<(u16, Vec<u8>)>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // Arm a generous provisional deadline for the idle wait; the real
    // per-frame deadline starts once the first byte has arrived.
    match fill(stream, &mut header, true, Instant::now() + frame_deadline)? {
        Fill::Idle => return Ok(ReadOutcome::Idle),
        Fill::Eof => return Ok(ReadOutcome::Eof),
        Fill::Done => {}
    }
    let deadline = Instant::now() + frame_deadline;
    if header[..4] != MAGIC {
        return Err(FrameError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let kind = u16::from_le_bytes([header[6], header[7]]);
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len as usize > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    match fill(stream, &mut payload, false, deadline)? {
        Fill::Done => {}
        Fill::Idle | Fill::Eof => return Err(FrameError::Truncated),
    }
    let mut crc = [0u8; 4];
    match fill(stream, &mut crc, false, deadline)? {
        Fill::Done => {}
        Fill::Idle | Fill::Eof => return Err(FrameError::Truncated),
    }
    let expected = u32::from_le_bytes(crc);
    let actual = cfsf_core::crc32(&payload);
    if expected != actual {
        return Err(FrameError::BadCrc { expected, actual });
    }
    Ok(ReadOutcome::Frame((kind, payload)))
}

/// [`read_frame`] + [`Request::decode`].
pub fn read_request(
    stream: &mut TcpStream,
    frame_deadline: Duration,
) -> Result<ReadOutcome<Request>, FrameError> {
    Ok(match read_frame(stream, frame_deadline)? {
        ReadOutcome::Frame((kind, payload)) => ReadOutcome::Frame(Request::decode(kind, &payload)?),
        ReadOutcome::Idle => ReadOutcome::Idle,
        ReadOutcome::Eof => ReadOutcome::Eof,
    })
}

/// [`read_frame`] + [`Response::decode`], retrying idle ticks until
/// `overall_deadline` — a client waiting for its answer treats "no bytes
/// yet" as waiting, not as an idle connection.
pub fn read_response(
    stream: &mut TcpStream,
    frame_deadline: Duration,
    overall_deadline: Instant,
) -> Result<Response, FrameError> {
    Ok(read_response_with_spans(stream, frame_deadline, overall_deadline)?.0)
}

/// [`read_response`] that also surfaces any remote spans the responder
/// appended — the router's path for stitching shard spans into its own
/// trace.
pub fn read_response_with_spans(
    stream: &mut TcpStream,
    frame_deadline: Duration,
    overall_deadline: Instant,
) -> Result<(Response, Vec<RemoteSpan>), FrameError> {
    loop {
        match read_frame(stream, frame_deadline)? {
            ReadOutcome::Frame((kind, payload)) => {
                return Response::decode_with_spans(kind, &payload)
            }
            ReadOutcome::Eof => return Err(FrameError::Truncated),
            ReadOutcome::Idle => {
                if Instant::now() >= overall_deadline {
                    return Err(FrameError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "no response before the deadline",
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        for s in [&client, &server] {
            cf_obs::net::harden(s, Duration::from_millis(100)).unwrap();
        }
        (client, server)
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let (mut client, mut server) = pair();
        write_response(&mut client, resp).unwrap();
        read_response(
            &mut server,
            Duration::from_secs(1),
            Instant::now() + Duration::from_secs(1),
        )
        .unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let ctx = TraceContext {
            trace_id: 0xfeed_0000_0000_0042,
            parent_span: 3,
            sampled: true,
        };
        let cases = [
            Request::Health,
            Request::Profile,
            Request::Stats,
            Request::predict(7, 42),
            Request::Predict {
                user: 7,
                item: 42,
                trace: Some(ctx),
            },
            Request::recommend_top_n(3, 10, 100, u32::MAX),
            Request::RecommendTopN {
                user: 3,
                n: 10,
                item_start: 100,
                item_end: u32::MAX,
                trace: Some(ctx),
            },
            Request::predict_batch(vec![]),
            Request::PredictBatch {
                pairs: vec![(0, 0), (7, 42), (u32::MAX, u32::MAX)],
                trace: Some(TraceContext {
                    trace_id: 1,
                    parent_span: 0,
                    sampled: false,
                }),
            },
        ];
        for req in cases {
            let (mut client, mut server) = pair();
            write_request(&mut client, &req).unwrap();
            match read_request(&mut server, Duration::from_secs(1)).unwrap() {
                ReadOutcome::Frame(got) => assert_eq!(got, req),
                other => panic!("expected a frame, got {other:?}"),
            }
        }
    }

    /// A predict frame from a build predating trace propagation (no
    /// trailing context bytes) must decode with `trace: None` — and a
    /// garbled tail must degrade to `None`, never to a frame error.
    #[test]
    fn requests_without_trailing_trace_context_decode_as_none() {
        let mut payload = Vec::new();
        put_u32(&mut payload, 7);
        put_u32(&mut payload, 42);
        match Request::decode(KIND_PREDICT, &payload).unwrap() {
            Request::Predict { user, item, trace } => {
                assert_eq!((user, item), (7, 42));
                assert_eq!(trace, None);
            }
            other => panic!("{other:?}"),
        }

        // Truncated context tail: flag byte present, id cut short.
        payload.push(1);
        payload.extend_from_slice(&[0xaa; 3]);
        match Request::decode(KIND_PREDICT, &payload).unwrap() {
            Request::Predict { trace, .. } => assert_eq!(trace, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_spans_round_trip_and_profile_stays_span_free() {
        let spans = vec![
            RemoteSpan {
                origin: String::new(),
                name: "remote.request".to_string(),
                start_ns: 0,
                dur_ns: 12_345,
                depth: 0,
            },
            RemoteSpan {
                origin: String::new(),
                name: "estimator.sir".to_string(),
                start_ns: 100,
                dur_ns: 9_000,
                depth: 1,
            },
        ];
        let resp = Response::Prediction(WirePrediction {
            fused: 3.5,
            level: 0,
            fallback: false,
        });
        let (mut client, mut server) = pair();
        write_response_with_spans(&mut client, &resp, &spans).unwrap();
        let (got, got_spans) = read_response_with_spans(
            &mut server,
            Duration::from_secs(1),
            Instant::now() + Duration::from_secs(1),
        )
        .unwrap();
        assert_eq!(got, resp);
        assert_eq!(got_spans.len(), 2);
        assert_eq!(got_spans[0].name, "remote.request");
        assert_eq!(got_spans[1].dur_ns, 9_000);
        assert_eq!(got_spans[1].depth, 1);

        // A plain read_response on the same bytes just drops the spans.
        let (mut client, mut server) = pair();
        write_response_with_spans(&mut client, &resp, &spans).unwrap();
        assert_eq!(roundtrip_response_on(&mut server), resp);

        // Profile cannot carry spans: its trailing bytes are the
        // generation field, which must survive untouched.
        let profile = Response::Profile(WireProfile {
            scale_min: 1.0,
            scale_max: 5.0,
            global_mean: 3.0,
            num_items: 4,
            user_means: vec![2.0],
            generation: 7,
        });
        let (mut client, mut server) = pair();
        write_response_with_spans(&mut client, &profile, &spans).unwrap();
        let (got, got_spans) = read_response_with_spans(
            &mut server,
            Duration::from_secs(1),
            Instant::now() + Duration::from_secs(1),
        )
        .unwrap();
        assert_eq!(got, profile);
        assert!(got_spans.is_empty());
    }

    /// A garbled span tail yields the spans that decoded cleanly — the
    /// telemetry blob can never fail the serving answer.
    #[test]
    fn garbled_span_tail_degrades_to_no_spans() {
        let resp = Response::Prediction(WirePrediction {
            fused: 2.0,
            level: 1,
            fallback: false,
        });
        let mut payload = resp.payload();
        put_u32(&mut payload, 5); // claims 5 spans, carries half of one
        put_u16(&mut payload, 4);
        payload.extend_from_slice(b"se");
        let (got, spans) = Response::decode_with_spans(KIND_R_PREDICTION, &payload).unwrap();
        assert_eq!(got, resp);
        assert!(spans.is_empty());
    }

    #[test]
    fn stats_frames_round_trip() {
        let stats = WireStats {
            shard_id: 3,
            generation: 12,
            snapshot: vec![1, 0, 0, 9, 255, 42],
        };
        match roundtrip_response(&Response::Stats(stats.clone())) {
            Response::Stats(got) => assert_eq!(got, stats),
            other => panic!("{other:?}"),
        }

        // A stats length word lying about the payload is malformed.
        let mut payload = Vec::new();
        put_u32(&mut payload, 3);
        put_u64(&mut payload, 12);
        put_u32(&mut payload, 1_000_000);
        assert!(matches!(
            Response::decode(KIND_R_STATS, &payload),
            Err(FrameError::Malformed(_))
        ));
    }

    fn roundtrip_response_on(server: &mut TcpStream) -> Response {
        read_response(
            server,
            Duration::from_secs(1),
            Instant::now() + Duration::from_secs(1),
        )
        .unwrap()
    }

    #[test]
    fn responses_round_trip_bit_for_bit() {
        let fused = std::f64::consts::PI;
        match roundtrip_response(&Response::Prediction(WirePrediction {
            fused,
            level: 2,
            fallback: false,
        })) {
            Response::Prediction(p) => {
                assert_eq!(p.fused.to_bits(), fused.to_bits());
                assert_eq!(p.level, 2);
                assert!(!p.fallback);
            }
            other => panic!("{other:?}"),
        }

        let items = vec![(5u32, 4.75_f64), (2, 4.75), (9, 1.0 / 3.0)];
        match roundtrip_response(&Response::TopN(items.clone())) {
            Response::TopN(got) => {
                assert_eq!(got.len(), items.len());
                for (a, b) in got.iter().zip(&items) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                }
            }
            other => panic!("{other:?}"),
        }

        let profile = WireProfile {
            scale_min: 1.0,
            scale_max: 5.0,
            global_mean: 3.6007,
            num_items: 100,
            user_means: vec![1.5, f64::NAN, 4.25],
            generation: 9,
        };
        match roundtrip_response(&Response::Profile(profile.clone())) {
            Response::Profile(got) => {
                assert_eq!(got.num_items, 100);
                assert_eq!(got.user_means.len(), 3);
                assert_eq!(got.generation, 9);
                // NaN user means (users with no ratings) must survive the
                // wire — compare bits, not values.
                for (a, b) in got.user_means.iter().zip(&profile.user_means) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("{other:?}"),
        }

        let preds = vec![
            Some(WirePrediction {
                fused,
                level: 0,
                fallback: false,
            }),
            None,
            Some(WirePrediction {
                fused: f64::NAN,
                level: 5,
                fallback: true,
            }),
        ];
        match roundtrip_response(&Response::Predictions(preds.clone())) {
            Response::Predictions(got) => {
                assert_eq!(got.len(), preds.len());
                for (a, b) in got.iter().zip(&preds) {
                    match (a, b) {
                        (Some(x), Some(y)) => {
                            assert_eq!(x.fused.to_bits(), y.fused.to_bits());
                            assert_eq!(x.level, y.level);
                            assert_eq!(x.fallback, y.fallback);
                        }
                        (None, None) => {}
                        other => panic!("{other:?}"),
                    }
                }
            }
            other => panic!("{other:?}"),
        }

        match roundtrip_response(&Response::Error {
            code: ERR_OUT_OF_RANGE,
            message: "user 900 not in model".into(),
        }) {
            Response::Error { code, message } => {
                assert_eq!(code, ERR_OUT_OF_RANGE);
                assert!(message.contains("900"));
            }
            other => panic!("{other:?}"),
        }
    }

    /// Health and profile frames from a build predating the trailing
    /// `generation` field must decode with generation 0 — the documented
    /// append-only evolution rule, exercised both ways: short payloads
    /// decode leniently, and longer payloads from *newer* builds are
    /// already ignored by old decoders.
    #[test]
    fn frames_without_trailing_generation_decode_as_generation_zero() {
        // Hand-build the old 20-byte health payload.
        let mut payload = Vec::new();
        put_u32(&mut payload, 3);
        put_u64(&mut payload, 80);
        put_u64(&mut payload, 120);
        match Response::decode(KIND_R_HEALTH, &payload).unwrap() {
            Response::Health(h) => {
                assert_eq!((h.shard_id, h.num_users, h.num_items), (3, 80, 120));
                assert_eq!(h.generation, 0);
            }
            other => panic!("{other:?}"),
        }

        // And the old profile payload, without the trailing generation.
        let mut payload = Vec::new();
        put_f64(&mut payload, 1.0);
        put_f64(&mut payload, 5.0);
        put_f64(&mut payload, 3.0);
        put_u64(&mut payload, 10);
        put_u64(&mut payload, 2);
        put_f64(&mut payload, 2.5);
        put_f64(&mut payload, 4.5);
        match Response::decode(KIND_R_PROFILE, &payload).unwrap() {
            Response::Profile(p) => {
                assert_eq!(p.user_means.len(), 2);
                assert_eq!(p.generation, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        let (mut client, mut server) = pair();
        let req = Request::Predict {
            user: 1,
            item: 2,
            trace: None,
        };
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC);
        raw.extend_from_slice(&VERSION.to_le_bytes());
        raw.extend_from_slice(&req.kind().to_le_bytes());
        let payload = req.payload();
        raw.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        raw.extend_from_slice(&payload);
        raw.extend_from_slice(&cfsf_core::crc32(&payload).to_le_bytes());
        // Flip one payload bit.
        let flip = HEADER_LEN + 2;
        raw[flip] ^= 0x01;
        client.write_all(&raw).unwrap();
        match read_request(&mut server, Duration::from_secs(1)) {
            Err(FrameError::BadCrc { .. }) => {}
            other => panic!("expected BadCrc, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_version_kind_and_oversize_are_rejected() {
        // Bad magic.
        let (mut client, mut server) = pair();
        client.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(matches!(
            read_request(&mut server, Duration::from_secs(1)),
            Err(FrameError::BadMagic(_))
        ));

        // Future version.
        let (mut client, mut server) = pair();
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC);
        raw.extend_from_slice(&99u16.to_le_bytes());
        raw.extend_from_slice(&KIND_HEALTH.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        raw.extend_from_slice(&cfsf_core::crc32(&[]).to_le_bytes());
        client.write_all(&raw).unwrap();
        assert!(matches!(
            read_request(&mut server, Duration::from_secs(1)),
            Err(FrameError::BadVersion(99))
        ));

        // Unknown kind.
        let (mut client, mut server) = pair();
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC);
        raw.extend_from_slice(&VERSION.to_le_bytes());
        raw.extend_from_slice(&1234u16.to_le_bytes());
        raw.extend_from_slice(&0u32.to_le_bytes());
        raw.extend_from_slice(&cfsf_core::crc32(&[]).to_le_bytes());
        client.write_all(&raw).unwrap();
        assert!(matches!(
            read_request(&mut server, Duration::from_secs(1)),
            Err(FrameError::UnknownKind(1234))
        ));

        // Oversized declared length: rejected before allocation.
        let (mut client, mut server) = pair();
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC);
        raw.extend_from_slice(&VERSION.to_le_bytes());
        raw.extend_from_slice(&KIND_HEALTH.to_le_bytes());
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        client.write_all(&raw).unwrap();
        assert!(matches!(
            read_request(&mut server, Duration::from_secs(1)),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn batch_count_lying_about_payload_is_malformed() {
        // A batch frame claiming 1M pairs but carrying only the count
        // word must be rejected before the decoder allocates for it.
        let (mut client, mut server) = pair();
        let mut payload = Vec::new();
        put_u32(&mut payload, 1_000_000);
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC);
        raw.extend_from_slice(&VERSION.to_le_bytes());
        raw.extend_from_slice(&KIND_PREDICT_BATCH.to_le_bytes());
        raw.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        raw.extend_from_slice(&payload);
        raw.extend_from_slice(&cfsf_core::crc32(&payload).to_le_bytes());
        client.write_all(&raw).unwrap();
        assert!(matches!(
            read_request(&mut server, Duration::from_secs(1)),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn idle_then_eof_are_distinguished() {
        let (client, mut server) = pair();
        // No bytes yet: idle tick.
        assert!(matches!(
            read_request(&mut server, Duration::from_secs(1)),
            Ok(ReadOutcome::Idle)
        ));
        drop(client);
        // Peer gone on a frame boundary: clean EOF.
        assert!(matches!(
            read_request(&mut server, Duration::from_secs(1)),
            Ok(ReadOutcome::Eof)
        ));
    }

    #[test]
    fn truncated_mid_frame_is_an_error() {
        let (mut client, mut server) = pair();
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC);
        raw.extend_from_slice(&VERSION.to_le_bytes());
        client.write_all(&raw).unwrap();
        drop(client);
        assert!(matches!(
            read_request(&mut server, Duration::from_secs(1)),
            Err(FrameError::Truncated)
        ));
    }
}
