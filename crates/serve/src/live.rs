//! The serving tier's *only* doorway to the model: a handle over the
//! RCU-style generation cell from `cfsf_core::refresh`.
//!
//! Every request path in this crate loads the model through a
//! [`ModelHandle`] — never by holding a raw model reference across
//! requests. That is what makes zero-pause refresh work: a background
//! rebuild publishes a new generation into the cell, the next request
//! loads it, and requests already in flight finish on the generation
//! they started with (their `Arc` keeps it alive). The
//! `model-access-outside-generation` cf-analysis lint enforces the
//! doorway: this file is the only one in `crates/serve/src` allowed to
//! name the concrete model type.

use std::sync::Arc;

use cfsf_core::{Cfsf, GenCell};

/// A cloneable handle to the model generation currently serving.
///
/// Two constructions:
/// - [`ModelHandle::fixed`] wraps a plain fitted model — generation 0
///   forever; the classic static-shard deployment.
/// - [`ModelHandle::from_cell`] shares a live [`GenCell`] (typically
///   [`cfsf_core::SelfHealingCfsf::cell`]) so a background refresh
///   worker swaps generations under the server without a restart.
#[derive(Clone)]
pub struct ModelHandle {
    cell: Arc<GenCell<Cfsf>>,
}

impl ModelHandle {
    /// A handle that always serves `model` (generation 0).
    pub fn fixed(model: Arc<Cfsf>) -> Self {
        Self {
            cell: Arc::new(GenCell::new(model)),
        }
    }

    /// A handle sharing a live generation cell — publishes through the
    /// cell become visible to this handle's next [`ModelHandle::load`].
    pub fn from_cell(cell: Arc<GenCell<Cfsf>>) -> Self {
        Self { cell }
    }

    /// The model generation currently serving. The returned `Arc` pins
    /// that generation for as long as the caller holds it, so one
    /// request always computes against one consistent model even while
    /// a refresh publishes mid-request.
    pub fn load(&self) -> Arc<Cfsf> {
        self.cell.load()
    }

    /// [`ModelHandle::load`] plus the generation id the snapshot belongs
    /// to — the pair is read under one guard, never torn.
    pub fn load_with_generation(&self) -> (Arc<Cfsf>, u64) {
        self.cell.load_with_generation()
    }

    /// The current generation id (monitoring only; pair reads go through
    /// [`ModelHandle::load_with_generation`]).
    pub fn generation(&self) -> u64 {
        self.cell.generation()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cfsf_core::CfsfConfig;

    fn fitted() -> Arc<Cfsf> {
        let d = cf_data::SyntheticConfig::small().generate();
        Arc::new(Cfsf::fit(&d.matrix, CfsfConfig::small()).unwrap())
    }

    #[test]
    fn fixed_handle_serves_generation_zero() {
        let model = fitted();
        let handle = ModelHandle::fixed(Arc::clone(&model));
        let (loaded, generation) = handle.load_with_generation();
        assert_eq!(generation, 0);
        assert!(Arc::ptr_eq(&loaded, &model));
    }

    #[test]
    fn cell_handle_observes_published_generations() {
        let a = fitted();
        let cell = Arc::new(GenCell::new(Arc::clone(&a)));
        let handle = ModelHandle::from_cell(Arc::clone(&cell));
        assert_eq!(handle.generation(), 0);

        let b = fitted();
        cell.publish(Arc::clone(&b));
        let (loaded, generation) = handle.load_with_generation();
        assert_eq!(generation, 1);
        assert!(Arc::ptr_eq(&loaded, &b));
        // The old generation stays alive for holders of its Arc.
        assert!(Arc::strong_count(&a) >= 1);
    }
}
