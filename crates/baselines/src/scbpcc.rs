//! SCBPCC — Scalable Cluster-Based smoothing CF (Xue et al., SIGIR 2005).
//!
//! The cluster-smoothing predecessor CFSF builds on. SCBPCC:
//!
//! 1. clusters users with K-means (PCC metric),
//! 2. smooths every unrated cell within its cluster (the exact Eq. 7–8
//!    scheme CFSF reuses — this crate shares `cf-cluster` with CFSF),
//! 3. at request time, ranks **every** user against the active user with
//!    a smoothing-discounting weighted PCC, keeps the top `K`, and makes
//!    a mean-centered user-based prediction over the smoothed ratings.
//!
//! The crucial differences from CFSF, which the paper's §II-C calls out:
//! no item-side evidence (no GIS, no `SIR'`/`SUIR'`), and the neighbor
//! search scans the *entire* user population per active user instead of
//! walking a per-user cluster ranking — which is exactly why Fig. 5 shows
//! SCBPCC ≈2.4× slower online than CFSF.

use cf_cluster::{ClusterModel, ClusterModelConfig, KMeansConfig};
use cf_matrix::{ItemId, Predictor, RatingMatrix, UserId};
use cf_similarity::{smoothing_weight, weighted_user_pcc};

use crate::common::{fallback_rating, in_range};

/// Configuration for [`Scbpcc`].
#[derive(Debug, Clone)]
pub struct ScbpccConfig {
    /// Number of user clusters (Xue et al. also used tens of clusters).
    pub clusters: usize,
    /// Neighborhood size for the online prediction.
    pub k: usize,
    /// Smoothing-discount parameter (their λ-like weight): original
    /// ratings weigh `w`, smoothed ones `1-w`.
    pub w: f64,
    /// K-means iteration cap.
    pub kmeans_iterations: usize,
    /// Seed for K-means.
    pub seed: u64,
    /// Worker threads for the offline phase.
    pub threads: Option<usize>,
}

impl Default for ScbpccConfig {
    fn default() -> Self {
        Self {
            clusters: 30,
            k: 25,
            w: 0.35,
            kmeans_iterations: 20,
            seed: 42,
            threads: None,
        }
    }
}

/// The SCBPCC baseline.
#[derive(Debug)]
pub struct Scbpcc {
    matrix: RatingMatrix,
    model: ClusterModel,
    config: ScbpccConfig,
}

impl Scbpcc {
    /// Clusters and smooths (offline phase).
    pub fn fit(matrix: &RatingMatrix, config: ScbpccConfig) -> Self {
        let model = ClusterModel::fit(
            matrix,
            &ClusterModelConfig {
                kmeans: KMeansConfig {
                    k: config.clusters,
                    max_iterations: config.kmeans_iterations,
                    seed: config.seed,
                    threads: config.threads,
                    ..Default::default()
                },
                threads: config.threads,
            },
        );
        Self {
            matrix: matrix.clone(),
            model,
            config,
        }
    }

    /// Fits with defaults.
    pub fn fit_default(matrix: &RatingMatrix) -> Self {
        Self::fit(matrix, ScbpccConfig::default())
    }

    /// Top-`K` neighbors of `user`, scanned over the whole population.
    /// Deliberately *uncached and unrestricted*: per the CFSF paper,
    /// SCBPCC "identifies the similar items over the entire item-user
    /// matrix each time", which is the scalability gap Fig. 5 measures.
    fn top_k(&self, user: UserId) -> Vec<(UserId, f64)> {
        let m = &self.matrix;
        let (items, vals) = m.user_row(user);
        if items.is_empty() {
            return Vec::new();
        }
        let mean_a = m.user_mean(user);
        let mut scored: Vec<(UserId, f64)> = m
            .users()
            .filter(|&u| u != user && m.user_count(u) > 0)
            .filter_map(|u| {
                let s = weighted_user_pcc(
                    items,
                    vals,
                    mean_a,
                    &self.model.smoothed.dense,
                    u,
                    m.user_mean(u),
                    self.config.w,
                );
                (s > 0.0).then_some((u, s))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("similarities are finite")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(self.config.k);
        scored
    }
}

impl Predictor for Scbpcc {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        if !in_range(&self.matrix, user, item) {
            return None;
        }
        let m = &self.matrix;
        let dense = &self.model.smoothed.dense;
        let mut num = 0.0;
        let mut den = 0.0;
        for (u_t, s) in self.top_k(user) {
            let Some(r) = dense.get(u_t, item) else {
                continue;
            };
            let w = smoothing_weight(dense.is_original(u_t, item), self.config.w);
            num += w * s * (r - m.user_mean(u_t));
            den += w * s;
        }
        let raw = if den > f64::EPSILON {
            m.user_mean(user) + num / den
        } else {
            // the smoothed matrix itself is the last-resort estimate
            dense
                .get(user, item)
                .unwrap_or_else(|| fallback_rating(m, user, item))
        };
        Some(m.scale().clamp(raw))
    }

    fn name(&self) -> &'static str {
        "SCBPCC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::SyntheticConfig;

    fn small() -> RatingMatrix {
        SyntheticConfig::small().generate().matrix
    }

    fn small_config() -> ScbpccConfig {
        ScbpccConfig {
            clusters: 4,
            k: 10,
            ..Default::default()
        }
    }

    #[test]
    fn predictions_in_range_everywhere_sampled() {
        let m = small();
        let s = Scbpcc::fit(&m, small_config());
        for u in (0..m.num_users()).step_by(11) {
            for i in (0..m.num_items()).step_by(17) {
                let r = s.predict(UserId::from(u), ItemId::from(i)).unwrap();
                assert!((1.0..=5.0).contains(&r));
            }
        }
    }

    #[test]
    fn top_k_is_bounded_sorted_and_positive() {
        let m = small();
        let s = Scbpcc::fit(&m, small_config());
        for u in 0..10usize {
            let top = s.top_k(UserId::from(u));
            assert!(top.len() <= 10);
            assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
            assert!(top.iter().all(|&(_, v)| v > 0.0));
        }
    }

    #[test]
    fn deterministic() {
        let m = small();
        let a = Scbpcc::fit(&m, small_config());
        let b = Scbpcc::fit(&m, small_config());
        for u in (0..m.num_users()).step_by(23) {
            for i in (0..m.num_items()).step_by(29) {
                assert_eq!(
                    a.predict(UserId::from(u), ItemId::from(i)),
                    b.predict(UserId::from(u), ItemId::from(i))
                );
            }
        }
    }

    #[test]
    fn out_of_range_returns_none() {
        let m = small();
        let s = Scbpcc::fit(&m, small_config());
        assert!(s.predict(UserId::new(50_000), ItemId::new(0)).is_none());
    }
}
