//! SF — Similarity Fusion (Wang, de Vries & Reinders, SIGIR 2006), as the
//! CFSF paper frames it (Eq. 4 / Fig. 1a).
//!
//! SF unifies item-based and user-based CF by fusing three rating sources
//! over the **entire** matrix: SIR (same user, similar items), SUR
//! (similar users, same item) and SUIR (similar users, similar items).
//! The original paper derives the combination probabilistically; the CFSF
//! paper abstracts it as a fusion function `£{SIR, SUR, SUIR}` with
//! weights, which is what we implement — identical estimator shapes to
//! CFSF's Eq. 12 but with *global* neighborhoods, no clustering, no
//! smoothing, and no locality reduction. The per-request cost is what
//! makes SF slow, which is precisely the comparison the paper draws.

use cf_matrix::{ItemId, Predictor, RatingMatrix, UserId};
use cf_similarity::{pair_weight, user_pcc, Gis, GisConfig};

use crate::common::{fallback_rating, in_range};

/// Configuration for [`SimilarityFusion`].
#[derive(Debug, Clone)]
pub struct SfConfig {
    /// Weight between the item-based and user-based estimators
    /// (λ in Eq. 14's sense). Wang et al. found user evidence slightly
    /// more reliable; 0.6 is a reasonable default.
    pub lambda: f64,
    /// Weight of the SUIR cross term (δ in Eq. 14's sense).
    pub delta: f64,
    /// Similar items considered per request (global top-N by PCC).
    pub top_items: usize,
    /// Similar users considered per request (global top-N by PCC).
    pub top_users: usize,
    /// GIS build parameters.
    pub gis: GisConfig,
}

impl Default for SfConfig {
    fn default() -> Self {
        Self {
            lambda: 0.6,
            delta: 0.15,
            top_items: 50,
            top_users: 50,
            gis: GisConfig::default(),
        }
    }
}

/// Cached per-user neighbor list, shared across requests.
type UserCache =
    std::sync::RwLock<std::collections::HashMap<UserId, std::sync::Arc<Vec<(UserId, f64)>>>>;

/// The SF baseline.
#[derive(Debug)]
pub struct SimilarityFusion {
    matrix: RatingMatrix,
    gis: Gis,
    config: SfConfig,
    /// Per-user neighbor cache. SF itself searches the whole matrix per
    /// request; caching the (item-independent) result keeps the MAE
    /// harness affordable without changing any prediction.
    user_cache: UserCache,
}

impl SimilarityFusion {
    /// Precomputes item similarities; user similarities are computed per
    /// request over the whole matrix (that is SF's cost profile).
    pub fn fit(matrix: &RatingMatrix, config: SfConfig) -> Self {
        let gis = Gis::build(matrix, &config.gis);
        Self {
            matrix: matrix.clone(),
            gis,
            config,
            user_cache: UserCache::default(),
        }
    }

    /// Fits with defaults.
    pub fn fit_default(matrix: &RatingMatrix) -> Self {
        Self::fit(matrix, SfConfig::default())
    }

    /// The `top_users` most similar users to `user`, searched over the
    /// entire user population (no clustering shortcut), cached per user.
    fn global_top_users(&self, user: UserId) -> std::sync::Arc<Vec<(UserId, f64)>> {
        if let Some(hit) = self.user_cache.read().expect("cache lock").get(&user) {
            return std::sync::Arc::clone(hit);
        }
        let computed = std::sync::Arc::new(self.compute_top_users(user));
        std::sync::Arc::clone(
            self.user_cache
                .write()
                .expect("cache lock")
                .entry(user)
                .or_insert(computed),
        )
    }

    fn compute_top_users(&self, user: UserId) -> Vec<(UserId, f64)> {
        let m = &self.matrix;
        let mut scored: Vec<(UserId, f64)> = m
            .users()
            .filter(|&u| u != user)
            .filter_map(|u| {
                let s = user_pcc(m, user, u);
                (s > 0.0).then_some((u, s))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("similarities are finite")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(self.config.top_users);
        scored
    }
}

impl Predictor for SimilarityFusion {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        if !in_range(&self.matrix, user, item) {
            return None;
        }
        let m = &self.matrix;
        let similar_items = self.gis.top_m(item, self.config.top_items);
        let similar_users = self.global_top_users(user);

        // SIR over the global item neighborhood.
        let mut num = 0.0;
        let mut den = 0.0;
        for &(i_c, s) in similar_items {
            if let Some(r) = m.get(user, i_c) {
                num += s * r;
                den += s;
            }
        }
        let sir = (den > f64::EPSILON).then(|| num / den);

        // SUR over the global user neighborhood (mean-centered).
        let mut num = 0.0;
        let mut den = 0.0;
        for &(u_c, s) in similar_users.iter() {
            if let Some(r) = m.get(u_c, item) {
                num += s * (r - m.user_mean(u_c));
                den += s;
            }
        }
        let sur = (den > f64::EPSILON).then(|| m.user_mean(user) + num / den);

        // SUIR: similar users on similar items, Eq. 13 pair weight (the
        // CFSF paper defines Eq. 3's weight by reference to Eq. 13).
        let mut num = 0.0;
        let mut den = 0.0;
        for &(u_t, su) in similar_users.iter() {
            for &(i_s, si) in similar_items {
                let Some(r) = m.get(u_t, i_s) else { continue };
                let pw = pair_weight(si, su);
                if pw <= 0.0 {
                    continue;
                }
                num += pw * r;
                den += pw;
            }
        }
        let suir = (den > f64::EPSILON).then(|| num / den);

        let lambda = self.config.lambda;
        let delta = self.config.delta;
        let mut num = 0.0;
        let mut den = 0.0;
        for (v, w) in [
            (sir, (1.0 - delta) * (1.0 - lambda)),
            (sur, (1.0 - delta) * lambda),
            (suir, delta),
        ] {
            if let Some(v) = v {
                num += w * v;
                den += w;
            }
        }
        let raw = if den > f64::EPSILON {
            num / den
        } else {
            fallback_rating(m, user, item)
        };
        Some(m.scale().clamp(raw))
    }

    fn name(&self) -> &'static str {
        "SF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::SyntheticConfig;
    use cf_matrix::MatrixBuilder;

    fn small() -> RatingMatrix {
        SyntheticConfig::small().generate().matrix
    }

    #[test]
    fn predictions_are_in_range_and_deterministic() {
        let m = small();
        let sf = SimilarityFusion::fit_default(&m);
        for u in (0..m.num_users()).step_by(17) {
            for i in (0..m.num_items()).step_by(23) {
                let a = sf.predict(UserId::from(u), ItemId::from(i)).unwrap();
                let b = sf.predict(UserId::from(u), ItemId::from(i)).unwrap();
                assert_eq!(a, b);
                assert!((1.0..=5.0).contains(&a));
            }
        }
    }

    #[test]
    fn fuses_agreeing_evidence_toward_it() {
        // Build a matrix where both item and user evidence say "high".
        let mut b = MatrixBuilder::new();
        for u in 0..5u32 {
            b.push(UserId::new(u), ItemId::new(0), 5.0 - (u % 2) as f64);
            b.push(UserId::new(u), ItemId::new(1), 5.0 - (u % 2) as f64);
            b.push(UserId::new(u), ItemId::new(2), 1.0 + (u % 2) as f64);
        }
        // target user agrees with everyone, hasn't rated item 1
        b.push(UserId::new(5), ItemId::new(0), 5.0);
        b.push(UserId::new(5), ItemId::new(2), 1.0);
        let m = b.build().unwrap();
        let sf = SimilarityFusion::fit_default(&m);
        let r = sf.predict(UserId::new(5), ItemId::new(1)).unwrap();
        assert!(r > 3.8, "got {r}");
    }

    #[test]
    fn out_of_range_returns_none() {
        let m = small();
        let sf = SimilarityFusion::fit_default(&m);
        assert!(sf.predict(UserId::new(10_000), ItemId::new(0)).is_none());
    }
}
