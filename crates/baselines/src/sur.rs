//! SUR — traditional user-based CF with PCC (Eq. 2 of the CFSF paper).
//!
//! Predicts `r(u_b, i_a)` from the ratings like-minded users gave the
//! active item. The like-minded users are found by scanning *every* user
//! who rated the item and correlating their full profiles — the
//! whole-matrix search whose latency motivates CFSF.

use cf_matrix::{ItemId, Predictor, RatingMatrix, UserId};
use cf_similarity::user_pcc;

use crate::common::{fallback_rating, in_range};

/// Configuration for [`Sur`].
#[derive(Debug, Clone)]
pub struct SurConfig {
    /// Optional cap: use only the `n` most similar raters. `None` uses
    /// every positively correlated rater (literal Eq. 2).
    pub neighborhood: Option<usize>,
    /// When true, deviations from each neighbor's mean are averaged and
    /// re-anchored on the active user's mean (Resnick's formula) instead
    /// of the plain weighted average Eq. 2 writes. The paper's Eq. 2 is
    /// the plain form; the centered form is the stronger textbook variant
    /// and is what `SUR'` inside CFSF uses.
    pub mean_centered: bool,
}

impl Default for SurConfig {
    fn default() -> Self {
        Self {
            neighborhood: None,
            mean_centered: true,
        }
    }
}

/// User-based PCC predictor (the paper's "SUR" baseline).
#[derive(Debug)]
pub struct Sur {
    matrix: RatingMatrix,
    config: SurConfig,
}

impl Sur {
    /// SUR has no offline phase — it is the memory-based baseline that
    /// searches at request time; `fit` just snapshots the matrix.
    pub fn fit(matrix: &RatingMatrix, config: SurConfig) -> Self {
        Self {
            matrix: matrix.clone(),
            config,
        }
    }

    /// Fits with defaults.
    pub fn fit_default(matrix: &RatingMatrix) -> Self {
        Self::fit(matrix, SurConfig::default())
    }
}

impl Predictor for Sur {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        if !in_range(&self.matrix, user, item) {
            return None;
        }
        let m = &self.matrix;
        // Whole-matrix search: correlate against every rater of the item.
        let mut neighbors: Vec<(f64, f64, UserId)> = m
            .item_ratings(item)
            .filter(|&(u_c, _)| u_c != user)
            .filter_map(|(u_c, r)| {
                let s = user_pcc(m, user, u_c);
                (s > 0.0).then_some((s, r, u_c))
            })
            .collect();
        if let Some(limit) = self.config.neighborhood {
            neighbors.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .expect("similarities are finite")
                    .then(a.2.cmp(&b.2))
            });
            neighbors.truncate(limit);
        }

        let mut num = 0.0;
        let mut den = 0.0;
        for &(s, r, u_c) in &neighbors {
            if self.config.mean_centered {
                num += s * (r - m.user_mean(u_c));
            } else {
                num += s * r;
            }
            den += s;
        }
        let raw = if den > f64::EPSILON {
            if self.config.mean_centered {
                m.user_mean(user) + num / den
            } else {
                num / den
            }
        } else {
            fallback_rating(m, user, item)
        };
        Some(m.scale().clamp(raw))
    }

    fn name(&self) -> &'static str {
        "SUR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::MatrixBuilder;

    /// Users 0 and 1 agree; user 2 disagrees with both.
    fn matrix() -> RatingMatrix {
        let mut b = MatrixBuilder::new();
        let rows: [&[(u32, f64)]; 3] = [
            &[(0, 5.0), (1, 4.0), (2, 1.0)],
            &[(0, 4.0), (1, 5.0), (2, 2.0), (3, 5.0)],
            &[(0, 1.0), (1, 1.0), (2, 5.0), (3, 1.0)],
        ];
        for (u, row) in rows.iter().enumerate() {
            for &(i, r) in row.iter() {
                b.push(UserId::from(u), ItemId::new(i), r);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn follows_like_minded_users() {
        let m = matrix();
        let sur = Sur::fit_default(&m);
        // user 0 hasn't rated item 3; like-minded user 1 rated it 5,
        // disagreeing user 2 rated it 1 (but has sim ≤ 0 → excluded).
        let r = sur.predict(UserId::new(0), ItemId::new(3)).unwrap();
        assert!(r > 3.5, "got {r}");
    }

    #[test]
    fn plain_form_matches_equation_two() {
        let m = matrix();
        let sur = Sur::fit(
            &m,
            SurConfig {
                neighborhood: None,
                mean_centered: false,
            },
        );
        // only user 1 is a positive neighbor of user 0 among raters of
        // item 3 → plain weighted average = exactly user 1's rating.
        let r = sur.predict(UserId::new(0), ItemId::new(3)).unwrap();
        assert!((r - 5.0).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn falls_back_without_positive_neighbors() {
        let m = matrix();
        let sur = Sur::fit_default(&m);
        // user 2 disagrees with everyone; predicting an item only others
        // rated must fall back to user 2's mean.
        let r = sur.predict(UserId::new(2), ItemId::new(3)).unwrap();
        // but user 2 rated item 3! pick an unrated cell instead: all items
        // are rated by user 2 except none… extend: use out-of-profile item
        let mut b = MatrixBuilder::with_dims(3, 5);
        for (u, i, v) in m.triplets() {
            b.push(u, i, v);
        }
        b.push(UserId::new(0), ItemId::new(4), 4.0);
        let m2 = b.build().unwrap();
        let sur2 = Sur::fit_default(&m2);
        let r2 = sur2.predict(UserId::new(2), ItemId::new(4)).unwrap();
        let expected = m2.user_mean(UserId::new(2));
        assert!((r2 - expected).abs() < 1e-12);
        // silence unused warning for the first prediction
        assert!((1.0..=5.0).contains(&r));
    }

    #[test]
    fn neighborhood_cap_takes_strongest() {
        let m = matrix();
        let sur = Sur::fit(
            &m,
            SurConfig {
                neighborhood: Some(1),
                mean_centered: true,
            },
        );
        let r = sur.predict(UserId::new(0), ItemId::new(3)).unwrap();
        assert!((1.0..=5.0).contains(&r));
    }

    #[test]
    fn out_of_range_returns_none() {
        let m = matrix();
        let sur = Sur::fit_default(&m);
        assert!(sur.predict(UserId::new(9), ItemId::new(0)).is_none());
    }
}
