//! AM — the triadic Aspect Model (Hofmann, "Latent semantic models for
//! collaborative filtering", TOIS 2004), trained with EM.
//!
//! A latent class `z` generates `(user, item, rating)` jointly:
//!
//! `P(u, i, r) = Σ_z P(z) · P(u|z) · P(i|z) · P(r|z)`
//!
//! with `P(r|z)` a multinomial over the five star values. Prediction is
//! the posterior-expected rating `E[r | u, i]`. This is the "AM" column of
//! the paper's Table III — the model-based comparator that scales well but
//! underperforms on sparse data (exactly what the table shows: AM is the
//! weakest baseline on ML_100).

use cf_matrix::{ItemId, Predictor, RatingMatrix, UserId};
use rand::{Rng, SeedableRng};

use crate::common::{fallback_rating, in_range};

/// Configuration for [`AspectModel`].
#[derive(Debug, Clone)]
pub struct AspectConfig {
    /// Number of latent aspects `z`.
    pub aspects: usize,
    /// EM iterations.
    pub iterations: usize,
    /// Dirichlet-style smoothing added to every multinomial cell.
    pub smoothing: f64,
    /// RNG seed for responsibility initialization.
    pub seed: u64,
}

impl Default for AspectConfig {
    fn default() -> Self {
        Self {
            aspects: 20,
            iterations: 40,
            smoothing: 0.1,
            seed: 42,
        }
    }
}

/// The fitted aspect model.
#[derive(Debug)]
pub struct AspectModel {
    matrix: RatingMatrix,
    /// `P(z)`.
    p_z: Vec<f64>,
    /// `P(u|z)`, aspect-major: `p_u_z[z][u]`.
    p_u_z: Vec<Vec<f64>>,
    /// `P(i|z)`, aspect-major.
    p_i_z: Vec<Vec<f64>>,
    /// `P(r|z)` over the discrete rating vocabulary, aspect-major.
    p_r_z: Vec<Vec<f64>>,
    /// The rating vocabulary (sorted distinct values, e.g. 1..=5).
    vocab: Vec<f64>,
}

impl AspectModel {
    /// Trains with EM on the observed triplets.
    pub fn fit(matrix: &RatingMatrix, config: AspectConfig) -> Self {
        assert!(config.aspects > 0, "aspects must be positive");
        let z_count = config.aspects;
        let p = matrix.num_users();
        let q = matrix.num_items();

        // Rating vocabulary: sorted distinct observed values.
        let mut vocab: Vec<f64> = matrix.triplets().map(|t| t.2).collect();
        vocab.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        vocab.dedup();
        let v_count = vocab.len();
        let vocab_index = |r: f64| -> usize {
            vocab
                .iter()
                .position(|&v| v == r)
                .expect("rating came from the matrix")
        };

        let triplets: Vec<(usize, usize, usize)> = matrix
            .triplets()
            .map(|(u, i, r)| (u.index(), i.index(), vocab_index(r)))
            .collect();
        let n = triplets.len();

        // Random soft initialization of responsibilities via randomized
        // initial parameters.
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut p_z = vec![1.0 / z_count as f64; z_count];
        let mut p_u_z: Vec<Vec<f64>> = (0..z_count).map(|_| random_simplex(&mut rng, p)).collect();
        let mut p_i_z: Vec<Vec<f64>> = (0..z_count).map(|_| random_simplex(&mut rng, q)).collect();
        let mut p_r_z: Vec<Vec<f64>> = (0..z_count)
            .map(|_| random_simplex(&mut rng, v_count))
            .collect();

        let s = config.smoothing;
        let mut resp = vec![0.0f64; z_count];
        for _ in 0..config.iterations {
            // Accumulators for the M step.
            let mut acc_z = vec![s; z_count];
            let mut acc_u = vec![vec![s; p]; z_count];
            let mut acc_i = vec![vec![s; q]; z_count];
            let mut acc_r = vec![vec![s; v_count]; z_count];

            for &(u, i, r) in &triplets {
                // E step for one observation.
                let mut total = 0.0;
                for z in 0..z_count {
                    let w = p_z[z] * p_u_z[z][u] * p_i_z[z][i] * p_r_z[z][r];
                    resp[z] = w;
                    total += w;
                }
                if total <= 0.0 {
                    // degenerate observation: spread uniformly
                    for rz in resp.iter_mut() {
                        *rz = 1.0 / z_count as f64;
                    }
                    total = 1.0;
                }
                for z in 0..z_count {
                    let g = resp[z] / total;
                    acc_z[z] += g;
                    acc_u[z][u] += g;
                    acc_i[z][i] += g;
                    acc_r[z][r] += g;
                }
            }

            // M step: normalize.
            let z_total: f64 = acc_z.iter().sum();
            for z in 0..z_count {
                p_z[z] = acc_z[z] / z_total;
                normalize(&mut acc_u[z]);
                normalize(&mut acc_i[z]);
                normalize(&mut acc_r[z]);
            }
            p_u_z = acc_u;
            p_i_z = acc_i;
            p_r_z = acc_r;
            let _ = n;
        }

        Self {
            matrix: matrix.clone(),
            p_z,
            p_u_z,
            p_i_z,
            p_r_z,
            vocab,
        }
    }

    /// Fits with defaults.
    pub fn fit_default(matrix: &RatingMatrix) -> Self {
        Self::fit(matrix, AspectConfig::default())
    }

    /// `E[r | u, i]` under the model, if the posterior has mass.
    fn expected_rating(&self, u: UserId, i: ItemId) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        for z in 0..self.p_z.len() {
            let w = self.p_z[z] * self.p_u_z[z][u.index()] * self.p_i_z[z][i.index()];
            if w <= 0.0 {
                continue;
            }
            let mean_r: f64 = self
                .vocab
                .iter()
                .zip(&self.p_r_z[z])
                .map(|(&r, &pr)| r * pr)
                .sum();
            num += w * mean_r;
            den += w;
        }
        (den > 0.0).then(|| num / den)
    }
}

fn random_simplex<R: Rng>(rng: &mut R, n: usize) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() + 0.01).collect();
    normalize(&mut v);
    v
}

fn normalize(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for x in v.iter_mut() {
            *x /= total;
        }
    }
}

impl Predictor for AspectModel {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        if !in_range(&self.matrix, user, item) {
            return None;
        }
        let raw = self
            .expected_rating(user, item)
            .unwrap_or_else(|| fallback_rating(&self.matrix, user, item));
        Some(self.matrix.scale().clamp(raw))
    }

    fn name(&self) -> &'static str {
        "AM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::MatrixBuilder;

    /// Two sharply separated blocks the model must be able to learn.
    fn blocks() -> RatingMatrix {
        let mut b = MatrixBuilder::new();
        for u in 0..10u32 {
            for i in 0..8u32 {
                let hi = (u < 5) == (i < 4);
                // leave one hole per user for prediction
                if i == (u % 8) {
                    continue;
                }
                b.push(UserId::new(u), ItemId::new(i), if hi { 5.0 } else { 1.0 });
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn learns_block_structure() {
        let m = blocks();
        let am = AspectModel::fit(
            &m,
            AspectConfig {
                aspects: 4,
                iterations: 60,
                ..Default::default()
            },
        );
        // user 0's hole is item 0 (block-high): expect a high prediction;
        // user 7's hole is item 7 (block-high for u≥5): also high.
        let r0 = am.predict(UserId::new(0), ItemId::new(0)).unwrap();
        assert!(r0 > 3.5, "got {r0}");
        let r7 = am.predict(UserId::new(7), ItemId::new(7)).unwrap();
        assert!(r7 > 3.5, "got {r7}");
        // cross-block cell should be low
        let r_cross = am.predict(UserId::new(0), ItemId::new(7)).unwrap();
        assert!(r_cross < 2.5, "got {r_cross}");
    }

    #[test]
    fn distributions_are_normalized() {
        let m = blocks();
        let am = AspectModel::fit(
            &m,
            AspectConfig {
                aspects: 3,
                iterations: 10,
                ..Default::default()
            },
        );
        let sz: f64 = am.p_z.iter().sum();
        assert!((sz - 1.0).abs() < 1e-9);
        for z in 0..3 {
            assert!((am.p_u_z[z].iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!((am.p_i_z[z].iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!((am.p_r_z[z].iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn vocabulary_is_sorted_distinct_observed_values() {
        let m = blocks();
        let am = AspectModel::fit_default(&m);
        assert_eq!(am.vocab, vec![1.0, 5.0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = blocks();
        let cfg = AspectConfig {
            aspects: 4,
            iterations: 15,
            ..Default::default()
        };
        let a = AspectModel::fit(&m, cfg.clone());
        let b = AspectModel::fit(&m, cfg);
        for u in 0..10u32 {
            assert_eq!(
                a.predict(UserId::new(u), ItemId::new(3)),
                b.predict(UserId::new(u), ItemId::new(3))
            );
        }
    }

    #[test]
    #[should_panic(expected = "aspects must be positive")]
    fn zero_aspects_panics() {
        let m = blocks();
        let _ = AspectModel::fit(
            &m,
            AspectConfig {
                aspects: 0,
                ..Default::default()
            },
        );
    }
}
