//! PD — Personality Diagnosis (Pennock, Horvitz, Lawrence & Giles,
//! UAI 2000), the hybrid memory/model comparator in Table III.
//!
//! PD assumes each user has a latent "true personality" — a vector of
//! true ratings — and observed ratings are the truth plus Gaussian noise.
//! The probability that the active user's personality equals user `u`'s is
//!
//! `P(pers = u | observed) ∝ Π_{j ∈ I(a)∩I(u)} exp(-(r_aj - r_uj)² / 2σ²)`
//!
//! and the predicted rating distribution for item `i` mixes each
//! candidate's rating of `i` under the same noise model. We report the
//! posterior mean (the MAE-optimal point estimate; the original paper
//! reports the mode, which optimizes 0/1 loss instead — noted in
//! DESIGN.md).

use cf_matrix::{ItemId, Predictor, RatingMatrix, UserId};

use crate::common::{fallback_rating, in_range};

/// Configuration for [`PersonalityDiagnosis`].
#[derive(Debug, Clone)]
pub struct PdConfig {
    /// Gaussian noise standard deviation σ (Pennock et al. used values
    /// around 1 for 1–5 scales).
    pub sigma: f64,
    /// Minimum co-rated items for a candidate personality to count.
    pub min_overlap: usize,
}

impl Default for PdConfig {
    fn default() -> Self {
        Self {
            sigma: 1.0,
            min_overlap: 1,
        }
    }
}

/// The PD baseline.
#[derive(Debug)]
pub struct PersonalityDiagnosis {
    matrix: RatingMatrix,
    config: PdConfig,
}

impl PersonalityDiagnosis {
    /// PD is memory-based: `fit` snapshots the matrix.
    pub fn fit(matrix: &RatingMatrix, config: PdConfig) -> Self {
        assert!(config.sigma > 0.0, "sigma must be positive");
        Self {
            matrix: matrix.clone(),
            config,
        }
    }

    /// Fits with defaults.
    pub fn fit_default(matrix: &RatingMatrix) -> Self {
        Self::fit(matrix, PdConfig::default())
    }

    /// Log-likelihood that `candidate`'s personality explains `user`'s
    /// observed ratings.
    fn log_likelihood(&self, user: UserId, candidate: UserId) -> Option<f64> {
        let m = &self.matrix;
        let (ia, va) = m.user_row(user);
        let (ic, vc) = m.user_row(candidate);
        let inv = 1.0 / (2.0 * self.config.sigma * self.config.sigma);
        let mut ll = 0.0;
        let mut n = 0usize;
        let (mut x, mut y) = (0usize, 0usize);
        while x < ia.len() && y < ic.len() {
            match ia[x].cmp(&ic[y]) {
                std::cmp::Ordering::Less => x += 1,
                std::cmp::Ordering::Greater => y += 1,
                std::cmp::Ordering::Equal => {
                    let d = va[x] - vc[y];
                    ll -= d * d * inv;
                    n += 1;
                    x += 1;
                    y += 1;
                }
            }
        }
        (n >= self.config.min_overlap).then_some(ll)
    }
}

impl Predictor for PersonalityDiagnosis {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        if !in_range(&self.matrix, user, item) {
            return None;
        }
        let m = &self.matrix;

        // Candidates: raters of the item (others have no opinion to mix).
        let mut weighted: Vec<(f64, f64)> = Vec::new(); // (log weight, rating)
        for (cand, r) in m.item_ratings(item) {
            if cand == user {
                continue;
            }
            if let Some(ll) = self.log_likelihood(user, cand) {
                weighted.push((ll, r));
            }
        }
        let raw = if weighted.is_empty() {
            fallback_rating(m, user, item)
        } else {
            // Posterior mean with the max-log-shift trick for stability.
            let max_ll = weighted
                .iter()
                .map(|&(ll, _)| ll)
                .fold(f64::NEG_INFINITY, f64::max);
            let mut num = 0.0;
            let mut den = 0.0;
            for &(ll, r) in &weighted {
                let w = (ll - max_ll).exp();
                num += w * r;
                den += w;
            }
            num / den
        };
        Some(m.scale().clamp(raw))
    }

    fn name(&self) -> &'static str {
        "PD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::MatrixBuilder;

    /// User 1 matches user 0 exactly on shared items; user 2 is opposite.
    fn matrix() -> RatingMatrix {
        let mut b = MatrixBuilder::new();
        let rows: [&[(u32, f64)]; 3] = [
            &[(0, 5.0), (1, 1.0)],
            &[(0, 5.0), (1, 1.0), (2, 4.0)],
            &[(0, 1.0), (1, 5.0), (2, 1.0)],
        ];
        for (u, row) in rows.iter().enumerate() {
            for &(i, r) in row.iter() {
                b.push(UserId::from(u), ItemId::new(i), r);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn posterior_follows_the_matching_personality() {
        let m = matrix();
        let pd = PersonalityDiagnosis::fit_default(&m);
        // user 0 predicting item 2: user 1 (perfect match) rated it 4,
        // user 2 (opposite) rated it 1 → prediction near 4.
        let r = pd.predict(UserId::new(0), ItemId::new(2)).unwrap();
        assert!(r > 3.3, "got {r}");
    }

    #[test]
    fn smaller_sigma_sharpens_the_posterior() {
        let m = matrix();
        let sharp = PersonalityDiagnosis::fit(
            &m,
            PdConfig {
                sigma: 0.3,
                ..Default::default()
            },
        );
        let blunt = PersonalityDiagnosis::fit(
            &m,
            PdConfig {
                sigma: 5.0,
                ..Default::default()
            },
        );
        let rs = sharp.predict(UserId::new(0), ItemId::new(2)).unwrap();
        let rb = blunt.predict(UserId::new(0), ItemId::new(2)).unwrap();
        // sharp posterior ≈ the matching user's rating; blunt one mixes
        assert!(rs > rb, "sharp {rs} should exceed blunt {rb}");
        assert!((rs - 4.0).abs() < 0.05);
        // blunt mixes toward the average of 4 and 1
        assert!(rb < 3.9 && rb > 2.0);
    }

    #[test]
    fn falls_back_when_item_has_no_raters() {
        let mut b = MatrixBuilder::with_dims(2, 3);
        b.push(UserId::new(0), ItemId::new(0), 4.0);
        b.push(UserId::new(0), ItemId::new(1), 2.0);
        b.push(UserId::new(1), ItemId::new(0), 4.0);
        let m = b.build().unwrap();
        let pd = PersonalityDiagnosis::fit_default(&m);
        let r = pd.predict(UserId::new(1), ItemId::new(2)).unwrap();
        assert_eq!(r, m.user_mean(UserId::new(1)));
    }

    #[test]
    fn min_overlap_excludes_strangers() {
        let m = matrix();
        let pd = PersonalityDiagnosis::fit(
            &m,
            PdConfig {
                min_overlap: 10,
                ..Default::default()
            },
        );
        // nobody shares 10 items → fallback (user 0's mean = 3.0)
        let r = pd.predict(UserId::new(0), ItemId::new(2)).unwrap();
        assert_eq!(r, 3.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_panics() {
        let m = matrix();
        let _ = PersonalityDiagnosis::fit(
            &m,
            PdConfig {
                sigma: 0.0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn out_of_range_returns_none() {
        let m = matrix();
        let pd = PersonalityDiagnosis::fit_default(&m);
        assert!(pd.predict(UserId::new(9), ItemId::new(0)).is_none());
    }
}
