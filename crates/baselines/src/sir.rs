//! SIR — traditional item-based CF with PCC (Eq. 1 of the CFSF paper;
//! Sarwar et al., WWW 2001).
//!
//! Predicts `r(u_b, i_a)` as the similarity-weighted average of the
//! ratings the same user gave to items similar to `i_a`. Similarities come
//! from a full item-item PCC pass over the entire matrix — this is the
//! memory-based approach whose cost CFSF's local reduction attacks.

use cf_matrix::{ItemId, Predictor, RatingMatrix, UserId};
use cf_similarity::{Gis, GisConfig};

use crate::common::{fallback_rating, in_range};

/// Configuration for [`Sir`].
#[derive(Debug, Clone)]
pub struct SirConfig {
    /// Optional cap on the neighborhood: use only the `n` most similar
    /// rated items. `None` uses every positively similar rated item, the
    /// literal Eq. 1.
    pub neighborhood: Option<usize>,
    /// GIS build parameters (threshold, threads).
    pub gis: GisConfig,
}

impl Default for SirConfig {
    fn default() -> Self {
        Self {
            neighborhood: None,
            gis: GisConfig {
                // the full matrix is the point of the baseline: no cap
                max_neighbors: None,
                ..GisConfig::default()
            },
        }
    }
}

/// Item-based PCC predictor (the paper's "SIR" baseline).
#[derive(Debug)]
pub struct Sir {
    matrix: RatingMatrix,
    gis: Gis,
    neighborhood: Option<usize>,
}

impl Sir {
    /// Computes the full item-item similarity structure.
    pub fn fit(matrix: &RatingMatrix, config: SirConfig) -> Self {
        let gis = Gis::build(matrix, &config.gis);
        Self {
            matrix: matrix.clone(),
            gis,
            neighborhood: config.neighborhood,
        }
    }

    /// Fits with defaults.
    pub fn fit_default(matrix: &RatingMatrix) -> Self {
        Self::fit(matrix, SirConfig::default())
    }
}

impl Predictor for Sir {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        if !in_range(&self.matrix, user, item) {
            return None;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        let mut used = 0usize;
        for &(i_c, sim) in self.gis.neighbors(item) {
            if let Some(limit) = self.neighborhood {
                if used >= limit {
                    break;
                }
            }
            let Some(r) = self.matrix.get(user, i_c) else {
                continue;
            };
            num += sim * r;
            den += sim;
            used += 1;
        }
        let raw = if den > f64::EPSILON {
            num / den
        } else {
            fallback_rating(&self.matrix, user, item)
        };
        Some(self.matrix.scale().clamp(raw))
    }

    fn name(&self) -> &'static str {
        "SIR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::MatrixBuilder;

    /// Items 0 and 1 strongly similar; user 3 rated item 1 high.
    fn matrix() -> RatingMatrix {
        let mut b = MatrixBuilder::new();
        let rows: [&[(u32, f64)]; 4] = [
            &[(0, 5.0), (1, 5.0), (2, 1.0)],
            &[(0, 4.0), (1, 4.0), (2, 2.0)],
            &[(0, 1.0), (1, 2.0), (2, 5.0)],
            &[(1, 5.0), (2, 1.0)],
        ];
        for (u, row) in rows.iter().enumerate() {
            for &(i, r) in row.iter() {
                b.push(UserId::from(u), ItemId::new(i), r);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn predicts_from_similar_items() {
        let m = matrix();
        let sir = Sir::fit_default(&m);
        // user 3 never rated item 0; item 1 (which they rated 5) is its
        // closest neighbor → prediction should be high.
        let r = sir.predict(UserId::new(3), ItemId::new(0)).unwrap();
        assert!(r > 3.5, "got {r}");
    }

    #[test]
    fn falls_back_when_no_neighbor_is_rated() {
        let mut b = MatrixBuilder::with_dims(2, 4);
        b.push(UserId::new(0), ItemId::new(0), 2.0);
        b.push(UserId::new(0), ItemId::new(1), 4.0);
        b.push(UserId::new(1), ItemId::new(2), 5.0);
        b.push(UserId::new(1), ItemId::new(3), 1.0);
        let m = b.build().unwrap();
        let sir = Sir::fit_default(&m);
        // no co-rated items anywhere → fallback = user mean (3.0)
        let r = sir.predict(UserId::new(0), ItemId::new(2)).unwrap();
        assert_eq!(r, 3.0);
    }

    #[test]
    fn neighborhood_cap_limits_evidence() {
        let m = matrix();
        let capped = Sir::fit(
            &m,
            SirConfig {
                neighborhood: Some(1),
                ..SirConfig::default()
            },
        );
        let full = Sir::fit_default(&m);
        // both must predict, possibly differently
        let a = capped.predict(UserId::new(0), ItemId::new(2)).unwrap();
        let b = full.predict(UserId::new(0), ItemId::new(2)).unwrap();
        assert!((1.0..=5.0).contains(&a));
        assert!((1.0..=5.0).contains(&b));
    }

    #[test]
    fn out_of_range_returns_none() {
        let m = matrix();
        let sir = Sir::fit_default(&m);
        assert!(sir.predict(UserId::new(99), ItemId::new(0)).is_none());
        assert!(sir.predict(UserId::new(0), ItemId::new(99)).is_none());
    }

    #[test]
    fn name_matches_paper_label() {
        let m = matrix();
        assert_eq!(Sir::fit_default(&m).name(), "SIR");
    }
}
