//! # cf-baselines — every comparator from the CFSF paper's evaluation
//!
//! Tables II and III of the paper compare CFSF against seven published
//! algorithms. All of them are implemented here from their defining
//! equations, each as a [`cf_matrix::Predictor`]:
//!
//! | Name | Paper | Kind |
//! |------|-------|------|
//! | [`Sir`] | item-based PCC (Eq. 1; Sarwar et al. 2001) | memory-based |
//! | [`Sur`] | user-based PCC (Eq. 2; Herlocker et al.) | memory-based |
//! | [`SimilarityFusion`] | SF (Wang et al., SIGIR 2006) | memory-based, UI |
//! | [`Emdp`] | EMDP (Ma et al., SIGIR 2007) | memory-based + imputation |
//! | [`Scbpcc`] | SCBPCC (Xue et al., SIGIR 2005) | cluster smoothing |
//! | [`AspectModel`] | AM (Hofmann, TOIS 2004) | model-based, EM |
//! | [`PersonalityDiagnosis`] | PD (Pennock et al., UAI 2000) | hybrid |
//!
//! Every model guarantees a prediction for in-range ids via the standard
//! fallback chain (user mean → item mean → global mean), so MAE is
//! computed over identical cell sets for every algorithm — the same
//! convention the paper's protocol needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aspect;
mod common;
mod content;
mod emdp;
mod pd;
mod scbpcc;
mod sf;
mod sir;
mod sur;

pub use aspect::{AspectConfig, AspectModel};
pub use common::fallback_rating;
pub use content::{ContentBoostedSir, ContentConfig};
pub use emdp::{Emdp, EmdpConfig};
pub use pd::{PdConfig, PersonalityDiagnosis};
pub use scbpcc::{Scbpcc, ScbpccConfig};
pub use sf::{SfConfig, SimilarityFusion};
pub use sir::{Sir, SirConfig};
pub use sur::{Sur, SurConfig};
