//! EMDP — Effective Missing Data Prediction (Ma, King & Lyu, SIGIR 2007).
//!
//! EMDP combines user-based and item-based evidence with three devices:
//!
//! 1. **significance weighting** — similarities computed from few
//!    co-ratings are devalued by `min(n, γ)/γ`,
//! 2. **thresholded neighborhoods** — only users with weighted similarity
//!    above `η` and items above `θ` participate,
//! 3. **missing-data prediction** — before serving requests, every
//!    missing training cell that has enough evidence is filled in, and
//!    those predicted ratings participate in later predictions.
//!
//! Prediction for `(u, i)` is `λ · user_part + (1-λ) · item_part`, each
//! part a mean-anchored weighted deviation average. When only one side
//! has evidence, that side is used alone (exactly the case analysis of
//! the original paper).

use cf_matrix::{DenseRatings, ItemId, Predictor, RatingMatrix, UserId};
use cf_parallel::par_map;
use cf_similarity::{item_overlap, item_pcc, significance_weight, user_pcc};

use crate::common::{fallback_rating, in_range};

/// Configuration for [`Emdp`].
#[derive(Debug, Clone)]
pub struct EmdpConfig {
    /// Weight of the user-based part (`λ` in Ma et al.; default 0.7).
    pub lambda: f64,
    /// Significance cap for user-user similarities (γ).
    pub gamma_user: usize,
    /// Significance cap for item-item similarities (δ in Ma et al.).
    pub gamma_item: usize,
    /// User similarity threshold η.
    pub eta: f64,
    /// Item similarity threshold θ.
    pub theta: f64,
    /// Cap on stored user neighbors (tractability bound; the thresholds
    /// do the semantic filtering).
    pub max_user_neighbors: usize,
    /// Cap on stored item neighbors.
    pub max_item_neighbors: usize,
    /// Run the missing-data prediction pass before serving requests.
    pub smooth_missing: bool,
    /// Worker threads (`None` = auto).
    pub threads: Option<usize>,
}

impl Default for EmdpConfig {
    fn default() -> Self {
        Self {
            lambda: 0.7,
            gamma_user: 30,
            gamma_item: 25,
            eta: 0.25,
            theta: 0.25,
            max_user_neighbors: 40,
            max_item_neighbors: 40,
            smooth_missing: true,
            threads: None,
        }
    }
}

/// The EMDP baseline.
#[derive(Debug)]
pub struct Emdp {
    matrix: RatingMatrix,
    config: EmdpConfig,
    /// Thresholded, significance-weighted user neighbors, descending.
    user_neighbors: Vec<Vec<(UserId, f64)>>,
    /// Thresholded, significance-weighted item neighbors, descending.
    item_neighbors: Vec<Vec<(ItemId, f64)>>,
    /// Filled training matrix from the missing-data pass (if enabled).
    dense: Option<DenseRatings>,
}

impl Emdp {
    /// Builds both neighbor structures and (by default) runs the
    /// missing-data prediction pass.
    pub fn fit(matrix: &RatingMatrix, config: EmdpConfig) -> Self {
        let threads = cf_parallel::effective_threads(config.threads);
        let p = matrix.num_users();
        let q = matrix.num_items();

        let user_neighbors: Vec<Vec<(UserId, f64)>> = par_map(p, threads, |a| {
            let ua = UserId::from(a);
            if matrix.user_count(ua) == 0 {
                return Vec::new();
            }
            let mut list: Vec<(UserId, f64)> = (0..p)
                .filter(|&b| b != a)
                .filter_map(|b| {
                    let ub = UserId::from(b);
                    let raw = user_pcc(matrix, ua, ub);
                    if raw <= 0.0 {
                        return None;
                    }
                    let overlap = co_rated_users(matrix, ua, ub);
                    let s = significance_weight(overlap, config.gamma_user) * raw;
                    (s > config.eta).then_some((ub, s))
                })
                .collect();
            sort_desc(&mut list);
            list.truncate(config.max_user_neighbors);
            list
        });

        let item_neighbors: Vec<Vec<(ItemId, f64)>> = par_map(q, threads, |a| {
            let ia = ItemId::from(a);
            if matrix.item_count(ia) == 0 {
                return Vec::new();
            }
            let mut list: Vec<(ItemId, f64)> = (0..q)
                .filter(|&b| b != a)
                .filter_map(|b| {
                    let ib = ItemId::from(b);
                    let raw = item_pcc(matrix, ia, ib);
                    if raw <= 0.0 {
                        return None;
                    }
                    let s =
                        significance_weight(item_overlap(matrix, ia, ib), config.gamma_item) * raw;
                    (s > config.theta).then_some((ib, s))
                })
                .collect();
            sort_desc(&mut list);
            list.truncate(config.max_item_neighbors);
            list
        });

        let mut model = Self {
            matrix: matrix.clone(),
            config,
            user_neighbors,
            item_neighbors,
            dense: None,
        };
        if model.config.smooth_missing {
            model.dense = Some(model.predict_missing(threads));
        }
        model
    }

    /// Fits with defaults.
    pub fn fit_default(matrix: &RatingMatrix) -> Self {
        Self::fit(matrix, EmdpConfig::default())
    }

    /// The missing-data prediction pass: fills every absent training cell
    /// that has user or item evidence, leaving truly evidence-free cells
    /// absent (the original algorithm's behaviour).
    fn predict_missing(&self, threads: usize) -> DenseRatings {
        let m = &self.matrix;
        let q = m.num_items();
        let rows: Vec<Vec<f64>> = par_map(m.num_users(), threads, |ui| {
            let u = UserId::from(ui);
            let mut row = vec![f64::NAN; q];
            for (i, r) in m.user_ratings(u) {
                row[i.index()] = r;
            }
            // Snapshot of the user's *original* ratings: the pass must not
            // feed on predictions it just wrote into `row`.
            let orig_row = row.clone();
            // Accumulate the user part for all items at once by streaming
            // each neighbor's profile.
            let mut unum = vec![0.0f64; q];
            let mut uden = vec![0.0f64; q];
            for &(ua, s) in &self.user_neighbors[ui] {
                let mean_a = m.user_mean(ua);
                for (i, r) in m.user_ratings(ua) {
                    unum[i.index()] += s * (r - mean_a);
                    uden[i.index()] += s;
                }
            }
            let mean_u = m.user_mean(u);
            for i in 0..q {
                if !row[i].is_nan() {
                    continue;
                }
                let user_part = (uden[i] > f64::EPSILON).then(|| mean_u + unum[i] / uden[i]);
                // Item part from the user's own original ratings.
                let mut inum = 0.0;
                let mut iden = 0.0;
                for &(ik, s) in &self.item_neighbors[i] {
                    let r = orig_row[ik.index()];
                    if !r.is_nan() {
                        inum += s * (r - m.item_mean(ik));
                        iden += s;
                    }
                }
                let item_part =
                    (iden > f64::EPSILON).then(|| m.item_mean(ItemId::from(i)) + inum / iden);
                let l = self.config.lambda;
                let v = match (user_part, item_part) {
                    (Some(a), Some(b)) => Some(l * a + (1.0 - l) * b),
                    (Some(a), None) => Some(a),
                    (None, Some(b)) => Some(b),
                    (None, None) => None,
                };
                if let Some(v) = v {
                    row[i] = m.scale().clamp(v);
                }
            }
            row
        });

        let mut dense = DenseRatings::new(m.num_users(), q);
        for (ui, row) in rows.into_iter().enumerate() {
            let u = UserId::from(ui);
            for (i, v) in row.into_iter().enumerate() {
                if v.is_nan() {
                    continue;
                }
                let item = ItemId::from(i);
                if m.is_rated(u, item) {
                    dense.set_original(u, item, v);
                } else {
                    dense.set_smoothed(u, item, v);
                }
            }
        }
        dense
    }

    /// Rating of `(u, i)` visible to the predictor: original, else the
    /// missing-data prediction (when the pass ran).
    fn visible(&self, u: UserId, i: ItemId) -> Option<f64> {
        match &self.dense {
            Some(d) => d.get(u, i),
            None => self.matrix.get(u, i),
        }
    }
}

fn co_rated_users(m: &RatingMatrix, a: UserId, b: UserId) -> usize {
    let (ia, _) = m.user_row(a);
    let (ib, _) = m.user_row(b);
    let (mut x, mut y) = (0usize, 0usize);
    let mut n = 0usize;
    while x < ia.len() && y < ib.len() {
        match ia[x].cmp(&ib[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                x += 1;
                y += 1;
            }
        }
    }
    n
}

fn sort_desc<T: Ord + Copy>(list: &mut [(T, f64)]) {
    list.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("similarities are finite")
            .then(a.0.cmp(&b.0))
    });
}

impl Predictor for Emdp {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        if !in_range(&self.matrix, user, item) {
            return None;
        }
        let m = &self.matrix;
        let l = self.config.lambda;

        let mut unum = 0.0;
        let mut uden = 0.0;
        for &(ua, s) in &self.user_neighbors[user.index()] {
            if let Some(r) = self.visible(ua, item) {
                unum += s * (r - m.user_mean(ua));
                uden += s;
            }
        }
        let user_part = (uden > f64::EPSILON).then(|| m.user_mean(user) + unum / uden);

        let mut inum = 0.0;
        let mut iden = 0.0;
        for &(ik, s) in &self.item_neighbors[item.index()] {
            if let Some(r) = self.visible(user, ik) {
                inum += s * (r - m.item_mean(ik));
                iden += s;
            }
        }
        let item_part = (iden > f64::EPSILON).then(|| m.item_mean(item) + inum / iden);

        let raw = match (user_part, item_part) {
            (Some(a), Some(b)) => l * a + (1.0 - l) * b,
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => fallback_rating(m, user, item),
        };
        Some(m.scale().clamp(raw))
    }

    fn name(&self) -> &'static str {
        "EMDP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_data::SyntheticConfig;

    fn small() -> RatingMatrix {
        SyntheticConfig::small().generate().matrix
    }

    #[test]
    fn neighbors_respect_thresholds_and_caps() {
        let m = small();
        let e = Emdp::fit_default(&m);
        for list in &e.user_neighbors {
            assert!(list.len() <= e.config.max_user_neighbors);
            assert!(list.iter().all(|&(_, s)| s > e.config.eta));
            assert!(list.windows(2).all(|w| w[0].1 >= w[1].1));
        }
        for list in &e.item_neighbors {
            assert!(list.len() <= e.config.max_item_neighbors);
            assert!(list.iter().all(|&(_, s)| s > e.config.theta));
        }
    }

    #[test]
    fn significance_weighting_devalues_thin_overlap() {
        let m = small();
        // any stored similarity must be ≤ its raw PCC (weight ≤ 1)
        let e = Emdp::fit_default(&m);
        for (a, list) in e.user_neighbors.iter().enumerate() {
            for &(b, s) in list.iter().take(3) {
                let raw = user_pcc(&m, UserId::from(a), b);
                assert!(s <= raw + 1e-12, "weighted {s} > raw {raw}");
            }
        }
    }

    #[test]
    fn smoothing_pass_fills_cells_with_evidence() {
        let m = small();
        let e = Emdp::fit_default(&m);
        let d = e.dense.as_ref().unwrap();
        assert!(d.filled_cells() > m.num_ratings(), "pass filled nothing");
        // originals survive identically
        for (u, i, r) in m.triplets().take(100) {
            assert_eq!(d.get(u, i), Some(r));
            assert!(d.is_original(u, i));
        }
    }

    #[test]
    fn predictions_in_range_with_and_without_smoothing() {
        let m = small();
        let with = Emdp::fit_default(&m);
        let without = Emdp::fit(
            &m,
            EmdpConfig {
                smooth_missing: false,
                ..Default::default()
            },
        );
        for u in (0..m.num_users()).step_by(13) {
            for i in (0..m.num_items()).step_by(19) {
                for model in [&with, &without] {
                    let r = model.predict(UserId::from(u), ItemId::from(i)).unwrap();
                    assert!((1.0..=5.0).contains(&r));
                }
            }
        }
    }

    #[test]
    fn out_of_range_returns_none() {
        let m = small();
        let e = Emdp::fit(
            &m,
            EmdpConfig {
                smooth_missing: false,
                ..Default::default()
            },
        );
        assert!(e.predict(UserId::new(60_000), ItemId::new(0)).is_none());
    }
}
