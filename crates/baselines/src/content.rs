//! Content-boosted item similarity — the paper's future-work item
//! "attributes of items and users" (§VI), in the spirit of the
//! content-based systems its §II-C surveys.
//!
//! When item attributes (here: a genre label per item, as MovieLens's
//! `u.item` provides) are available, the rating-based item PCC can be
//! blended with an attribute-match score. On sparse data this rescues
//! items with too few co-ratings for a reliable PCC — the exact failure
//! mode the CFSF paper's thresholds otherwise just drop.

use cf_matrix::{ItemId, Predictor, RatingMatrix, UserId};
use cf_similarity::item_pcc;

use crate::common::{fallback_rating, in_range};

/// Configuration for [`ContentBoostedSir`].
#[derive(Debug, Clone)]
pub struct ContentConfig {
    /// Blend factor: `sim = alpha·PCC + (1-alpha)·genre_match`.
    /// `alpha = 1` is pure rating similarity, `alpha = 0` pure content.
    pub alpha: f64,
    /// Neighborhood size per prediction.
    pub neighborhood: usize,
}

impl Default for ContentConfig {
    fn default() -> Self {
        Self {
            alpha: 0.7,
            neighborhood: 40,
        }
    }
}

/// Item-based CF whose similarity blends rating PCC with genre match.
#[derive(Debug)]
pub struct ContentBoostedSir {
    matrix: RatingMatrix,
    /// `sim_lists[i]` = blended neighbors of item `i`, descending.
    sim_lists: Vec<Vec<(ItemId, f64)>>,
    config: ContentConfig,
}

impl ContentBoostedSir {
    /// Builds the blended similarity structure.
    ///
    /// `item_genres[i]` is the genre label of item `i`; its length must
    /// match the matrix's item count. Panics otherwise, or when `alpha`
    /// is outside `[0, 1]`.
    pub fn fit(matrix: &RatingMatrix, item_genres: &[u32], config: ContentConfig) -> Self {
        assert_eq!(
            item_genres.len(),
            matrix.num_items(),
            "one genre label per item required"
        );
        assert!(
            (0.0..=1.0).contains(&config.alpha),
            "alpha must be in [0, 1]"
        );
        let q = matrix.num_items();
        let alpha = config.alpha;
        let sim_lists: Vec<Vec<(ItemId, f64)>> =
            cf_parallel::par_map(q, cf_parallel::effective_threads(None), |a_idx| {
                let a = ItemId::from(a_idx);
                let mut list: Vec<(ItemId, f64)> = (0..q)
                    .filter(|&b| b != a_idx)
                    .filter_map(|b_idx| {
                        let b = ItemId::from(b_idx);
                        let pcc = item_pcc(matrix, a, b);
                        let genre = if item_genres[a_idx] == item_genres[b_idx] {
                            1.0
                        } else {
                            0.0
                        };
                        let sim = alpha * pcc + (1.0 - alpha) * genre;
                        (sim > 0.0).then_some((b, sim))
                    })
                    .collect();
                list.sort_by(|x, y| {
                    y.1.partial_cmp(&x.1)
                        .expect("similarities are finite")
                        .then(x.0.cmp(&y.0))
                });
                list.truncate(256);
                list
            });
        Self {
            matrix: matrix.clone(),
            sim_lists,
            config,
        }
    }

    /// Fits with defaults.
    pub fn fit_default(matrix: &RatingMatrix, item_genres: &[u32]) -> Self {
        Self::fit(matrix, item_genres, ContentConfig::default())
    }
}

impl Predictor for ContentBoostedSir {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        if !in_range(&self.matrix, user, item) {
            return None;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        let mut used = 0usize;
        for &(i_c, sim) in &self.sim_lists[item.index()] {
            if used >= self.config.neighborhood {
                break;
            }
            let Some(r) = self.matrix.get(user, i_c) else {
                continue;
            };
            num += sim * r;
            den += sim;
            used += 1;
        }
        let raw = if den > f64::EPSILON {
            num / den
        } else {
            fallback_rating(&self.matrix, user, item)
        };
        Some(self.matrix.scale().clamp(raw))
    }

    fn name(&self) -> &'static str {
        "SIR-content"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::MatrixBuilder;

    /// Items 0/1 share a genre; item 1 has NO co-ratings with item 0, so
    /// pure PCC carries nothing, but content rescues the link.
    fn matrix_and_genres() -> (RatingMatrix, Vec<u32>) {
        let mut b = MatrixBuilder::with_dims(4, 3);
        b.push(UserId::new(0), ItemId::new(0), 5.0);
        b.push(UserId::new(0), ItemId::new(2), 1.0);
        b.push(UserId::new(1), ItemId::new(1), 5.0);
        b.push(UserId::new(1), ItemId::new(2), 2.0);
        b.push(UserId::new(2), ItemId::new(1), 4.0);
        b.push(UserId::new(2), ItemId::new(2), 1.0);
        // user 3 rated item 1 high; predict item 0 for them
        b.push(UserId::new(3), ItemId::new(1), 5.0);
        (b.build().unwrap(), vec![0, 0, 1])
    }

    #[test]
    fn content_rescues_co_rating_starved_pairs() {
        let (m, genres) = matrix_and_genres();
        let model = ContentBoostedSir::fit_default(&m, &genres);
        // pure PCC between items 0 and 1 is 0 (no co-raters); the genre
        // match must still drive a high prediction from item 1's rating.
        let r = model.predict(UserId::new(3), ItemId::new(0)).unwrap();
        assert!(r > 4.0, "got {r}");
    }

    #[test]
    fn alpha_one_is_pure_rating_similarity() {
        let (m, genres) = matrix_and_genres();
        let pure = ContentBoostedSir::fit(
            &m,
            &genres,
            ContentConfig {
                alpha: 1.0,
                ..Default::default()
            },
        );
        // With alpha=1 the genre link vanishes and user 3 has no usable
        // neighbors for item 0 → fallback to user mean (5.0).
        let r = pure.predict(UserId::new(3), ItemId::new(0)).unwrap();
        assert_eq!(r, 5.0);
    }

    #[test]
    #[should_panic(expected = "one genre label per item")]
    fn wrong_genre_count_panics() {
        let (m, _) = matrix_and_genres();
        let _ = ContentBoostedSir::fit_default(&m, &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn bad_alpha_panics() {
        let (m, genres) = matrix_and_genres();
        let _ = ContentBoostedSir::fit(
            &m,
            &genres,
            ContentConfig {
                alpha: 1.5,
                ..Default::default()
            },
        );
    }

    #[test]
    fn lists_are_sorted_and_positive() {
        let (m, genres) = matrix_and_genres();
        let model = ContentBoostedSir::fit_default(&m, &genres);
        for list in &model.sim_lists {
            assert!(list.windows(2).all(|w| w[0].1 >= w[1].1));
            assert!(list.iter().all(|&(_, s)| s > 0.0));
        }
    }
}
