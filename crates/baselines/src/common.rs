//! Shared helpers for the baseline implementations.

use cf_matrix::{ItemId, RatingMatrix, UserId};

/// The standard fallback chain every baseline uses when its own estimator
/// has no evidence: the user's mean if they have a profile, else the
/// item's mean if it has raters, else the global mean.
///
/// MAE in the paper's protocol is computed over *every* holdout cell, so
/// abstaining is not an option; this chain is the conventional way the CF
/// literature fills the gap.
pub fn fallback_rating(m: &RatingMatrix, user: UserId, item: ItemId) -> f64 {
    if m.user_count(user) > 0 {
        m.user_mean(user)
    } else if m.item_count(item) > 0 {
        m.item_mean(item)
    } else {
        m.global_mean()
    }
}

/// `true` when the ids address a cell inside the matrix.
pub(crate) fn in_range(m: &RatingMatrix, user: UserId, item: ItemId) -> bool {
    user.index() < m.num_users() && item.index() < m.num_items()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::MatrixBuilder;

    #[test]
    fn fallback_prefers_user_then_item_then_global() {
        let mut b = MatrixBuilder::with_dims(3, 3);
        b.push(UserId::new(0), ItemId::new(0), 5.0);
        b.push(UserId::new(0), ItemId::new(1), 3.0);
        b.push(UserId::new(1), ItemId::new(0), 1.0);
        let m = b.build().unwrap();
        // user 0 has a profile: user mean 4.0
        assert_eq!(fallback_rating(&m, UserId::new(0), ItemId::new(2)), 4.0);
        // user 2 empty, item 0 rated: item mean 3.0
        assert_eq!(fallback_rating(&m, UserId::new(2), ItemId::new(0)), 3.0);
        // user 2 empty, item 2 unrated: global mean 3.0
        assert_eq!(fallback_rating(&m, UserId::new(2), ItemId::new(2)), 3.0);
    }
}
