//! Property-based tests for the rating-matrix substrate.

use cf_matrix::{ItemId, MatrixBuilder, RatingMatrix, UserId};
use proptest::prelude::*;

/// Strategy: a deduplicated set of valid rating triplets.
fn arb_triplets() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    proptest::collection::btree_map(
        (0u32..40, 0u32..50),
        (1u32..=5).prop_map(|r| r as f64),
        1..200,
    )
    .prop_map(|m| m.into_iter().map(|((u, i), r)| (u, i, r)).collect())
}

fn build(triplets: &[(u32, u32, f64)]) -> RatingMatrix {
    let mut b = MatrixBuilder::new();
    for &(u, i, r) in triplets {
        b.push(UserId::new(u), ItemId::new(i), r);
    }
    b.build().expect("valid triplets")
}

proptest! {
    #[test]
    fn every_pushed_triplet_is_retrievable(triplets in arb_triplets()) {
        let m = build(&triplets);
        for &(u, i, r) in &triplets {
            prop_assert_eq!(m.get(UserId::new(u), ItemId::new(i)), Some(r));
        }
        prop_assert_eq!(m.num_ratings(), triplets.len());
    }

    #[test]
    fn csr_and_csc_views_agree(triplets in arb_triplets()) {
        let m = build(&triplets);
        // every CSR entry appears in CSC and vice versa
        let mut from_rows: Vec<(u32, u32, f64)> = m
            .triplets()
            .map(|(u, i, r)| (u.raw(), i.raw(), r))
            .collect();
        let mut from_cols: Vec<(u32, u32, f64)> = m
            .items()
            .flat_map(|i| m.item_ratings(i).map(move |(u, r)| (u.raw(), i.raw(), r)))
            .collect();
        from_rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        from_cols.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(from_rows, from_cols);
    }

    #[test]
    fn means_are_bounded_by_observed_ratings(triplets in arb_triplets()) {
        let m = build(&triplets);
        prop_assert!(m.global_mean() >= 1.0 && m.global_mean() <= 5.0);
        for u in m.users() {
            let (_, vals) = m.user_row(u);
            if !vals.is_empty() {
                let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(m.user_mean(u) >= lo - 1e-12 && m.user_mean(u) <= hi + 1e-12);
            } else {
                prop_assert_eq!(m.user_mean(u), m.global_mean());
            }
        }
    }

    #[test]
    fn duplicate_identical_pushes_are_idempotent(triplets in arb_triplets()) {
        let mut b = MatrixBuilder::new();
        for &(u, i, r) in &triplets {
            b.push(UserId::new(u), ItemId::new(i), r);
            b.push(UserId::new(u), ItemId::new(i), r); // exact duplicate
        }
        let m = b.build().expect("exact duplicates collapse");
        prop_assert_eq!(m.num_ratings(), triplets.len());
    }

    #[test]
    fn filter_users_then_counts_add_up(triplets in arb_triplets(), pivot in 0u32..40) {
        let m = build(&triplets);
        // filter_users requires a non-empty result (an all-empty matrix is
        // unrepresentable by design), so only build the non-empty sides.
        let below: usize = triplets.iter().filter(|t| t.0 < pivot).count();
        let above = triplets.len() - below;
        if below > 0 {
            let kept = m.filter_users(|u| u.raw() < pivot);
            prop_assert_eq!(kept.num_ratings(), below);
            prop_assert_eq!(kept.num_users(), m.num_users());
        }
        if above > 0 {
            let dropped = m.filter_users(|u| u.raw() >= pivot);
            prop_assert_eq!(dropped.num_ratings(), above);
        }
    }

    #[test]
    fn without_cells_never_removes_other_cells(triplets in arb_triplets()) {
        let m = build(&triplets);
        let victims: Vec<(UserId, ItemId)> = triplets
            .iter()
            .step_by(3)
            .map(|&(u, i, _)| (UserId::new(u), ItemId::new(i)))
            .collect();
        prop_assume!(victims.len() < triplets.len());
        let h = m.without_cells(&victims);
        prop_assert_eq!(h.num_ratings(), m.num_ratings() - victims.len());
        for &(u, i, r) in &triplets {
            let cell = (UserId::new(u), ItemId::new(i));
            if victims.contains(&cell) {
                prop_assert_eq!(h.get(cell.0, cell.1), None);
            } else {
                prop_assert_eq!(h.get(cell.0, cell.1), Some(r));
            }
        }
    }

    #[test]
    fn density_matches_definition(triplets in arb_triplets()) {
        let m = build(&triplets);
        let expect = m.num_ratings() as f64 / (m.num_users() * m.num_items()) as f64;
        prop_assert!((m.density() - expect).abs() < 1e-12);
    }
}
