//! Quantize/dequantize round-trip properties for [`WeightPlanes`].
//!
//! The planes store each present cell as a quantized code plus a
//! provenance bit, with presence bit-packed separately (DESIGN.md §6c).
//! The contract under test, at both precisions:
//!
//! - weights are **exact**: an original cell dequantizes to `w = ε`, a
//!   smoothed one to `w = 1 − ε`, bit-for-bit — weights are a 4-entry LUT,
//!   never quantized;
//! - ratings round-trip to within half a quantization step: the fused
//!   `w·r` product is within `|w| · step/2` of the true product;
//! - absent cells dequantize to a hard zero pair and `is_present` agrees
//!   with the dense matrix exactly.

use cf_matrix::{DenseRatings, ItemId, MatrixBuilder, PlanePrecision, UserId, WeightPlanes};
use proptest::prelude::*;

/// A dense ratings sheet mixing original, pseudo-smoothed, and absent
/// cells, with ratings beyond the 1..=5 scale on the smoothed side (the
/// smoother can overshoot, so calibration must be data-ranged).
fn arb_dense() -> impl Strategy<Value = DenseRatings> {
    (
        proptest::collection::btree_map((0u32..12, 0u32..90), 1u32..=5, 5..160),
        0u64..8,
    )
        .prop_map(|(cells, seed)| {
            let mut b = MatrixBuilder::with_dims(12, 90);
            for (&(u, i), &r) in &cells {
                b.push(UserId::new(u), ItemId::new(i), f64::from(r));
            }
            let m = b.build().expect("valid");
            let mut dense = DenseRatings::from_sparse(&m);
            for u in 0..12u32 {
                for i in 0..90u32 {
                    let (user, item) = (UserId::new(u), ItemId::new(i));
                    let h = u as u64 * 31 + i as u64 * 7 + seed;
                    if dense.get(user, item).is_none() && !h.is_multiple_of(3) {
                        // Deliberately overshoots 5.0 (up to ~6.4).
                        dense.set_smoothed(user, item, 0.5 + (h % 60) as f64 * 0.1);
                    }
                }
            }
            dense
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn round_trip_is_within_half_a_step_with_exact_weights(
        dense in arb_dense(),
        eps_pick in 0usize..3,
    ) {
        let eps = [0.0, 0.35, 1.0][eps_pick];
        for precision in [PlanePrecision::U16, PlanePrecision::U8] {
            let planes = WeightPlanes::from_dense_with(&dense, eps, precision);
            let half = planes.step() * 0.5;
            for u in 0..dense.num_users() {
                let user = UserId::from(u);
                for i in 0..dense.num_items() {
                    let item = ItemId::from(i);
                    let (w, wr) = planes.pair(user, item);
                    match dense.get(user, item) {
                        Some(r) => {
                            let original = dense.is_original(user, item);
                            let expect_w = if original { eps } else { 1.0 - eps };
                            prop_assert!(
                                w.to_bits() == expect_w.to_bits(),
                                "weight must be exact at ({u},{i}), {precision:?}"
                            );
                            prop_assert!(
                                (wr - w * r).abs() <= w.abs() * half + 1e-12,
                                "({u},{i}) {precision:?}: wr={wr}, w*r={}, step={}",
                                w * r, planes.step()
                            );
                            prop_assert!(planes.is_present(user, item));
                        }
                        None => {
                            prop_assert_eq!(w, 0.0);
                            prop_assert_eq!(wr.abs(), 0.0);
                            prop_assert!(!planes.is_present(user, item));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn u8_step_is_coarser_but_presence_identical(dense in arb_dense()) {
        let fine = WeightPlanes::from_dense_with(&dense, 0.35, PlanePrecision::U16);
        let coarse = WeightPlanes::from_dense_with(&dense, 0.35, PlanePrecision::U8);
        // Same data range ⇒ step ratio is exactly the code-capacity ratio.
        if fine.step() > 0.0 {
            prop_assert!((coarse.step() / fine.step() - 16383.0 / 63.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(coarse.step(), 0.0);
        }
        prop_assert!(coarse.cell_bytes() * 2 == fine.cell_bytes());
        prop_assert_eq!(coarse.present_bytes(), fine.present_bytes());
        for u in 0..dense.num_users() {
            for i in 0..dense.num_items() {
                let (user, item) = (UserId::from(u), ItemId::from(i));
                prop_assert_eq!(fine.is_present(user, item), coarse.is_present(user, item));
            }
        }
    }
}
