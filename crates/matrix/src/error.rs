//! Error type for matrix construction and validation.

use std::fmt;

use crate::{ItemId, UserId};

/// Errors produced while building or validating a rating matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// A rating value was not finite (NaN or ±∞).
    NonFiniteRating {
        /// The offending user.
        user: UserId,
        /// The offending item.
        item: ItemId,
        /// The raw value.
        value: f64,
    },
    /// A rating value fell outside the declared rating scale.
    RatingOutOfScale {
        /// The offending user.
        user: UserId,
        /// The offending item.
        item: ItemId,
        /// The raw value.
        value: f64,
        /// Lower bound of the scale.
        min: f64,
        /// Upper bound of the scale.
        max: f64,
    },
    /// The same (user, item) cell was rated twice with different values.
    ConflictingDuplicate {
        /// The offending user.
        user: UserId,
        /// The offending item.
        item: ItemId,
        /// First value seen.
        first: f64,
        /// Second, conflicting value.
        second: f64,
    },
    /// The builder produced no ratings at all.
    Empty,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFiniteRating { user, item, value } => {
                write!(f, "non-finite rating {value} at ({user:?}, {item:?})")
            }
            Self::RatingOutOfScale {
                user,
                item,
                value,
                min,
                max,
            } => write!(
                f,
                "rating {value} at ({user:?}, {item:?}) outside scale [{min}, {max}]"
            ),
            Self::ConflictingDuplicate {
                user,
                item,
                first,
                second,
            } => write!(
                f,
                "cell ({user:?}, {item:?}) rated twice with different values: {first} then {second}"
            ),
            Self::Empty => write!(f, "matrix has no ratings"),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MatrixError::NonFiniteRating {
            user: UserId::new(1),
            item: ItemId::new(2),
            value: f64::NAN,
        };
        let s = e.to_string();
        assert!(s.contains("u1") && s.contains("i2"), "{s}");

        let e = MatrixError::RatingOutOfScale {
            user: UserId::new(0),
            item: ItemId::new(0),
            value: 9.0,
            min: 1.0,
            max: 5.0,
        };
        assert!(e.to_string().contains("[1, 5]"));

        assert!(MatrixError::Empty.to_string().contains("no ratings"));
    }
}
