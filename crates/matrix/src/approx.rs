//! Float comparison helpers — the only sanctioned way to compare floats
//! for "equality" in this workspace.
//!
//! The `float-eq` lint (see `cf-analysis`) forbids raw `==`/`!=` against
//! float literals in production code; call these instead. The tolerance
//! is absolute-or-relative: two values compare equal when they are
//! within `eps` of each other absolutely, or within `eps` relative to
//! the larger magnitude (so the helper works for both rating-scale
//! values around 1–5 and accumulated sums).

/// Default tolerance: loose enough to absorb accumulation order, tight
/// enough to distinguish any two distinct ratings on a half-star scale.
pub const DEFAULT_EPS: f64 = 1e-9;

/// True when `a` and `b` are equal to within `eps` (absolute or
/// relative, whichever is more permissive). NaN never compares equal.
#[must_use]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    // Fast path for exact equality (also covers infinities of the same
    // sign); NaN falls through and the diff comparisons reject it.
    if a == b {
        return true;
    }
    let diff = (a - b).abs();
    diff <= eps || diff <= eps * a.abs().max(b.abs())
}

/// [`approx_eq_eps`] at [`DEFAULT_EPS`].
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, DEFAULT_EPS)
}

/// True when `x` is within [`DEFAULT_EPS`] of zero.
#[must_use]
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= DEFAULT_EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_near_values_compare_equal() {
        assert!(approx_eq(1.5, 1.5));
        assert!(approx_eq(1.5, 1.5 + 1e-12));
        assert!(approx_eq(0.0, -0.0));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn distinct_ratings_stay_distinct() {
        assert!(!approx_eq(1.5, 2.0));
        assert!(!approx_eq(4.999, 5.0));
        assert!(!approx_eq(0.0, 1e-6));
    }

    #[test]
    fn relative_tolerance_scales_with_magnitude() {
        let big = 1e12;
        assert!(approx_eq(big, big + 1e2));
        assert!(!approx_eq(big, big + 1e5));
    }

    #[test]
    fn nan_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(!approx_eq(f64::NAN, 0.0));
    }

    #[test]
    fn approx_zero_bounds() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(-1e-12));
        assert!(!approx_zero(1e-6));
    }
}
