//! # cf-matrix — sparse item-user rating matrix substrate
//!
//! This crate is the foundation of the CFSF reproduction. It provides:
//!
//! - [`UserId`] / [`ItemId`] — typed indices into the matrix,
//! - [`RatingMatrix`] — an immutable sparse rating matrix stored in both
//!   user-major (CSR) and item-major (CSC) order, with precomputed user and
//!   item means,
//! - [`MatrixBuilder`] — the only way to construct a [`RatingMatrix`];
//!   deduplicates, sorts, and validates triplets,
//! - [`DenseRatings`] — a dense user×item matrix with an "originally rated"
//!   bitset; used for cluster-smoothed ratings (Eq. 7 of the paper),
//! - [`WeightPlanes`] — the serving fast path's quantized weight planes:
//!   per-cell rating codes (u16/u8) with the Eq. 11 smoothing weight in an
//!   exact 4-entry LUT and bit-packed presence, dequantized in-kernel via
//!   [`PlaneDequant`],
//! - [`Predictor`] — the trait every CF algorithm in this workspace
//!   implements, plus rating-scale clamping helpers,
//! - [`stats`] — dataset statistics as reported in Table I of the paper,
//! - [`approx`] — the sanctioned float-comparison helpers (the
//!   `float-eq` lint forbids raw float `==` elsewhere).
//!
//! The matrix is deliberately immutable after build: every algorithm in the
//! paper (CFSF and all baselines) trains on a frozen snapshot, and
//! immutability lets us share it freely across threads (`&RatingMatrix` is
//! `Send + Sync`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod approx;
mod builder;
mod dense;
mod error;
mod ids;
mod matrix;
mod planes;
mod predictor;
pub mod stats;

pub use approx::{approx_eq, approx_eq_eps, approx_zero, DEFAULT_EPS};
pub use builder::{MatrixBuilder, QuarantineReport};
pub use dense::DenseRatings;
pub use error::MatrixError;
pub use ids::{ItemId, UserId};
pub use matrix::RatingMatrix;
pub use planes::{
    present_bit, PlaneDequant, PlanePrecision, PlanesView, QuantCell, TypedPlanes, WeightPlanes,
};
pub use predictor::{clamp_rating, Predictor, RatingScale};
pub use stats::MatrixStats;
