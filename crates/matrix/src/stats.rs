//! Dataset statistics — the quantities reported in Table I of the paper.

use crate::RatingMatrix;

/// Summary statistics of a rating matrix, mirroring Table I
/// ("Statistics of the datasets") of the CFSF paper.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of users with at least one rating.
    pub active_users: usize,
    /// Total user slots (including unrated trailing users).
    pub num_users: usize,
    /// Number of items with at least one rating.
    pub active_items: usize,
    /// Total item slots.
    pub num_items: usize,
    /// Total number of ratings.
    pub num_ratings: usize,
    /// Average number of rated items per *active* user (94.4 in Table I).
    pub avg_ratings_per_user: f64,
    /// Fraction of filled cells over `num_users × num_items`.
    pub density: f64,
    /// Number of distinct rating values observed (Table I reports 5).
    pub distinct_rating_values: usize,
    /// Smallest observed rating.
    pub min_rating: f64,
    /// Largest observed rating.
    pub max_rating: f64,
    /// Mean of all ratings.
    pub global_mean: f64,
    /// Fewest ratings among active users.
    pub min_ratings_per_user: usize,
    /// Most ratings among any user.
    pub max_ratings_per_user: usize,
}

impl MatrixStats {
    /// Computes all statistics in one pass over the matrix.
    pub fn compute(m: &RatingMatrix) -> Self {
        let mut active_users = 0usize;
        let mut min_per_user = usize::MAX;
        let mut max_per_user = 0usize;
        for u in m.users() {
            let c = m.user_count(u);
            if c > 0 {
                active_users += 1;
                min_per_user = min_per_user.min(c);
                max_per_user = max_per_user.max(c);
            }
        }
        if active_users == 0 {
            min_per_user = 0;
        }
        let active_items = m.items().filter(|&i| m.item_count(i) > 0).count();

        let mut values: Vec<f64> = m.triplets().map(|t| t.2).collect();
        values.sort_unstable_by(f64::total_cmp);
        let distinct =
            values.windows(2).filter(|w| w[0] != w[1]).count() + usize::from(!values.is_empty());
        let min_rating = values.first().copied().unwrap_or(0.0);
        let max_rating = values.last().copied().unwrap_or(0.0);

        Self {
            active_users,
            num_users: m.num_users(),
            active_items,
            num_items: m.num_items(),
            num_ratings: m.num_ratings(),
            avg_ratings_per_user: if active_users > 0 {
                m.num_ratings() as f64 / active_users as f64
            } else {
                0.0
            },
            density: m.density(),
            distinct_rating_values: distinct,
            min_rating,
            max_rating,
            global_mean: m.global_mean(),
            min_ratings_per_user: min_per_user,
            max_ratings_per_user: max_per_user,
        }
    }
}

impl std::fmt::Display for MatrixStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "No. of users                         {}",
            self.active_users
        )?;
        writeln!(
            f,
            "No. of items                         {}",
            self.active_items
        )?;
        writeln!(
            f,
            "Average no. of rated items per user  {:.1}",
            self.avg_ratings_per_user
        )?;
        writeln!(
            f,
            "Density of data                      {:.2}%",
            self.density * 100.0
        )?;
        writeln!(
            f,
            "No. of distinct rating values        {}",
            self.distinct_rating_values
        )?;
        writeln!(
            f,
            "No. of ratings                       {}",
            self.num_ratings
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{ItemId, MatrixBuilder, UserId};

    fn matrix() -> RatingMatrix {
        let mut b = MatrixBuilder::with_dims(4, 3);
        b.push(UserId::new(0), ItemId::new(0), 5.0);
        b.push(UserId::new(0), ItemId::new(1), 3.0);
        b.push(UserId::new(1), ItemId::new(0), 3.0);
        // user 2 and 3 rate nothing; item 2 unrated
        b.build().unwrap()
    }

    #[test]
    fn counts_and_density() {
        let s = MatrixStats::compute(&matrix());
        assert_eq!(s.active_users, 2);
        assert_eq!(s.num_users, 4);
        assert_eq!(s.active_items, 2);
        assert_eq!(s.num_items, 3);
        assert_eq!(s.num_ratings, 3);
        assert!((s.density - 3.0 / 12.0).abs() < 1e-12);
        assert!((s.avg_ratings_per_user - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rating_value_stats() {
        let s = MatrixStats::compute(&matrix());
        assert_eq!(s.distinct_rating_values, 2); // {3, 5}
        assert_eq!(s.min_rating, 3.0);
        assert_eq!(s.max_rating, 5.0);
        assert_eq!(s.min_ratings_per_user, 1);
        assert_eq!(s.max_ratings_per_user, 2);
        assert!((s.global_mean - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_table_one_rows() {
        let text = MatrixStats::compute(&matrix()).to_string();
        assert!(text.contains("No. of users"));
        assert!(text.contains("Density of data"));
        assert!(text.contains("25.00%"));
    }
}
