//! Fused weight planes — the serving fast path's memory layout.
//!
//! The online kernels (Eq. 10–13) weigh every cell by `w = ε` (original
//! rating) or `w = 1 − ε` (smoothed rating) and then multiply by the
//! rating itself. Doing that per request means a provenance-bitmap
//! extraction, an `is_nan` branch, and a select on every kernel
//! iteration. Post-smoothing the matrix is *complete* and ε is fixed for
//! the lifetime of a fitted model, so all of it can be folded once at fit
//! time into two dense planes:
//!
//! - `w(u, i)`  — the Eq. 11 weight, `0.0` where the cell is absent,
//! - `w·r(u, i)` — the weight times the rating, `0.0` where absent.
//!
//! Absent cells contribute exact zeros to every weighted sum, so the
//! kernels lose their per-cell branches entirely and become straight-line
//! multiply-accumulate over contiguous memory. A third plane stores
//! presence as `1.0`/`0.0` so overlap counts (`n`, `m_used`) stay exact
//! without reintroducing a branch — summing at most a few thousand ones
//! is exact in `f64`.
//!
//! `w` and `w·r` are interleaved per cell (`[w, w·r]` pairs) so a gather
//! touches one cache line per cell instead of two.

use crate::{DenseRatings, ItemId, UserId};

/// Dense per-cell `[w, w·r]` pairs plus a presence plane, with ε folded
/// in. Built once per fitted model (and rebuilt when the dense ratings or
/// ε change); read-only on the serving path.
#[derive(Debug, Clone)]
pub struct WeightPlanes {
    num_users: usize,
    num_items: usize,
    /// `[w, w·r]` per cell; `u * num_items + i`. Stored as fixed-size
    /// pairs so one (bounds-checked) index yields both values.
    pairs: Vec<[f64; 2]>,
    /// `1.0` where the cell holds a value, `0.0` where absent.
    present: Vec<f64>,
}

impl WeightPlanes {
    /// Folds the dense ratings and their provenance bitmap into weight
    /// planes under the Eq. 11 weight `ε` (original) / `1 − ε` (smoothed).
    pub fn from_dense(dense: &DenseRatings, epsilon: f64) -> Self {
        let (p, q) = (dense.num_users(), dense.num_items());
        let mut pairs = vec![[0.0; 2]; p * q];
        let mut present = vec![0.0; p * q];
        for ui in 0..p {
            let u = UserId::from(ui);
            let row = dense.row(u);
            let base = ui * q;
            for (ii, &r) in row.iter().enumerate() {
                if r.is_nan() {
                    continue;
                }
                let w = if dense.is_original(u, ItemId::from(ii)) {
                    epsilon
                } else {
                    1.0 - epsilon
                };
                pairs[base + ii] = [w, w * r];
                present[base + ii] = 1.0;
            }
        }
        Self {
            num_users: p,
            num_items: q,
            pairs,
            present,
        }
    }

    /// Number of user rows.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of item columns.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// The `[w, w·r]` row of user `u`: `num_items` cells, cell `i` at
    /// index `i`.
    #[inline]
    pub fn pair_row(&self, u: UserId) -> &[[f64; 2]] {
        let lo = u.index() * self.num_items;
        &self.pairs[lo..lo + self.num_items]
    }

    /// The presence row of user `u` (`1.0` present / `0.0` absent).
    #[inline]
    pub fn present_row(&self, u: UserId) -> &[f64] {
        let lo = u.index() * self.num_items;
        &self.present[lo..lo + self.num_items]
    }

    /// The `(w, w·r)` pair of one cell (`(0.0, 0.0)` where absent).
    #[inline]
    pub fn pair(&self, u: UserId, i: ItemId) -> (f64, f64) {
        debug_assert!(u.index() < self.num_users && i.index() < self.num_items);
        let [w, wr] = self.pairs[u.index() * self.num_items + i.index()];
        (w, wr)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn dense() -> DenseRatings {
        let mut d = DenseRatings::new(2, 3);
        d.set_original(UserId::new(0), ItemId::new(0), 4.0);
        d.set_smoothed(UserId::new(0), ItemId::new(2), 2.5);
        d.set_original(UserId::new(1), ItemId::new(1), 1.0);
        d
    }

    #[test]
    fn planes_fold_epsilon_and_provenance() {
        let p = WeightPlanes::from_dense(&dense(), 0.35);
        // original rating: w = ε
        assert_eq!(p.pair(UserId::new(0), ItemId::new(0)), (0.35, 0.35 * 4.0));
        // smoothed rating: w = 1 − ε
        let (w, wr) = p.pair(UserId::new(0), ItemId::new(2));
        assert!((w - 0.65).abs() < 1e-12 && (wr - 0.65 * 2.5).abs() < 1e-12);
        // absent cell: exact zeros
        assert_eq!(p.pair(UserId::new(0), ItemId::new(1)), (0.0, 0.0));
        assert_eq!(p.pair(UserId::new(1), ItemId::new(0)), (0.0, 0.0));
    }

    #[test]
    fn presence_plane_tracks_cells_not_weights() {
        // ε = 1 zeroes the weight of smoothed cells; presence must still
        // distinguish "absent" from "present with zero weight".
        let p = WeightPlanes::from_dense(&dense(), 1.0);
        let row0 = p.present_row(UserId::new(0));
        assert_eq!(row0, &[1.0, 0.0, 1.0]);
        assert_eq!(p.pair(UserId::new(0), ItemId::new(2)), (0.0, 0.0));
        assert_eq!(p.present_row(UserId::new(1)), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn rows_are_contiguous_views() {
        let p = WeightPlanes::from_dense(&dense(), 0.35);
        assert_eq!(p.num_users(), 2);
        assert_eq!(p.num_items(), 3);
        let row = p.pair_row(UserId::new(1));
        assert_eq!(row.len(), 3);
        assert_eq!(row[1], [0.35, 0.35]);
        let (w, wr) = p.pair(UserId::new(1), ItemId::new(1));
        assert_eq!((w, wr), (0.35, 0.35));
    }
}
