//! Quantized fused weight planes — the serving fast path's memory layout.
//!
//! The online kernels (Eq. 10–13) weigh every cell by `w = ε` (original
//! rating) or `w = 1 − ε` (smoothed rating) and then multiply by the
//! rating itself. Post-smoothing the matrix is *complete* and ε is fixed
//! for the lifetime of a fitted model, so all of it can be folded once at
//! fit time. The first fused layout stored `[f64 w, f64 w·r]` pairs plus
//! an `f64` presence plane — 24 bytes per cell. That made the kernels
//! branch-free but left the scattered-request path LLC-latency-bound
//! (DESIGN.md §6b): at 500×1000 the pair plane alone is ~12 MB, so every
//! mixed-pattern request misses to DRAM.
//!
//! This layout attacks the footprint instead of the ALUs:
//!
//! - **Cells are quantized codes, not floats.** One `u16` (default) or
//!   `u8` per cell: bit 0 is provenance (`1` = original rating, `0` =
//!   smoothed), bit 1 is presence, and the remaining 14 (resp. 6) bits
//!   are a linear code for the rating over the plane's own `[min, max]`
//!   range (`r ≈ min + code · step`, `step = span / (2^bits − 1)`).
//!   16 B/cell becomes 2 B/cell.
//! - **Presence lives in the cell *and* in a bit-packed plane.** The
//!   in-cell copy (bit 1) makes a kernel's scattered gather one load per
//!   cell — the LLC-bound MAC loops never touch a second stream. The
//!   canonical bit-packed plane (one bit per cell, little-endian `u64`
//!   words, 64 cells per word) serves the word-at-a-time consumers
//!   ([`present_bit`], overlap tests, [`WeightPlanes::is_present`]).
//!   Presence is load-bearing either way — an absent cell is stored
//!   all-zero, which *would* dequantize to a smoothed-cell weight, so
//!   dequantization gates the weight through the presence bit
//!   (see [`PlaneDequant::pair`]).
//! - **Weights stay exact.** Dequantization looks the weight up in a
//!   4-entry LUT indexed by the cell's low two bits,
//!   `(present << 1) | provenance`: `[0, 0, 1−ε, ε]`. Only the *rating*
//!   carries quantization error (≤ `step/2` per cell); weighted-sum
//!   denominators, overlap counts, and estimator availability are
//!   bit-identical to the exact layout.
//!
//! All raw code/LUT handling lives in this file behind [`PlaneDequant`]
//! and the typed row views; kernels never touch cell bits directly (the
//! `quant-plane-raw-read` cf-analysis lint enforces this).

use crate::{DenseRatings, ItemId, UserId};

/// Storage precision of the quantized weight planes.
///
/// `U16` (the default) keeps rating error below `span/32766` — invisible
/// next to model error. `U8` halves the plane again for footprint-critical
/// deployments at a coarser (documented) tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanePrecision {
    /// 16-bit cells: 14-bit rating code + presence and provenance bits.
    #[default]
    U16,
    /// 8-bit cells: 6-bit rating code + presence and provenance bits.
    U8,
}

impl PlanePrecision {
    /// Stable wire/persistence code (`0` = U16, `1` = U8).
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            PlanePrecision::U16 => 0,
            PlanePrecision::U8 => 1,
        }
    }

    /// Inverse of [`PlanePrecision::code`]; `None` for unknown codes.
    #[inline]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(PlanePrecision::U16),
            1 => Some(PlanePrecision::U8),
            _ => None,
        }
    }
}

/// One quantized plane cell: an unsigned integer holding
/// `(rating_code << 2) | (present << 1) | provenance`.
///
/// Implemented for `u16` and `u8`; kernels are generic over this trait and
/// monomorphize per precision, so the dequant math inlines with no
/// per-cell dispatch.
pub trait QuantCell: Copy + Send + Sync + 'static {
    /// Bits available for the rating code (cell width minus the
    /// presence and provenance bits).
    const CODE_BITS: u32;
    /// Largest representable rating code.
    const MAX_CODE: u32 = (1u32 << Self::CODE_BITS) - 1;
    /// Packs raw cell bits (code + provenance already combined).
    fn pack(bits: u32) -> Self;
    /// The raw cell bits.
    fn bits(self) -> u32;
}

impl QuantCell for u16 {
    const CODE_BITS: u32 = 14;
    #[inline]
    fn pack(bits: u32) -> Self {
        bits as u16
    }
    #[inline]
    fn bits(self) -> u32 {
        self as u32
    }
}

impl QuantCell for u8 {
    const CODE_BITS: u32 = 6;
    #[inline]
    fn pack(bits: u32) -> Self {
        bits as u8
    }
    #[inline]
    fn bits(self) -> u32 {
        self as u32
    }
}

/// The dequantization constants of one plane: the exact-weight LUT and the
/// rating code's affine map. `Copy`, 48 bytes — callers hoist it out of
/// their loops and the whole struct lives in registers.
#[derive(Debug, Clone, Copy)]
pub struct PlaneDequant {
    /// Weight by `(present << 1) | provenance`: absent → `0.0` (twice),
    /// present smoothed → `1 − ε`, present original → `ε`. Exact — no
    /// quantization touches the weights.
    wlut: [f64; 4],
    /// Rating of code 0.
    min: f64,
    /// Rating increment per code step (`0.0` for a constant/empty plane).
    step: f64,
}

impl PlaneDequant {
    /// Dequantizes one cell into the `(w, w·r)` pair the kernels
    /// accumulate. The cell's own presence bit gates the weight (the LUT
    /// index is the low two bits, `(present << 1) | provenance`), so
    /// absent cells contribute exact zeros from a *single* load — the
    /// scattered MAC loops read one stream, not a cell stream plus a
    /// presence-word stream.
    #[inline(always)]
    pub fn pair<C: QuantCell>(&self, cell: C) -> (f64, f64) {
        let b = cell.bits();
        let w = self.wlut[(b & 3) as usize];
        let r = (b >> 2) as f64 * self.step + self.min;
        (w, w * r)
    }

    /// [`PlaneDequant::pair`] plus the cell's presence bit (0 or 1), for
    /// kernels that also count overlap (`m_used`, PCC normalization).
    #[inline(always)]
    pub fn triple<C: QuantCell>(&self, cell: C) -> (f64, f64, u64) {
        let b = cell.bits();
        let w = self.wlut[(b & 3) as usize];
        let r = (b >> 2) as f64 * self.step + self.min;
        (w, w * r, u64::from((b >> 1) & 1))
    }

    /// The rating increment per code step — the quantization granularity.
    /// Per-cell rating error is at most `step / 2`.
    #[inline]
    pub fn step(&self) -> f64 {
        self.step
    }
}

/// Extracts the presence bit of cell `c` from a bit-packed presence row
/// (little-endian `u64` words, 64 cells per word). Returns 0 or 1.
#[inline(always)]
pub fn present_bit(words: &[u64], c: usize) -> u64 {
    (words[c >> 6] >> (c & 63)) & 1
}

/// A borrowed, precision-typed view of one plane: the generic kernels'
/// entry point. Obtained via [`WeightPlanes::view`]; dispatching on the
/// [`PlanesView`] enum once per request monomorphizes the whole kernel.
#[derive(Debug, Clone, Copy)]
pub struct TypedPlanes<'a, C: QuantCell> {
    cells: &'a [C],
    present: &'a [u64],
    num_items: usize,
    words_per_row: usize,
    dq: PlaneDequant,
}

impl<'a, C: QuantCell> TypedPlanes<'a, C> {
    /// The plane's dequantization constants (copy it out of loops).
    #[inline]
    pub fn dq(&self) -> PlaneDequant {
        self.dq
    }

    /// Number of item columns per row.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// The quantized cell row of user `u` (`num_items` cells).
    #[inline]
    pub fn cell_row(&self, u: UserId) -> &'a [C] {
        let lo = u.index() * self.num_items;
        &self.cells[lo..lo + self.num_items]
    }

    /// The bit-packed presence row of user `u`
    /// (`ceil(num_items / 64)` words; index with [`present_bit`]).
    #[inline]
    pub fn present_row(&self, u: UserId) -> &'a [u64] {
        let lo = u.index() * self.words_per_row;
        &self.present[lo..lo + self.words_per_row]
    }

    /// The dequantized `(w, w·r)` pair of one cell (`(0.0, ±0.0)` where
    /// absent).
    #[inline]
    pub fn pair(&self, u: UserId, i: ItemId) -> (f64, f64) {
        self.dq.pair(self.cell_row(u)[i.index()])
    }

    /// Safe software prefetch of user `u`'s cell row: touches one cell per
    /// cache line and sinks the result through [`std::hint::black_box`] so
    /// the loads are emitted but nothing is architecturally consumed. With
    /// `unsafe` forbidden crate-wide there is no `_mm_prefetch`;
    /// demand-touching the next neighbor's row while the current one is in
    /// the MAC overlaps its DRAM latency with live work, which is the same
    /// pipelining effect. Presence words are not touched: with presence
    /// folded into the cells, the MAC reads only this row.
    #[inline]
    pub fn prefetch_row(&self, u: UserId) {
        let row = self.cell_row(u);
        let stride = (64 / std::mem::size_of::<C>()).max(1);
        let mut acc = 0u32;
        let mut c = 0;
        while c < row.len() {
            acc ^= row[c].bits();
            c += stride;
        }
        std::hint::black_box(acc);
    }
}

/// The precision-dispatch view over a [`WeightPlanes`]. Match once per
/// request, then run a generic kernel on the typed arm.
#[derive(Debug, Clone, Copy)]
pub enum PlanesView<'a> {
    /// 16-bit cells.
    U16(TypedPlanes<'a, u16>),
    /// 8-bit cells.
    U8(TypedPlanes<'a, u8>),
}

#[derive(Debug, Clone)]
enum Cells {
    U16(Vec<u16>),
    U8(Vec<u8>),
}

/// Dense quantized weight planes plus a bit-packed presence plane, with ε
/// folded into the weight LUT. Built once per fitted model (and rebuilt
/// when the dense ratings, ε, or the precision change); read-only on the
/// serving path.
#[derive(Debug, Clone)]
pub struct WeightPlanes {
    num_users: usize,
    num_items: usize,
    words_per_row: usize,
    dq: PlaneDequant,
    precision: PlanePrecision,
    cells: Cells,
    /// Presence bits, row-major: `words_per_row` little-endian `u64`
    /// words per user.
    present: Vec<u64>,
}

impl WeightPlanes {
    /// Folds the dense ratings and their provenance bitmap into quantized
    /// weight planes at the default [`PlanePrecision::U16`].
    pub fn from_dense(dense: &DenseRatings, epsilon: f64) -> Self {
        Self::from_dense_with(dense, epsilon, PlanePrecision::default())
    }

    /// [`WeightPlanes::from_dense`] at an explicit precision. The rating
    /// code range is self-calibrated to the plane's own min/max (smoothed
    /// ratings routinely overshoot the nominal rating scale), so the
    /// documented tolerance is `span / (2^code_bits − 1) / 2` per cell.
    pub fn from_dense_with(dense: &DenseRatings, epsilon: f64, precision: PlanePrecision) -> Self {
        let (p, q) = (dense.num_users(), dense.num_items());
        let words_per_row = q.div_ceil(64);

        // Pass 1: self-calibrate the code range over the present cells.
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for ui in 0..p {
            for &r in dense.row(UserId::from(ui)) {
                if !r.is_nan() {
                    lo = lo.min(r);
                    hi = hi.max(r);
                }
            }
        }
        let (min, span) = if lo.is_finite() && hi > lo {
            (lo, hi - lo)
        } else if lo.is_finite() {
            (lo, 0.0)
        } else {
            (0.0, 0.0)
        };

        let (cells, present, step) = match precision {
            PlanePrecision::U16 => {
                let (c, pr, s) = build_cells::<u16>(dense, min, span, words_per_row);
                (Cells::U16(c), pr, s)
            }
            PlanePrecision::U8 => {
                let (c, pr, s) = build_cells::<u8>(dense, min, span, words_per_row);
                (Cells::U8(c), pr, s)
            }
        };

        Self {
            num_users: p,
            num_items: q,
            words_per_row,
            dq: PlaneDequant {
                wlut: [0.0, 0.0, 1.0 - epsilon, epsilon],
                min,
                step,
            },
            precision,
            cells,
            present,
        }
    }

    /// Number of user rows.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of item columns.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// The storage precision the planes were built at.
    #[inline]
    pub fn precision(&self) -> PlanePrecision {
        self.precision
    }

    /// The rating quantization granularity (per-cell rating error is at
    /// most half this). `0.0` for constant or empty planes.
    #[inline]
    pub fn step(&self) -> f64 {
        self.dq.step
    }

    /// The ε folded into the weight LUT at build time (persistence
    /// validates a stored plane against its config through this).
    #[inline]
    pub fn epsilon(&self) -> f64 {
        self.dq.wlut[3]
    }

    /// The precision-typed view for kernel dispatch.
    #[inline]
    pub fn view(&self) -> PlanesView<'_> {
        match &self.cells {
            Cells::U16(c) => PlanesView::U16(TypedPlanes {
                cells: c,
                present: &self.present,
                num_items: self.num_items,
                words_per_row: self.words_per_row,
                dq: self.dq,
            }),
            Cells::U8(c) => PlanesView::U8(TypedPlanes {
                cells: c,
                present: &self.present,
                num_items: self.num_items,
                words_per_row: self.words_per_row,
                dq: self.dq,
            }),
        }
    }

    /// The dequantized `(w, w·r)` pair of one cell (`(0.0, ±0.0)` where
    /// absent). Convenience for single-cell reads; kernels should dispatch
    /// through [`WeightPlanes::view`] instead.
    #[inline]
    pub fn pair(&self, u: UserId, i: ItemId) -> (f64, f64) {
        debug_assert!(u.index() < self.num_users && i.index() < self.num_items);
        match self.view() {
            PlanesView::U16(v) => v.pair(u, i),
            PlanesView::U8(v) => v.pair(u, i),
        }
    }

    /// Whether the cell holds a value.
    #[inline]
    pub fn is_present(&self, u: UserId, i: ItemId) -> bool {
        let c = i.index();
        let lo = u.index() * self.words_per_row;
        present_bit(&self.present[lo..lo + self.words_per_row], c) == 1
    }

    /// Bytes held by the quantized cell plane (footprint gauge).
    #[inline]
    pub fn cell_bytes(&self) -> usize {
        match &self.cells {
            Cells::U16(c) => c.len() * std::mem::size_of::<u16>(),
            Cells::U8(c) => c.len() * std::mem::size_of::<u8>(),
        }
    }

    /// Bytes held by the bit-packed presence plane (footprint gauge).
    #[inline]
    pub fn present_bytes(&self) -> usize {
        self.present.len() * std::mem::size_of::<u64>()
    }

    /// Serializes the planes into a self-contained little-endian payload
    /// (the V3 persistence section): precision code, dimensions, the
    /// dequant affine map, then the raw cells and presence words. The
    /// weight LUT is *not* stored — it is `[0, 0, 1−ε, ε]` by
    /// construction, so storing `ε` alone reconstructs it exactly.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(41 + self.cell_bytes() + self.present_bytes());
        w.push(self.precision.code());
        w.extend_from_slice(&(self.num_users as u64).to_le_bytes());
        w.extend_from_slice(&(self.num_items as u64).to_le_bytes());
        w.extend_from_slice(&self.dq.min.to_le_bytes());
        w.extend_from_slice(&self.dq.step.to_le_bytes());
        w.extend_from_slice(&self.dq.wlut[3].to_le_bytes()); // ε
        match &self.cells {
            Cells::U16(c) => {
                for &cell in c {
                    w.extend_from_slice(&cell.to_le_bytes());
                }
            }
            Cells::U8(c) => w.extend_from_slice(c),
        }
        for &word in &self.present {
            w.extend_from_slice(&word.to_le_bytes());
        }
        w
    }

    /// Inverse of [`WeightPlanes::encode`]. Validates the precision code,
    /// dimension sanity, the dequant constants, and that the payload
    /// length matches the dimensions *exactly* — trailing or missing
    /// bytes are corruption even when a checksum upstream passed.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        fn take<'a>(b: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], String> {
            if b.len() < n {
                return Err(format!("planes payload truncated reading {what}"));
            }
            let (head, tail) = b.split_at(n);
            *b = tail;
            Ok(head)
        }
        fn take_u64(b: &mut &[u8], what: &str) -> Result<u64, String> {
            let raw: [u8; 8] = take(b, 8, what)?
                .try_into()
                .map_err(|_| format!("planes payload truncated reading {what}"))?;
            Ok(u64::from_le_bytes(raw))
        }
        fn take_f64(b: &mut &[u8], what: &str) -> Result<f64, String> {
            let v = f64::from_bits(take_u64(b, what)?);
            if v.is_finite() {
                Ok(v)
            } else {
                Err(format!("planes {what} is not finite"))
            }
        }

        const LIMIT: u64 = 1 << 32;
        let mut b = bytes;
        let code = take(&mut b, 1, "precision code")?[0];
        let precision = PlanePrecision::from_code(code)
            .ok_or_else(|| format!("unknown plane precision code {code}"))?;
        let num_users = take_u64(&mut b, "num_users")?;
        let num_items = take_u64(&mut b, "num_items")?;
        let num_cells = num_users
            .checked_mul(num_items)
            .filter(|&n| n <= LIMIT && num_users <= LIMIT && num_items <= LIMIT)
            .ok_or_else(|| {
                format!("planes dimensions {num_users}×{num_items} exceed sanity limit")
            })? as usize;
        let min = take_f64(&mut b, "min")?;
        let step = take_f64(&mut b, "step")?;
        if step < 0.0 {
            return Err(format!("planes step {step} is negative"));
        }
        let epsilon = take_f64(&mut b, "epsilon")?;
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(format!("planes epsilon {epsilon} outside [0, 1]"));
        }

        let cells = match precision {
            PlanePrecision::U16 => {
                let raw = take(&mut b, num_cells * 2, "cells")?;
                Cells::U16(
                    raw.chunks_exact(2)
                        .map(|c| u16::from_le_bytes([c[0], c[1]]))
                        .collect(),
                )
            }
            PlanePrecision::U8 => Cells::U8(take(&mut b, num_cells, "cells")?.to_vec()),
        };
        let words_per_row = (num_items as usize).div_ceil(64);
        let num_words = num_users as usize * words_per_row;
        let present = take(&mut b, num_words * 8, "presence words")?
            .chunks_exact(8)
            .map(|c| {
                let raw: [u8; 8] = c.try_into().unwrap_or([0; 8]);
                u64::from_le_bytes(raw)
            })
            .collect();
        if !b.is_empty() {
            return Err(format!("planes payload has {} trailing bytes", b.len()));
        }
        Ok(Self {
            num_users: num_users as usize,
            num_items: num_items as usize,
            words_per_row,
            dq: PlaneDequant {
                wlut: [0.0, 0.0, 1.0 - epsilon, epsilon],
                min,
                step,
            },
            precision,
            cells,
            present,
        })
    }
}

/// Quantizes every present cell of `dense` into `C` codes and packs the
/// presence bits. Returns `(cells, present_words, step)`.
fn build_cells<C: QuantCell>(
    dense: &DenseRatings,
    min: f64,
    span: f64,
    words_per_row: usize,
) -> (Vec<C>, Vec<u64>, f64) {
    let (p, q) = (dense.num_users(), dense.num_items());
    let max_code = C::MAX_CODE;
    let step = if span > 0.0 {
        span / max_code as f64
    } else {
        0.0
    };
    let inv_step = if step > 0.0 { 1.0 / step } else { 0.0 };

    let mut cells = vec![C::pack(0); p * q];
    let mut present = vec![0u64; p * words_per_row];
    for ui in 0..p {
        let u = UserId::from(ui);
        let row = dense.row(u);
        let base = ui * q;
        let wbase = ui * words_per_row;
        for (ii, &r) in row.iter().enumerate() {
            if r.is_nan() {
                continue;
            }
            // (r − min) ≥ 0 by construction of min; clamp guards the
            // floating-point overshoot of round() at the top of the range.
            let code = (((r - min) * inv_step).round() as u32).min(max_code);
            let prov = u32::from(dense.is_original(u, ItemId::from(ii)));
            cells[base + ii] = C::pack((code << 2) | 0b10 | prov);
            present[wbase + (ii >> 6)] |= 1u64 << (ii & 63);
        }
    }
    (cells, present, step)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn dense() -> DenseRatings {
        let mut d = DenseRatings::new(2, 3);
        d.set_original(UserId::new(0), ItemId::new(0), 4.0);
        d.set_smoothed(UserId::new(0), ItemId::new(2), 2.5);
        d.set_original(UserId::new(1), ItemId::new(1), 1.0);
        d
    }

    #[test]
    fn planes_fold_epsilon_and_provenance() {
        let p = WeightPlanes::from_dense(&dense(), 0.35);
        let tol = p.step(); // rating error ≤ step/2; weights exact
                            // original rating: w = ε exactly, rating within quantization
        let (w, wr) = p.pair(UserId::new(0), ItemId::new(0));
        assert_eq!(w, 0.35);
        assert!((wr - 0.35 * 4.0).abs() <= 0.35 * tol);
        // smoothed rating: w = 1 − ε exactly
        let (w, wr) = p.pair(UserId::new(0), ItemId::new(2));
        assert!((w - 0.65).abs() < 1e-12);
        assert!((wr - 0.65 * 2.5).abs() <= 0.65 * tol);
        // absent cell: exact zero weight and product
        let (w, wr) = p.pair(UserId::new(0), ItemId::new(1));
        assert_eq!((w, wr.abs()), (0.0, 0.0));
        let (w, wr) = p.pair(UserId::new(1), ItemId::new(0));
        assert_eq!((w, wr.abs()), (0.0, 0.0));
    }

    #[test]
    fn presence_plane_tracks_cells_not_weights() {
        // ε = 1 zeroes the weight of smoothed cells; presence must still
        // distinguish "absent" from "present with zero weight".
        let p = WeightPlanes::from_dense(&dense(), 1.0);
        assert!(p.is_present(UserId::new(0), ItemId::new(0)));
        assert!(!p.is_present(UserId::new(0), ItemId::new(1)));
        assert!(p.is_present(UserId::new(0), ItemId::new(2)));
        let (w, wr) = p.pair(UserId::new(0), ItemId::new(2));
        assert_eq!((w, wr.abs()), (0.0, 0.0));
        assert!(!p.is_present(UserId::new(1), ItemId::new(0)));
        assert!(p.is_present(UserId::new(1), ItemId::new(1)));
        assert!(!p.is_present(UserId::new(1), ItemId::new(2)));
    }

    #[test]
    fn rows_are_contiguous_views() {
        let p = WeightPlanes::from_dense(&dense(), 0.35);
        assert_eq!(p.num_users(), 2);
        assert_eq!(p.num_items(), 3);
        let PlanesView::U16(v) = p.view() else {
            panic!("default precision must be U16");
        };
        assert_eq!(v.cell_row(UserId::new(1)).len(), 3);
        assert_eq!(v.present_row(UserId::new(1)).len(), 1);
        let (w, wr) = v.pair(UserId::new(1), ItemId::new(1));
        assert_eq!(w, 0.35);
        assert!((wr - 0.35).abs() <= 0.35 * p.step());
        // Typed view and dispatching accessor agree exactly.
        assert_eq!(p.pair(UserId::new(1), ItemId::new(1)), (w, wr));
    }

    #[test]
    fn u8_precision_quantizes_coarser_but_same_weights() {
        let d = dense();
        let p16 = WeightPlanes::from_dense_with(&d, 0.35, PlanePrecision::U16);
        let p8 = WeightPlanes::from_dense_with(&d, 0.35, PlanePrecision::U8);
        assert!(p8.step() > p16.step());
        // span = 4.0 − 1.0 = 3.0 over 63 (resp. 16383) codes.
        assert!((p8.step() - 3.0 / 63.0).abs() < 1e-12);
        assert!((p16.step() - 3.0 / 16383.0).abs() < 1e-12);
        let (w16, _) = p16.pair(UserId::new(0), ItemId::new(2));
        let (w8, wr8) = p8.pair(UserId::new(0), ItemId::new(2));
        assert_eq!(w16, w8); // weights never quantized
        assert!((wr8 - 0.65 * 2.5).abs() <= 0.65 * p8.step());
        assert_eq!(p8.cell_bytes() * 2, p16.cell_bytes());
    }

    #[test]
    fn constant_and_empty_planes_have_zero_step() {
        let mut d = DenseRatings::new(1, 2);
        d.set_original(UserId::new(0), ItemId::new(0), 3.0);
        d.set_original(UserId::new(0), ItemId::new(1), 3.0);
        let p = WeightPlanes::from_dense(&d, 0.35);
        assert_eq!(p.step(), 0.0);
        // Constant plane round-trips exactly: r = min.
        assert_eq!(p.pair(UserId::new(0), ItemId::new(1)), (0.35, 0.35 * 3.0));

        let empty = WeightPlanes::from_dense(&DenseRatings::new(2, 3), 0.35);
        assert_eq!(empty.step(), 0.0);
        assert!(!empty.is_present(UserId::new(1), ItemId::new(2)));
    }

    #[test]
    fn encode_decode_round_trips_both_precisions() {
        let d = dense();
        for precision in [PlanePrecision::U16, PlanePrecision::U8] {
            let original = WeightPlanes::from_dense_with(&d, 0.35, precision);
            let decoded = WeightPlanes::decode(&original.encode()).unwrap();
            assert_eq!(decoded.precision(), precision);
            assert_eq!(decoded.num_users(), original.num_users());
            assert_eq!(decoded.num_items(), original.num_items());
            assert_eq!(decoded.step(), original.step());
            for u in 0..2 {
                for i in 0..3 {
                    let (u, i) = (UserId::new(u), ItemId::new(i));
                    assert_eq!(decoded.pair(u, i), original.pair(u, i));
                    assert_eq!(decoded.is_present(u, i), original.is_present(u, i));
                }
            }
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let clean = WeightPlanes::from_dense(&dense(), 0.35).encode();
        // Truncation anywhere fails.
        for cut in [0usize, 5, 24, clean.len() - 1] {
            assert!(WeightPlanes::decode(&clean[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage fails even though all fields parse.
        let mut long = clean.clone();
        long.push(0);
        assert!(WeightPlanes::decode(&long).is_err());
        // Unknown precision code fails.
        let mut bad = clean.clone();
        bad[0] = 9;
        assert!(WeightPlanes::decode(&bad).is_err());
        // Corrupt epsilon (outside [0,1]) fails.
        let mut bad = clean;
        bad[33..41].copy_from_slice(&7.5f64.to_le_bytes());
        assert!(WeightPlanes::decode(&bad).is_err());
    }

    #[test]
    fn presence_words_pack_64_cells_per_word() {
        // 70 items → 2 words per row; bit 69 lands in word 1, bit 5.
        let mut d = DenseRatings::new(2, 70);
        d.set_original(UserId::new(1), ItemId::new(69), 2.0);
        d.set_smoothed(UserId::new(1), ItemId::new(0), 4.0);
        let p = WeightPlanes::from_dense(&d, 0.35);
        let PlanesView::U16(v) = p.view() else {
            panic!("default precision must be U16");
        };
        assert_eq!(v.present_row(UserId::new(0)), &[0u64, 0u64]);
        let row1 = v.present_row(UserId::new(1));
        assert_eq!(row1, &[1u64, 1u64 << 5]);
        assert_eq!(present_bit(row1, 69), 1);
        assert_eq!(present_bit(row1, 68), 0);
        assert_eq!(p.present_bytes(), 2 * 2 * 8);
    }
}
