//! Typed indices for users and items.
//!
//! The paper works with a `Q × P` item-user matrix; mixing up the two axes
//! is the classic bug in CF code, so both axes get a newtype. Internally
//! they are `u32`: the MovieLens-scale matrices this workspace targets are
//! far below `u32::MAX`, and the smaller index type halves the size of the
//! sparse index arrays (see the Type Sizes guidance in the Rust perf book).

use std::fmt;

/// Identifier of a user (a row of the user-major matrix).
///
/// Wraps a dense 0-based index. Construct with [`UserId::new`] or `from`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

/// Identifier of an item (a column of the user-major matrix).
///
/// Wraps a dense 0-based index. Construct with [`ItemId::new`] or `from`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(pub u32);

macro_rules! impl_id {
    ($name:ident, $label:literal) => {
        impl $name {
            /// Creates an id from a dense 0-based index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// The underlying dense index, widened for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            /// Panics if `v` does not fit in `u32`; matrices that large are
            /// outside this crate's design envelope.
            #[inline]
            fn from(v: usize) -> Self {
                match u32::try_from(v) {
                    Ok(raw) => Self(raw),
                    Err(_) => panic!("index {v} exceeds u32 range"),
                }
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($label, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

impl_id!(UserId, "u");
impl_id!(ItemId, "i");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_id_roundtrip() {
        let u = UserId::new(7);
        assert_eq!(u.index(), 7);
        assert_eq!(u.raw(), 7);
        assert_eq!(UserId::from(7usize), u);
        assert_eq!(usize::from(u), 7);
    }

    #[test]
    fn item_id_roundtrip() {
        let i = ItemId::new(42);
        assert_eq!(i.index(), 42);
        assert_eq!(ItemId::from(42u32), i);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(UserId::new(1) < UserId::new(2));
        assert!(ItemId::new(0) < ItemId::new(10));
    }

    #[test]
    fn debug_formatting_distinguishes_axes() {
        assert_eq!(format!("{:?}", UserId::new(3)), "u3");
        assert_eq!(format!("{:?}", ItemId::new(3)), "i3");
        assert_eq!(format!("{}", ItemId::new(3)), "3");
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn oversized_usize_panics() {
        let _ = UserId::from(u64::MAX as usize);
    }
}
