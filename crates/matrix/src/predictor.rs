//! The `Predictor` trait shared by CFSF and every baseline, and the
//! rating-scale helpers used to clamp predictions.

use crate::{ItemId, UserId};

/// Inclusive rating scale (MovieLens uses 1..=5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingScale {
    /// Smallest expressible rating.
    pub min: f64,
    /// Largest expressible rating.
    pub max: f64,
}

impl RatingScale {
    /// A scale from `min` to `max` inclusive. Panics if the bounds are not
    /// finite and ordered.
    pub fn new(min: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min < max,
            "invalid rating scale [{min}, {max}]"
        );
        Self { min, max }
    }

    /// The MovieLens 1..=5 star scale used throughout the paper.
    pub const fn one_to_five() -> Self {
        Self { min: 1.0, max: 5.0 }
    }

    /// `true` if `r` lies on the scale.
    #[inline]
    pub fn contains(&self, r: f64) -> bool {
        r >= self.min && r <= self.max
    }

    /// Clamps `r` onto the scale. Non-finite inputs clamp to the midpoint,
    /// so a degenerate similarity sum can never poison MAE with NaN.
    #[inline]
    pub fn clamp(&self, r: f64) -> f64 {
        if r.is_finite() {
            r.clamp(self.min, self.max)
        } else {
            self.midpoint()
        }
    }

    /// Midpoint of the scale (3.0 for MovieLens).
    #[inline]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.min + self.max)
    }
}

impl Default for RatingScale {
    fn default() -> Self {
        Self::one_to_five()
    }
}

/// Clamps a raw prediction onto the 1..=5 MovieLens scale.
///
/// Convenience for the common case; prefer [`RatingScale::clamp`] when the
/// scale travels with the matrix.
#[inline]
pub fn clamp_rating(r: f64) -> f64 {
    RatingScale::one_to_five().clamp(r)
}

/// A trained collaborative-filtering model that can score (user, item)
/// pairs.
///
/// Every algorithm in this workspace — CFSF and the seven comparators from
/// the paper's evaluation — implements this trait, which is what lets the
/// evaluation harness regenerate Tables II/III and Figures 2–8 with one
/// generic loop.
pub trait Predictor: Send + Sync {
    /// Predicts the rating `user` would give `item`.
    ///
    /// Returns `None` only when the model has *no* signal at all for the
    /// pair (e.g. an unknown user with no profile and no fallback). All
    /// implementations clamp onto the training matrix's rating scale.
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64>;

    /// Short algorithm name used in experiment reports ("CFSF", "SUR", ...).
    fn name(&self) -> &'static str;

    /// Predicts with a guaranteed value, falling back to `fallback` when
    /// the model abstains. The paper's MAE protocol scores every holdout
    /// cell, so abstentions must become *some* number.
    fn predict_or(&self, user: UserId, item: ItemId, fallback: f64) -> f64 {
        self.predict(user, item).unwrap_or(fallback)
    }
}

impl<P: Predictor + ?Sized> Predictor for &P {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        (**self).predict(user, item)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn predict(&self, user: UserId, item: ItemId) -> Option<f64> {
        (**self).predict(user, item)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_contains_and_clamp() {
        let s = RatingScale::one_to_five();
        assert!(s.contains(1.0) && s.contains(5.0) && s.contains(3.3));
        assert!(!s.contains(0.9) && !s.contains(5.1));
        assert_eq!(s.clamp(7.0), 5.0);
        assert_eq!(s.clamp(-2.0), 1.0);
        assert_eq!(s.clamp(4.2), 4.2);
    }

    #[test]
    fn clamp_handles_non_finite() {
        let s = RatingScale::one_to_five();
        assert_eq!(s.clamp(f64::NAN), 3.0);
        assert_eq!(s.clamp(f64::INFINITY), 3.0);
        assert_eq!(clamp_rating(f64::NEG_INFINITY), 3.0);
    }

    #[test]
    #[should_panic(expected = "invalid rating scale")]
    fn inverted_scale_panics() {
        let _ = RatingScale::new(5.0, 1.0);
    }

    struct Always(f64);
    impl Predictor for Always {
        fn predict(&self, _: UserId, _: ItemId) -> Option<f64> {
            if self.0.is_nan() {
                None
            } else {
                Some(self.0)
            }
        }
        fn name(&self) -> &'static str {
            "always"
        }
    }

    #[test]
    fn predict_or_falls_back_on_abstention() {
        let p = Always(f64::NAN);
        assert_eq!(p.predict_or(UserId::new(0), ItemId::new(0), 3.0), 3.0);
        let p = Always(4.0);
        assert_eq!(p.predict_or(UserId::new(0), ItemId::new(0), 3.0), 4.0);
    }

    #[test]
    fn blanket_impls_delegate() {
        let p = Always(2.0);
        let r: &dyn Predictor = &p;
        assert_eq!(r.predict(UserId::new(0), ItemId::new(0)), Some(2.0));
        let b: Box<dyn Predictor> = Box::new(Always(1.5));
        assert_eq!(b.name(), "always");
        assert_eq!(b.predict(UserId::new(1), ItemId::new(1)), Some(1.5));
    }
}
