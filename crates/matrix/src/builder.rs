//! Construction of [`RatingMatrix`] from `(user, item, rating)` triplets.

use crate::{ItemId, MatrixError, RatingMatrix, RatingScale, UserId};

/// Accumulates rating triplets and freezes them into a [`RatingMatrix`].
///
/// The builder accepts triplets in any order, deduplicates exact repeats,
/// rejects conflicting repeats, validates every rating against the declared
/// [`RatingScale`], and assembles both the CSR and CSC views plus all means
/// in `O(n log n)`.
///
/// ```
/// use cf_matrix::{MatrixBuilder, UserId, ItemId};
///
/// let mut b = MatrixBuilder::new();
/// b.push(UserId::new(0), ItemId::new(2), 4.0);
/// b.push(UserId::new(1), ItemId::new(0), 3.0);
/// let m = b.build().unwrap();
/// assert_eq!(m.num_users(), 2);
/// assert_eq!(m.num_items(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct MatrixBuilder {
    triplets: Vec<(UserId, ItemId, f64)>,
    min_users: usize,
    min_items: usize,
    scale: RatingScale,
}

impl Default for MatrixBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MatrixBuilder {
    /// New builder; dimensions are inferred from the largest ids pushed.
    pub fn new() -> Self {
        Self {
            triplets: Vec::new(),
            min_users: 0,
            min_items: 0,
            scale: RatingScale::default(),
        }
    }

    /// New builder with dimensions fixed to at least `users × items`, so
    /// trailing unrated users/items keep their slots (the evaluation
    /// protocol relies on stable ids across splits).
    pub fn with_dims(users: usize, items: usize) -> Self {
        Self {
            triplets: Vec::new(),
            min_users: users,
            min_items: items,
            scale: RatingScale::default(),
        }
    }

    /// Sets the rating scale validated at build time (default 1..=5).
    #[must_use]
    pub fn scale(mut self, scale: RatingScale) -> Self {
        self.scale = scale;
        self
    }

    /// Pre-allocates space for `n` triplets.
    pub fn reserve(&mut self, n: usize) {
        self.triplets.reserve(n);
    }

    /// Adds one rating.
    pub fn push(&mut self, user: UserId, item: ItemId, rating: f64) {
        self.triplets.push((user, item, rating));
    }

    /// Number of triplets pushed so far (before deduplication).
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// `true` if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Validates, sorts, deduplicates, and assembles the matrix.
    pub fn build(self) -> Result<RatingMatrix, MatrixError> {
        let MatrixBuilder {
            mut triplets,
            min_users,
            min_items,
            scale,
        } = self;

        for &(u, i, r) in &triplets {
            if !r.is_finite() {
                return Err(MatrixError::NonFiniteRating {
                    user: u,
                    item: i,
                    value: r,
                });
            }
            if !scale.contains(r) {
                return Err(MatrixError::RatingOutOfScale {
                    user: u,
                    item: i,
                    value: r,
                    min: scale.min,
                    max: scale.max,
                });
            }
        }
        if triplets.is_empty() {
            return Err(MatrixError::Empty);
        }

        triplets.sort_unstable_by_key(|t| (t.0, t.1));
        // Reject conflicting duplicates, collapse exact ones.
        let mut deduped: Vec<(UserId, ItemId, f64)> = Vec::with_capacity(triplets.len());
        for (u, i, r) in triplets {
            match deduped.last() {
                Some(&(pu, pi, pr)) if pu == u && pi == i => {
                    if pr != r {
                        return Err(MatrixError::ConflictingDuplicate {
                            user: u,
                            item: i,
                            first: pr,
                            second: r,
                        });
                    }
                }
                _ => deduped.push((u, i, r)),
            }
        }

        let num_users = min_users.max(deduped.iter().map(|t| t.0.index() + 1).max().unwrap_or(0));
        let num_items = min_items.max(deduped.iter().map(|t| t.1.index() + 1).max().unwrap_or(0));
        let nnz = deduped.len();

        // CSR (already in user-major sorted order).
        let mut user_ptr = vec![0u32; num_users + 1];
        for &(u, _, _) in &deduped {
            user_ptr[u.index() + 1] += 1;
        }
        for k in 0..num_users {
            user_ptr[k + 1] += user_ptr[k];
        }
        let user_items: Vec<ItemId> = deduped.iter().map(|t| t.1).collect();
        let user_vals: Vec<f64> = deduped.iter().map(|t| t.2).collect();

        // CSC via counting sort on item.
        let mut item_ptr = vec![0u32; num_items + 1];
        for &(_, i, _) in &deduped {
            item_ptr[i.index() + 1] += 1;
        }
        for k in 0..num_items {
            item_ptr[k + 1] += item_ptr[k];
        }
        let mut cursor: Vec<u32> = item_ptr[..num_items].to_vec();
        let mut item_users = vec![UserId::new(0); nnz];
        let mut item_vals = vec![0.0f64; nnz];
        // deduped is user-major, so within each column users come out sorted.
        for &(u, i, r) in &deduped {
            let slot = cursor[i.index()] as usize;
            item_users[slot] = u;
            item_vals[slot] = r;
            cursor[i.index()] += 1;
        }

        let total: f64 = user_vals.iter().sum();
        let global_mean = total / nnz as f64;

        let mut user_means = vec![global_mean; num_users];
        for u in 0..num_users {
            let lo = user_ptr[u] as usize;
            let hi = user_ptr[u + 1] as usize;
            if hi > lo {
                user_means[u] = user_vals[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            }
        }
        let mut item_means = vec![global_mean; num_items];
        for i in 0..num_items {
            let lo = item_ptr[i] as usize;
            let hi = item_ptr[i + 1] as usize;
            if hi > lo {
                item_means[i] = item_vals[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            }
        }

        Ok(RatingMatrix {
            num_users,
            num_items,
            scale,
            user_ptr,
            user_items,
            user_vals,
            item_ptr,
            item_users,
            item_vals,
            user_means,
            item_means,
            global_mean,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_input_is_sorted() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(1), ItemId::new(3), 2.0);
        b.push(UserId::new(0), ItemId::new(1), 5.0);
        b.push(UserId::new(1), ItemId::new(0), 4.0);
        let m = b.build().unwrap();
        let (items, vals) = m.user_row(UserId::new(1));
        assert_eq!(items, &[ItemId::new(0), ItemId::new(3)]);
        assert_eq!(vals, &[4.0, 2.0]);
    }

    #[test]
    fn exact_duplicates_collapse() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), 3.0);
        b.push(UserId::new(0), ItemId::new(0), 3.0);
        let m = b.build().unwrap();
        assert_eq!(m.num_ratings(), 1);
    }

    #[test]
    fn conflicting_duplicates_error() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), 3.0);
        b.push(UserId::new(0), ItemId::new(0), 4.0);
        assert!(matches!(
            b.build(),
            Err(MatrixError::ConflictingDuplicate { .. })
        ));
    }

    #[test]
    fn nan_rating_rejected() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), f64::NAN);
        assert!(matches!(
            b.build(),
            Err(MatrixError::NonFiniteRating { .. })
        ));
    }

    #[test]
    fn out_of_scale_rejected() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), 6.0);
        assert!(matches!(
            b.build(),
            Err(MatrixError::RatingOutOfScale { .. })
        ));
    }

    #[test]
    fn custom_scale_accepts_wider_values() {
        let mut b = MatrixBuilder::new().scale(RatingScale::new(0.0, 10.0));
        b.push(UserId::new(0), ItemId::new(0), 6.0);
        let m = b.build().unwrap();
        assert_eq!(m.get(UserId::new(0), ItemId::new(0)), Some(6.0));
    }

    #[test]
    fn empty_builder_errors() {
        assert!(matches!(
            MatrixBuilder::new().build(),
            Err(MatrixError::Empty)
        ));
    }

    #[test]
    fn with_dims_pads_dimensions() {
        let mut b = MatrixBuilder::with_dims(10, 20);
        b.push(UserId::new(0), ItemId::new(0), 1.0);
        let m = b.build().unwrap();
        assert_eq!(m.num_users(), 10);
        assert_eq!(m.num_items(), 20);
    }

    #[test]
    fn dims_grow_past_with_dims_if_needed() {
        let mut b = MatrixBuilder::with_dims(2, 2);
        b.push(UserId::new(5), ItemId::new(7), 1.0);
        let m = b.build().unwrap();
        assert_eq!(m.num_users(), 6);
        assert_eq!(m.num_items(), 8);
    }
}
