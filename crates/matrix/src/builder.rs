//! Construction of [`RatingMatrix`] from `(user, item, rating)` triplets.

use crate::{ItemId, MatrixError, RatingMatrix, RatingScale, UserId};

/// Counts of triplets dropped by [`MatrixBuilder::build_quarantined`].
///
/// Strict [`MatrixBuilder::build`] turns the first invalid triplet into an
/// error; the quarantining build instead skips invalid input and accounts
/// for every dropped triplet here, so ingestion survives a corrupt upstream
/// feed without silently poisoning PCC or the weight planes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Triplets whose rating was NaN or ±∞.
    pub non_finite: usize,
    /// Triplets whose rating fell outside the declared [`RatingScale`].
    pub out_of_scale: usize,
    /// Repeated `(user, item)` cells with a different rating; the first
    /// occurrence (in push order) is kept, later conflicts are dropped.
    pub conflicting: usize,
}

impl QuarantineReport {
    /// Total number of quarantined triplets.
    pub fn total(&self) -> usize {
        self.non_finite + self.out_of_scale + self.conflicting
    }

    /// `true` when nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

/// Accumulates rating triplets and freezes them into a [`RatingMatrix`].
///
/// The builder accepts triplets in any order, deduplicates exact repeats,
/// rejects conflicting repeats, validates every rating against the declared
/// [`RatingScale`], and assembles both the CSR and CSC views plus all means
/// in `O(n log n)`.
///
/// ```
/// use cf_matrix::{MatrixBuilder, UserId, ItemId};
///
/// let mut b = MatrixBuilder::new();
/// b.push(UserId::new(0), ItemId::new(2), 4.0);
/// b.push(UserId::new(1), ItemId::new(0), 3.0);
/// let m = b.build().unwrap();
/// assert_eq!(m.num_users(), 2);
/// assert_eq!(m.num_items(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct MatrixBuilder {
    triplets: Vec<(UserId, ItemId, f64)>,
    min_users: usize,
    min_items: usize,
    scale: RatingScale,
}

impl Default for MatrixBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MatrixBuilder {
    /// New builder; dimensions are inferred from the largest ids pushed.
    pub fn new() -> Self {
        Self {
            triplets: Vec::new(),
            min_users: 0,
            min_items: 0,
            scale: RatingScale::default(),
        }
    }

    /// New builder with dimensions fixed to at least `users × items`, so
    /// trailing unrated users/items keep their slots (the evaluation
    /// protocol relies on stable ids across splits).
    pub fn with_dims(users: usize, items: usize) -> Self {
        Self {
            triplets: Vec::new(),
            min_users: users,
            min_items: items,
            scale: RatingScale::default(),
        }
    }

    /// Sets the rating scale validated at build time (default 1..=5).
    #[must_use]
    pub fn scale(mut self, scale: RatingScale) -> Self {
        self.scale = scale;
        self
    }

    /// Pre-allocates space for `n` triplets.
    pub fn reserve(&mut self, n: usize) {
        self.triplets.reserve(n);
    }

    /// Adds one rating.
    pub fn push(&mut self, user: UserId, item: ItemId, rating: f64) {
        self.triplets.push((user, item, rating));
    }

    /// Number of triplets pushed so far (before deduplication).
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// `true` if nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// Like [`build`](Self::build), but quarantines invalid triplets
    /// instead of failing on them: non-finite ratings, out-of-scale
    /// ratings, and conflicting duplicates (first push wins) are dropped
    /// and counted in the returned [`QuarantineReport`].
    ///
    /// Errors only when the surviving triplets cannot form a matrix at all
    /// ([`MatrixError::Empty`] with no fixed dimensions).
    pub fn build_quarantined(self) -> Result<(RatingMatrix, QuarantineReport), MatrixError> {
        let MatrixBuilder {
            triplets,
            min_users,
            min_items,
            scale,
        } = self;

        let mut report = QuarantineReport::default();
        // Stable sort: for conflicting duplicates "first pushed wins", and
        // an unstable sort would make the winner arbitrary.
        let mut indexed: Vec<(usize, (UserId, ItemId, f64))> =
            triplets.into_iter().enumerate().collect();
        indexed.sort_by_key(|&(pos, (u, i, _))| (u, i, pos));

        let mut clean = MatrixBuilder::with_dims(min_users, min_items).scale(scale);
        let mut last_kept: Option<(UserId, ItemId)> = None;
        for (_, (u, i, r)) in indexed {
            if !r.is_finite() {
                report.non_finite += 1;
                continue;
            }
            if !scale.contains(r) {
                report.out_of_scale += 1;
                continue;
            }
            if last_kept == Some((u, i)) {
                // Exact repeats collapse silently in `build`; only count a
                // genuine conflict. We cannot compare against the dropped
                // rating here, so compare against the kept one via push
                // order: `clean` still holds it as its last triplet.
                if clean.triplets.last().map(|t| t.2) != Some(r) {
                    report.conflicting += 1;
                }
                continue;
            }
            last_kept = Some((u, i));
            clean.push(u, i, r);
        }
        let matrix = clean.build()?;
        Ok((matrix, report))
    }

    /// Validates, sorts, deduplicates, and assembles the matrix.
    ///
    /// With no triplets the build fails with [`MatrixError::Empty`] —
    /// unless dimensions were fixed via [`with_dims`](Self::with_dims), in
    /// which case an all-unrated matrix is a legitimate value (its global
    /// mean is the scale midpoint).
    pub fn build(self) -> Result<RatingMatrix, MatrixError> {
        let MatrixBuilder {
            mut triplets,
            min_users,
            min_items,
            scale,
        } = self;

        for &(u, i, r) in &triplets {
            if !r.is_finite() {
                return Err(MatrixError::NonFiniteRating {
                    user: u,
                    item: i,
                    value: r,
                });
            }
            if !scale.contains(r) {
                return Err(MatrixError::RatingOutOfScale {
                    user: u,
                    item: i,
                    value: r,
                    min: scale.min,
                    max: scale.max,
                });
            }
        }
        if triplets.is_empty() && (min_users == 0 || min_items == 0) {
            return Err(MatrixError::Empty);
        }

        triplets.sort_unstable_by_key(|t| (t.0, t.1));
        // Reject conflicting duplicates, collapse exact ones.
        let mut deduped: Vec<(UserId, ItemId, f64)> = Vec::with_capacity(triplets.len());
        for (u, i, r) in triplets {
            match deduped.last() {
                Some(&(pu, pi, pr)) if pu == u && pi == i => {
                    if pr != r {
                        return Err(MatrixError::ConflictingDuplicate {
                            user: u,
                            item: i,
                            first: pr,
                            second: r,
                        });
                    }
                }
                _ => deduped.push((u, i, r)),
            }
        }

        let num_users = min_users.max(deduped.iter().map(|t| t.0.index() + 1).max().unwrap_or(0));
        let num_items = min_items.max(deduped.iter().map(|t| t.1.index() + 1).max().unwrap_or(0));
        let nnz = deduped.len();

        // CSR (already in user-major sorted order).
        let mut user_ptr = vec![0u32; num_users + 1];
        for &(u, _, _) in &deduped {
            user_ptr[u.index() + 1] += 1;
        }
        for k in 0..num_users {
            user_ptr[k + 1] += user_ptr[k];
        }
        let user_items: Vec<ItemId> = deduped.iter().map(|t| t.1).collect();
        let user_vals: Vec<f64> = deduped.iter().map(|t| t.2).collect();

        // CSC via counting sort on item.
        let mut item_ptr = vec![0u32; num_items + 1];
        for &(_, i, _) in &deduped {
            item_ptr[i.index() + 1] += 1;
        }
        for k in 0..num_items {
            item_ptr[k + 1] += item_ptr[k];
        }
        let mut cursor: Vec<u32> = item_ptr[..num_items].to_vec();
        let mut item_users = vec![UserId::new(0); nnz];
        let mut item_vals = vec![0.0f64; nnz];
        // deduped is user-major, so within each column users come out sorted.
        for &(u, i, r) in &deduped {
            let slot = cursor[i.index()] as usize;
            item_users[slot] = u;
            item_vals[slot] = r;
            cursor[i.index()] += 1;
        }

        let total: f64 = user_vals.iter().sum();
        let global_mean = if nnz == 0 {
            scale.midpoint()
        } else {
            total / nnz as f64
        };

        let mut user_means = vec![global_mean; num_users];
        for u in 0..num_users {
            let lo = user_ptr[u] as usize;
            let hi = user_ptr[u + 1] as usize;
            if hi > lo {
                user_means[u] = user_vals[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            }
        }
        let mut item_means = vec![global_mean; num_items];
        for i in 0..num_items {
            let lo = item_ptr[i] as usize;
            let hi = item_ptr[i + 1] as usize;
            if hi > lo {
                item_means[i] = item_vals[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
            }
        }

        Ok(RatingMatrix {
            num_users,
            num_items,
            scale,
            user_ptr,
            user_items,
            user_vals,
            item_ptr,
            item_users,
            item_vals,
            user_means,
            item_means,
            global_mean,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_input_is_sorted() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(1), ItemId::new(3), 2.0);
        b.push(UserId::new(0), ItemId::new(1), 5.0);
        b.push(UserId::new(1), ItemId::new(0), 4.0);
        let m = b.build().unwrap();
        let (items, vals) = m.user_row(UserId::new(1));
        assert_eq!(items, &[ItemId::new(0), ItemId::new(3)]);
        assert_eq!(vals, &[4.0, 2.0]);
    }

    #[test]
    fn exact_duplicates_collapse() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), 3.0);
        b.push(UserId::new(0), ItemId::new(0), 3.0);
        let m = b.build().unwrap();
        assert_eq!(m.num_ratings(), 1);
    }

    #[test]
    fn conflicting_duplicates_error() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), 3.0);
        b.push(UserId::new(0), ItemId::new(0), 4.0);
        assert!(matches!(
            b.build(),
            Err(MatrixError::ConflictingDuplicate { .. })
        ));
    }

    #[test]
    fn nan_rating_rejected() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), f64::NAN);
        assert!(matches!(
            b.build(),
            Err(MatrixError::NonFiniteRating { .. })
        ));
    }

    #[test]
    fn out_of_scale_rejected() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), 6.0);
        assert!(matches!(
            b.build(),
            Err(MatrixError::RatingOutOfScale { .. })
        ));
    }

    #[test]
    fn custom_scale_accepts_wider_values() {
        let mut b = MatrixBuilder::new().scale(RatingScale::new(0.0, 10.0));
        b.push(UserId::new(0), ItemId::new(0), 6.0);
        let m = b.build().unwrap();
        assert_eq!(m.get(UserId::new(0), ItemId::new(0)), Some(6.0));
    }

    #[test]
    fn empty_builder_errors() {
        assert!(matches!(
            MatrixBuilder::new().build(),
            Err(MatrixError::Empty)
        ));
    }

    #[test]
    fn with_dims_pads_dimensions() {
        let mut b = MatrixBuilder::with_dims(10, 20);
        b.push(UserId::new(0), ItemId::new(0), 1.0);
        let m = b.build().unwrap();
        assert_eq!(m.num_users(), 10);
        assert_eq!(m.num_items(), 20);
    }

    #[test]
    fn empty_build_with_fixed_dims_yields_empty_matrix() {
        let m = MatrixBuilder::with_dims(3, 4).build().unwrap();
        assert_eq!(m.num_users(), 3);
        assert_eq!(m.num_items(), 4);
        assert_eq!(m.num_ratings(), 0);
        assert_eq!(m.global_mean(), 3.0);
        assert_eq!(m.get(UserId::new(0), ItemId::new(0)), None);
    }

    #[test]
    fn empty_build_with_zero_dims_still_errors() {
        assert!(matches!(
            MatrixBuilder::with_dims(0, 4).build(),
            Err(MatrixError::Empty)
        ));
    }

    #[test]
    fn quarantined_build_drops_and_counts_bad_triplets() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), 4.0);
        b.push(UserId::new(0), ItemId::new(1), f64::NAN);
        b.push(UserId::new(0), ItemId::new(2), f64::INFINITY);
        b.push(UserId::new(1), ItemId::new(0), 9.0);
        b.push(UserId::new(1), ItemId::new(1), 2.0);
        b.push(UserId::new(1), ItemId::new(1), 5.0); // conflicts, first wins
        b.push(UserId::new(1), ItemId::new(1), 2.0); // exact repeat, silent
        let (m, report) = b.build_quarantined().unwrap();
        assert_eq!(report.non_finite, 2);
        assert_eq!(report.out_of_scale, 1);
        assert_eq!(report.conflicting, 1);
        assert_eq!(report.total(), 4);
        assert!(!report.is_clean());
        assert_eq!(m.num_ratings(), 2);
        assert_eq!(m.get(UserId::new(1), ItemId::new(1)), Some(2.0));
    }

    #[test]
    fn quarantined_build_is_clean_for_valid_input() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), 4.0);
        b.push(UserId::new(1), ItemId::new(1), 2.0);
        let (m, report) = b.build_quarantined().unwrap();
        assert!(report.is_clean());
        assert_eq!(m.num_ratings(), 2);
    }

    #[test]
    fn quarantined_build_of_all_bad_input_without_dims_errors() {
        let mut b = MatrixBuilder::new();
        b.push(UserId::new(0), ItemId::new(0), f64::NAN);
        assert!(matches!(b.build_quarantined(), Err(MatrixError::Empty)));
    }

    #[test]
    fn quarantined_build_of_all_bad_input_with_dims_survives() {
        let mut b = MatrixBuilder::with_dims(2, 2);
        b.push(UserId::new(0), ItemId::new(0), f64::NAN);
        let (m, report) = b.build_quarantined().unwrap();
        assert_eq!(m.num_ratings(), 0);
        assert_eq!(report.non_finite, 1);
    }

    #[test]
    fn dims_grow_past_with_dims_if_needed() {
        let mut b = MatrixBuilder::with_dims(2, 2);
        b.push(UserId::new(5), ItemId::new(7), 1.0);
        let m = b.build().unwrap();
        assert_eq!(m.num_users(), 6);
        assert_eq!(m.num_items(), 8);
    }
}
