//! The immutable sparse rating matrix.
//!
//! Stored twice: user-major (CSR — every CF algorithm walks user profiles)
//! and item-major (CSC — item-item PCC and item means walk columns). Both
//! views are built once by [`MatrixBuilder`](crate::MatrixBuilder) and never
//! mutated, so a shared reference can be handed to any number of worker
//! threads.

use crate::{ItemId, RatingScale, UserId};

/// An immutable sparse user×item rating matrix.
///
/// Rows are users, columns are items (the paper's `X_u` view). Entries are
/// `f64` ratings on a fixed [`RatingScale`]. Per-user means, per-item means
/// and the global mean are precomputed at build time since every similarity
/// kernel in the paper mean-centers its inputs.
#[derive(Debug, Clone)]
pub struct RatingMatrix {
    pub(crate) num_users: usize,
    pub(crate) num_items: usize,
    pub(crate) scale: RatingScale,
    // User-major (CSR): row u is user_items/user_vals[user_ptr[u]..user_ptr[u+1]],
    // item ids strictly increasing within a row.
    pub(crate) user_ptr: Vec<u32>,
    pub(crate) user_items: Vec<ItemId>,
    pub(crate) user_vals: Vec<f64>,
    // Item-major (CSC) mirror: col i is item_users/item_vals[item_ptr[i]..item_ptr[i+1]],
    // user ids strictly increasing within a column.
    pub(crate) item_ptr: Vec<u32>,
    pub(crate) item_users: Vec<UserId>,
    pub(crate) item_vals: Vec<f64>,
    // Means. Users/items with no ratings fall back to the global mean so
    // that mean-centering never divides by a phantom zero profile.
    pub(crate) user_means: Vec<f64>,
    pub(crate) item_means: Vec<f64>,
    pub(crate) global_mean: f64,
}

impl RatingMatrix {
    /// Number of users (`P` in the paper).
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items (`Q` in the paper).
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Total number of stored ratings.
    #[inline]
    pub fn num_ratings(&self) -> usize {
        self.user_vals.len()
    }

    /// Fraction of cells that hold a rating (Table I reports 9.44% for the
    /// paper's MovieLens extract).
    pub fn density(&self) -> f64 {
        if self.num_users == 0 || self.num_items == 0 {
            return 0.0;
        }
        self.num_ratings() as f64 / (self.num_users as f64 * self.num_items as f64)
    }

    /// The rating scale all entries lie on.
    #[inline]
    pub fn scale(&self) -> RatingScale {
        self.scale
    }

    /// Iterator over all user ids.
    pub fn users(&self) -> impl ExactSizeIterator<Item = UserId> + Clone {
        (0..self.num_users as u32).map(UserId::new)
    }

    /// Iterator over all item ids.
    pub fn items(&self) -> impl ExactSizeIterator<Item = ItemId> + Clone {
        (0..self.num_items as u32).map(ItemId::new)
    }

    /// The items user `u` rated and the ratings, as parallel slices sorted
    /// by item id. This is the zero-cost view; prefer it in hot loops.
    #[inline]
    pub fn user_row(&self, u: UserId) -> (&[ItemId], &[f64]) {
        let lo = self.user_ptr[u.index()] as usize;
        let hi = self.user_ptr[u.index() + 1] as usize;
        (&self.user_items[lo..hi], &self.user_vals[lo..hi])
    }

    /// The users who rated item `i` and their ratings, as parallel slices
    /// sorted by user id.
    #[inline]
    pub fn item_col(&self, i: ItemId) -> (&[UserId], &[f64]) {
        let lo = self.item_ptr[i.index()] as usize;
        let hi = self.item_ptr[i.index() + 1] as usize;
        (&self.item_users[lo..hi], &self.item_vals[lo..hi])
    }

    /// Iterator form of [`Self::user_row`]: `(item, rating)` pairs.
    pub fn user_ratings(&self, u: UserId) -> impl ExactSizeIterator<Item = (ItemId, f64)> + '_ {
        let (items, vals) = self.user_row(u);
        items.iter().copied().zip(vals.iter().copied())
    }

    /// Iterator form of [`Self::item_col`]: `(user, rating)` pairs.
    pub fn item_ratings(&self, i: ItemId) -> impl ExactSizeIterator<Item = (UserId, f64)> + '_ {
        let (users, vals) = self.item_col(i);
        users.iter().copied().zip(vals.iter().copied())
    }

    /// Iterator over every stored `(user, item, rating)` triplet in
    /// user-major order.
    pub fn triplets(&self) -> impl Iterator<Item = (UserId, ItemId, f64)> + '_ {
        self.users()
            .flat_map(move |u| self.user_ratings(u).map(move |(i, r)| (u, i, r)))
    }

    /// The rating user `u` gave item `i`, if any. Binary search over the
    /// user's row (rows are short: ~94 entries in the paper's dataset).
    pub fn get(&self, u: UserId, i: ItemId) -> Option<f64> {
        let (items, vals) = self.user_row(u);
        items.binary_search(&i).ok().map(|pos| vals[pos])
    }

    /// `true` iff user `u` rated item `i`.
    #[inline]
    pub fn is_rated(&self, u: UserId, i: ItemId) -> bool {
        self.get(u, i).is_some()
    }

    /// Number of items rated by `u` (`|I{u}|`).
    #[inline]
    pub fn user_count(&self, u: UserId) -> usize {
        (self.user_ptr[u.index() + 1] - self.user_ptr[u.index()]) as usize
    }

    /// Number of users who rated `i` (`|U{i}|`).
    #[inline]
    pub fn item_count(&self, i: ItemId) -> usize {
        (self.item_ptr[i.index() + 1] - self.item_ptr[i.index()]) as usize
    }

    /// Mean rating of user `u` (global mean if the user rated nothing).
    #[inline]
    pub fn user_mean(&self, u: UserId) -> f64 {
        self.user_means[u.index()]
    }

    /// Mean rating of item `i` (global mean if nobody rated it).
    #[inline]
    pub fn item_mean(&self, i: ItemId) -> f64 {
        self.item_means[i.index()]
    }

    /// Mean of all stored ratings.
    #[inline]
    pub fn global_mean(&self) -> f64 {
        self.global_mean
    }

    /// All user means as a slice indexed by `UserId::index`.
    #[inline]
    pub fn user_means(&self) -> &[f64] {
        &self.user_means
    }

    /// All item means as a slice indexed by `ItemId::index`.
    #[inline]
    pub fn item_means(&self) -> &[f64] {
        &self.item_means
    }

    /// Builds a new matrix containing only the rows of users for which
    /// `keep(u)` is true, preserving user ids and dimensions. Used by the
    /// evaluation protocol to carve ML_100/ML_200/ML_300 out of one dataset
    /// without renumbering anything.
    pub fn filter_users(&self, mut keep: impl FnMut(UserId) -> bool) -> RatingMatrix {
        let mut b =
            crate::MatrixBuilder::with_dims(self.num_users, self.num_items).scale(self.scale);
        for u in self.users() {
            if keep(u) {
                for (i, r) in self.user_ratings(u) {
                    b.push(u, i, r);
                }
            }
        }
        // Filtering a valid matrix cannot introduce conflicts, and the
        // fixed dimensions make an all-dropped result a legal empty matrix.
        b.build()
            .unwrap_or_else(|e| unreachable!("filtering a valid matrix stays valid: {e}"))
    }

    /// Builds a new matrix with the given cells removed (each cell at most
    /// once; cells that were never rated are ignored). Used to hold out
    /// ratings for Given-N evaluation.
    pub fn without_cells(&self, cells: &[(UserId, ItemId)]) -> RatingMatrix {
        let mut removed: Vec<(UserId, ItemId)> = cells.to_vec();
        removed.sort_unstable();
        removed.dedup();
        let mut b =
            crate::MatrixBuilder::with_dims(self.num_users, self.num_items).scale(self.scale);
        for (u, i, r) in self.triplets() {
            if removed.binary_search(&(u, i)).is_err() {
                b.push(u, i, r);
            }
        }
        b.build()
            .unwrap_or_else(|e| unreachable!("removing cells from a valid matrix stays valid: {e}"))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::MatrixBuilder;

    /// 3 users × 4 items:
    ///        i0   i1   i2   i3
    ///  u0     5    3    .    1
    ///  u1     4    .    .    1
    ///  u2     .    1    5    4
    pub(crate) fn small() -> RatingMatrix {
        let mut b = MatrixBuilder::new();
        for (u, i, r) in [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 3, 1.0),
            (1, 0, 4.0),
            (1, 3, 1.0),
            (2, 1, 1.0),
            (2, 2, 5.0),
            (2, 3, 4.0),
        ] {
            b.push(UserId::new(u), ItemId::new(i), r);
        }
        b.build().unwrap()
    }

    #[test]
    fn dimensions_and_counts() {
        let m = small();
        assert_eq!(m.num_users(), 3);
        assert_eq!(m.num_items(), 4);
        assert_eq!(m.num_ratings(), 8);
        assert_eq!(m.user_count(UserId::new(0)), 3);
        assert_eq!(m.item_count(ItemId::new(3)), 3);
        assert_eq!(m.item_count(ItemId::new(2)), 1);
    }

    #[test]
    fn density_matches_hand_count() {
        let m = small();
        assert!((m.density() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn get_and_is_rated() {
        let m = small();
        assert_eq!(m.get(UserId::new(0), ItemId::new(1)), Some(3.0));
        assert_eq!(m.get(UserId::new(0), ItemId::new(2)), None);
        assert!(m.is_rated(UserId::new(2), ItemId::new(2)));
        assert!(!m.is_rated(UserId::new(1), ItemId::new(1)));
    }

    #[test]
    fn rows_and_cols_are_sorted_and_consistent() {
        let m = small();
        for u in m.users() {
            let (items, vals) = m.user_row(u);
            assert_eq!(items.len(), vals.len());
            assert!(items.windows(2).all(|w| w[0] < w[1]), "row not sorted");
            for (&i, &r) in items.iter().zip(vals) {
                // every CSR entry must appear in the CSC mirror
                let (users, cvals) = m.item_col(i);
                let pos = users.binary_search(&u).expect("CSC missing CSR entry");
                assert_eq!(cvals[pos], r);
            }
        }
        for i in m.items() {
            let (users, _) = m.item_col(i);
            assert!(users.windows(2).all(|w| w[0] < w[1]), "col not sorted");
        }
    }

    #[test]
    fn means_match_hand_computation() {
        let m = small();
        assert!((m.user_mean(UserId::new(0)) - 3.0).abs() < 1e-12);
        assert!((m.user_mean(UserId::new(1)) - 2.5).abs() < 1e-12);
        assert!((m.item_mean(ItemId::new(0)) - 4.5).abs() < 1e-12);
        assert!((m.item_mean(ItemId::new(3)) - 2.0).abs() < 1e-12);
        let total: f64 = 5.0 + 3.0 + 1.0 + 4.0 + 1.0 + 1.0 + 5.0 + 4.0;
        assert!((m.global_mean() - total / 8.0).abs() < 1e-12);
    }

    #[test]
    fn triplets_cover_everything_once() {
        let m = small();
        let t: Vec<_> = m.triplets().collect();
        assert_eq!(t.len(), 8);
        assert_eq!(t[0], (UserId::new(0), ItemId::new(0), 5.0));
        assert_eq!(t[7], (UserId::new(2), ItemId::new(3), 4.0));
    }

    #[test]
    fn filter_users_keeps_ids_and_dims() {
        let m = small();
        let f = m.filter_users(|u| u.index() != 1);
        assert_eq!(f.num_users(), 3);
        assert_eq!(f.num_items(), 4);
        assert_eq!(f.num_ratings(), 6);
        assert_eq!(f.user_count(UserId::new(1)), 0);
        assert_eq!(f.get(UserId::new(2), ItemId::new(2)), Some(5.0));
        // empty user's mean falls back to the new global mean
        assert!((f.user_mean(UserId::new(1)) - f.global_mean()).abs() < 1e-12);
    }

    #[test]
    fn without_cells_removes_exactly_those() {
        let m = small();
        let h = m.without_cells(&[
            (UserId::new(0), ItemId::new(1)),
            (UserId::new(2), ItemId::new(3)),
            (UserId::new(1), ItemId::new(2)), // never rated: ignored
        ]);
        assert_eq!(h.num_ratings(), 6);
        assert_eq!(h.get(UserId::new(0), ItemId::new(1)), None);
        assert_eq!(h.get(UserId::new(2), ItemId::new(3)), None);
        assert_eq!(h.get(UserId::new(0), ItemId::new(0)), Some(5.0));
    }

    #[test]
    fn empty_rows_and_cols_are_fine() {
        let mut b = MatrixBuilder::with_dims(5, 5);
        b.push(UserId::new(4), ItemId::new(4), 3.0);
        let m = b.build().unwrap();
        assert_eq!(m.user_count(UserId::new(0)), 0);
        assert_eq!(m.item_count(ItemId::new(0)), 0);
        let (items, vals) = m.user_row(UserId::new(2));
        assert!(items.is_empty() && vals.is_empty());
        assert_eq!(m.user_mean(UserId::new(0)), m.global_mean());
        assert_eq!(m.item_mean(ItemId::new(1)), m.global_mean());
    }
}
