//! Dense user×item rating storage with provenance bits.
//!
//! The smoothing step of the paper (Eq. 7) fills *every* cell of the
//! training matrix: original ratings stay, missing ones are replaced by
//! `mean(u) + Δr(C,i)`. Downstream, Eq. 10/11 must still distinguish the
//! two kinds (original ratings weigh `ε`, smoothed ones `1-ε`), so the
//! dense store carries one provenance bit per cell.

use crate::{ItemId, RatingMatrix, UserId};

/// A dense user×item matrix of ratings plus an "was originally rated" bit
/// per cell.
///
/// Absent cells are encoded as `NaN` and reported as `None` by
/// [`DenseRatings::get`]; after smoothing no cell should be absent (the
/// smoother falls back to the user mean when a cluster has no signal).
#[derive(Debug, Clone)]
pub struct DenseRatings {
    num_users: usize,
    num_items: usize,
    data: Vec<f64>,
    original: Vec<u64>,
}

impl DenseRatings {
    /// An all-absent matrix of the given shape.
    pub fn new(num_users: usize, num_items: usize) -> Self {
        let cells = num_users * num_items;
        Self {
            num_users,
            num_items,
            data: vec![f64::NAN; cells],
            original: vec![0u64; cells.div_ceil(64)],
        }
    }

    /// Seeds a dense matrix with the sparse matrix's ratings, all flagged
    /// as original; every other cell is absent.
    pub fn from_sparse(m: &RatingMatrix) -> Self {
        let mut d = Self::new(m.num_users(), m.num_items());
        for (u, i, r) in m.triplets() {
            d.set_original(u, i, r);
        }
        d
    }

    /// Number of user rows.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of item columns.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    #[inline]
    fn cell(&self, u: UserId, i: ItemId) -> usize {
        debug_assert!(u.index() < self.num_users && i.index() < self.num_items);
        u.index() * self.num_items + i.index()
    }

    /// Stores an original (user-provided) rating.
    #[inline]
    pub fn set_original(&mut self, u: UserId, i: ItemId, r: f64) {
        let c = self.cell(u, i);
        self.data[c] = r;
        self.original[c / 64] |= 1 << (c % 64);
    }

    /// Stores a smoothed (imputed) rating; does not disturb the provenance
    /// bit of a cell that already holds an original rating.
    #[inline]
    pub fn set_smoothed(&mut self, u: UserId, i: ItemId, r: f64) {
        let c = self.cell(u, i);
        self.data[c] = r;
    }

    /// The value at `(u, i)`, if present.
    #[inline]
    pub fn get(&self, u: UserId, i: ItemId) -> Option<f64> {
        let v = self.data[self.cell(u, i)];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// `true` iff the cell holds a user-provided (not smoothed) rating.
    #[inline]
    pub fn is_original(&self, u: UserId, i: ItemId) -> bool {
        let c = self.cell(u, i);
        (self.original[c / 64] >> (c % 64)) & 1 == 1
    }

    /// Full row of user `u` (absent cells are `NaN`).
    #[inline]
    pub fn row(&self, u: UserId) -> &[f64] {
        let lo = u.index() * self.num_items;
        &self.data[lo..lo + self.num_items]
    }

    /// Number of cells currently holding a value.
    pub fn filled_cells(&self) -> usize {
        self.data.iter().filter(|v| !v.is_nan()).count()
    }

    /// `true` when every cell holds a value (the post-smoothing invariant).
    pub fn is_complete(&self) -> bool {
        self.data.iter().all(|v| !v.is_nan())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::MatrixBuilder;

    fn sparse() -> RatingMatrix {
        let mut b = MatrixBuilder::with_dims(2, 3);
        b.push(UserId::new(0), ItemId::new(0), 5.0);
        b.push(UserId::new(1), ItemId::new(2), 2.0);
        b.build().unwrap()
    }

    #[test]
    fn from_sparse_seeds_originals() {
        let d = DenseRatings::from_sparse(&sparse());
        assert_eq!(d.get(UserId::new(0), ItemId::new(0)), Some(5.0));
        assert!(d.is_original(UserId::new(0), ItemId::new(0)));
        assert_eq!(d.get(UserId::new(0), ItemId::new(1)), None);
        assert!(!d.is_original(UserId::new(0), ItemId::new(1)));
        assert_eq!(d.filled_cells(), 2);
        assert!(!d.is_complete());
    }

    #[test]
    fn smoothing_fills_without_claiming_provenance() {
        let mut d = DenseRatings::from_sparse(&sparse());
        d.set_smoothed(UserId::new(0), ItemId::new(1), 3.5);
        assert_eq!(d.get(UserId::new(0), ItemId::new(1)), Some(3.5));
        assert!(!d.is_original(UserId::new(0), ItemId::new(1)));
    }

    #[test]
    fn set_smoothed_over_original_keeps_bit() {
        let mut d = DenseRatings::from_sparse(&sparse());
        d.set_smoothed(UserId::new(0), ItemId::new(0), 4.0);
        assert_eq!(d.get(UserId::new(0), ItemId::new(0)), Some(4.0));
        assert!(d.is_original(UserId::new(0), ItemId::new(0)));
    }

    #[test]
    fn row_view_matches_gets() {
        let mut d = DenseRatings::from_sparse(&sparse());
        d.set_smoothed(UserId::new(0), ItemId::new(2), 1.0);
        let row = d.row(UserId::new(0));
        assert_eq!(row.len(), 3);
        assert_eq!(row[0], 5.0);
        assert!(row[1].is_nan());
        assert_eq!(row[2], 1.0);
    }

    #[test]
    fn complete_after_filling_everything() {
        let mut d = DenseRatings::new(2, 2);
        for u in 0..2u32 {
            for i in 0..2u32 {
                d.set_smoothed(UserId::new(u), ItemId::new(i), 3.0);
            }
        }
        assert!(d.is_complete());
        assert_eq!(d.filled_cells(), 4);
    }

    #[test]
    fn provenance_bits_across_word_boundaries() {
        // 9x9 = 81 cells spans two u64 words; make sure bit addressing holds.
        let mut d = DenseRatings::new(9, 9);
        d.set_original(UserId::new(7), ItemId::new(8), 2.0); // cell 71
        d.set_original(UserId::new(8), ItemId::new(0), 4.0); // cell 72
        assert!(d.is_original(UserId::new(7), ItemId::new(8)));
        assert!(d.is_original(UserId::new(8), ItemId::new(0)));
        assert!(!d.is_original(UserId::new(0), ItemId::new(0)));
    }
}
