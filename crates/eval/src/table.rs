//! Rendering of experiment outputs as markdown and CSV.

/// A rectangular results table with named columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (e.g. "Table II — MAE for SIR, SUR and CFSF").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells, each the same length as `columns`.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics if the width doesn't match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width {} != column count {}",
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders CSV (headers + rows, RFC-4180-style quoting for commas).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats an MAE for the tables (3 decimals like the paper).
pub fn fmt_mae(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a duration in seconds with millisecond resolution.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", &["method", "mae"]);
        t.push_row(vec!["CFSF".into(), "0.743".into()]);
        t.push_row(vec!["SUR".into(), "0.838".into()]);
        t
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let md = table().to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| method | mae |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| CFSF | 0.743 |"));
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        let mut t = table();
        t.push_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("method,mae\n"));
        assert!(csv.contains("CFSF,0.743"));
        assert!(csv.contains("\"a,b\",\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        table().push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_mae(0.74349), "0.743");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
