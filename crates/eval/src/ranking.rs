//! Top-N ranking metrics — precision@N, recall@N, NDCG@N.
//!
//! The paper evaluates rating *prediction* (MAE); a deployed recommender
//! serves ranked lists, so the harness also measures ranking quality.
//! A holdout item counts as *relevant* for its user when its true rating
//! clears a threshold (4.0 on the MovieLens scale by convention).

use std::collections::HashMap;

use cf_data::HoldoutCell;
use cf_matrix::{ItemId, Predictor, UserId};

/// Ranking-quality scores averaged over users.
#[derive(Debug, Clone, PartialEq)]
pub struct RankingEvaluation {
    /// Mean precision@N over evaluated users.
    pub precision: f64,
    /// Mean recall@N over evaluated users.
    pub recall: f64,
    /// Mean NDCG@N over evaluated users.
    pub ndcg: f64,
    /// The N used.
    pub n: usize,
    /// Users that had at least one relevant holdout item.
    pub users_evaluated: usize,
}

/// Evaluates top-N ranking over the holdout.
///
/// For each user with at least one relevant holdout item, the predictor
/// ranks that user's *holdout items* (the candidate set with known
/// ground truth); the top `n` are scored against the relevance labels.
/// Returns `None` when no user has a relevant holdout item.
pub fn evaluate_ranking<P: Predictor + ?Sized>(
    predictor: &P,
    holdout: &[HoldoutCell],
    n: usize,
    relevance_threshold: f64,
) -> Option<RankingEvaluation> {
    assert!(n > 0, "n must be positive");
    let mut by_user: HashMap<UserId, Vec<(ItemId, f64)>> = HashMap::new();
    for cell in holdout {
        by_user
            .entry(cell.user)
            .or_default()
            .push((cell.item, cell.rating));
    }

    let mut precision_sum = 0.0;
    let mut recall_sum = 0.0;
    let mut ndcg_sum = 0.0;
    let mut users = 0usize;

    let mut user_ids: Vec<UserId> = by_user.keys().copied().collect();
    user_ids.sort_unstable();
    for user in user_ids {
        let items = &by_user[&user];
        let relevant: usize = items
            .iter()
            .filter(|&&(_, r)| r >= relevance_threshold)
            .count();
        if relevant == 0 {
            continue;
        }
        // Rank the candidate set by predicted score, ties by item id.
        let mut ranked: Vec<(ItemId, f64, f64)> = items
            .iter()
            .map(|&(i, truth)| {
                let score = predictor.predict(user, i).unwrap_or(f64::NEG_INFINITY);
                (i, score, truth)
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });

        let top = &ranked[..ranked.len().min(n)];
        let hits = top
            .iter()
            .filter(|&&(_, _, truth)| truth >= relevance_threshold)
            .count();
        precision_sum += hits as f64 / top.len() as f64;
        recall_sum += hits as f64 / relevant as f64;

        // NDCG with binary gains.
        let dcg: f64 = top
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, truth))| truth >= relevance_threshold)
            .map(|(k, _)| 1.0 / ((k + 2) as f64).log2())
            .sum();
        let ideal: f64 = (0..relevant.min(n))
            .map(|k| 1.0 / ((k + 2) as f64).log2())
            .sum();
        ndcg_sum += dcg / ideal;
        users += 1;
    }

    (users > 0).then(|| RankingEvaluation {
        precision: precision_sum / users as f64,
        recall: recall_sum / users as f64,
        ndcg: ndcg_sum / users as f64,
        n,
        users_evaluated: users,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Oracle;
    impl Predictor for Oracle {
        fn predict(&self, _: UserId, item: ItemId) -> Option<f64> {
            // items with even id are "good"
            Some(if item.raw().is_multiple_of(2) {
                5.0
            } else {
                1.0
            })
        }
        fn name(&self) -> &'static str {
            "oracle"
        }
    }

    struct AntiOracle;
    impl Predictor for AntiOracle {
        fn predict(&self, _: UserId, item: ItemId) -> Option<f64> {
            Some(if item.raw().is_multiple_of(2) {
                1.0
            } else {
                5.0
            })
        }
        fn name(&self) -> &'static str {
            "anti"
        }
    }

    /// One user, 4 holdout items: even ids truly relevant (rating 5).
    fn holdout() -> Vec<HoldoutCell> {
        (0..4u32)
            .map(|i| HoldoutCell {
                user: UserId::new(0),
                item: ItemId::new(i),
                rating: if i.is_multiple_of(2) { 5.0 } else { 2.0 },
            })
            .collect()
    }

    #[test]
    fn oracle_gets_perfect_scores() {
        let e = evaluate_ranking(&Oracle, &holdout(), 2, 4.0).unwrap();
        assert_eq!(e.precision, 1.0);
        assert_eq!(e.recall, 1.0);
        assert!((e.ndcg - 1.0).abs() < 1e-12);
        assert_eq!(e.users_evaluated, 1);
    }

    #[test]
    fn anti_oracle_gets_zero_precision() {
        let e = evaluate_ranking(&AntiOracle, &holdout(), 2, 4.0).unwrap();
        assert_eq!(e.precision, 0.0);
        assert_eq!(e.recall, 0.0);
        assert_eq!(e.ndcg, 0.0);
    }

    #[test]
    fn no_relevant_items_yields_none() {
        let cells = vec![HoldoutCell {
            user: UserId::new(0),
            item: ItemId::new(0),
            rating: 2.0,
        }];
        assert!(evaluate_ranking(&Oracle, &cells, 3, 4.0).is_none());
    }

    #[test]
    fn n_larger_than_candidates_is_fine() {
        let e = evaluate_ranking(&Oracle, &holdout(), 100, 4.0).unwrap();
        // all candidates returned; 2 of 4 are relevant
        assert!((e.precision - 0.5).abs() < 1e-12);
        assert_eq!(e.recall, 1.0);
    }

    #[test]
    fn averaged_over_users() {
        let mut cells = holdout();
        // second user where even items are also relevant
        cells.extend((0..4u32).map(|i| HoldoutCell {
            user: UserId::new(1),
            item: ItemId::new(i),
            rating: if i.is_multiple_of(2) { 4.5 } else { 1.0 },
        }));
        let e = evaluate_ranking(&Oracle, &cells, 2, 4.0).unwrap();
        assert_eq!(e.users_evaluated, 2);
        assert_eq!(e.precision, 1.0);
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn zero_n_panics() {
        let _ = evaluate_ranking(&Oracle, &holdout(), 0, 4.0);
    }
}
