//! Terminal line charts for the figure experiments.
//!
//! The paper's Figs. 2–8 are line charts; the harness renders the same
//! series as Unicode plots in the run summary so the shapes (U-curves,
//! plateaus, crossings) are visible without leaving the terminal.

/// A labelled series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label ("Given5", "CFSF", ...).
    pub label: String,
    /// Points in ascending-x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series; panics on empty input or unordered x values.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "series needs at least one point");
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "points must be in ascending-x order"
        );
        Self {
            label: label.into(),
            points,
        }
    }
}

/// Renders one or more series as a fixed-size ASCII chart.
///
/// Each series gets a distinct glyph; points are plotted on a
/// `width × height` grid with min/max axis annotations. Collisions keep
/// the earlier series' glyph (charts are for shape, not precision — the
/// CSVs carry the numbers).
pub fn render_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 3, "chart too small to be legible");
    assert!(!series.is_empty(), "nothing to plot");
    const GLYPHS: [char; 6] = ['o', '*', '+', 'x', '#', '@'];

    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .collect();
    let (x_min, x_max) = min_max(&xs);
    let (mut y_min, mut y_max) = min_max(&ys);
    if (y_max - y_min).abs() < 1e-12 {
        // flat line: open a window around it so it renders mid-chart
        y_min -= 0.5;
        y_max += 0.5;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = scale(x, x_min, x_max, width - 1);
            let cy = height - 1 - scale(y, y_min, y_max, height - 1);
            if grid[cy][cx] == ' ' {
                grid[cy][cx] = glyph;
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    let y_label_top = format!("{y_max:.3}");
    let y_label_bot = format!("{y_min:.3}");
    let margin = y_label_top.len().max(y_label_bot.len());
    for (row, line) in grid.iter().enumerate() {
        let label = if row == 0 {
            &y_label_top
        } else if row == height - 1 {
            &y_label_bot
        } else {
            ""
        };
        out.push_str(&format!("{label:>margin$} |"));
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>margin$} +{}\n{:>margin$}  {:<w$}{:>8}\n",
        "",
        "-".repeat(width),
        "",
        format!("{x_min}"),
        format!("{x_max}"),
        margin = margin,
        w = width.saturating_sub(8),
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", GLYPHS[i % GLYPHS.len()], s.label))
        .collect();
    out.push_str(&format!("  legend: {}\n", legend.join("   ")));
    out
}

fn min_max(v: &[f64]) -> (f64, f64) {
    let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

fn scale(v: f64, lo: f64, hi: f64, cells: usize) -> usize {
    if (hi - lo).abs() < 1e-12 {
        return 0;
    }
    (((v - lo) / (hi - lo)) * cells as f64).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(label: &str, f: impl Fn(f64) -> f64) -> Series {
        Series::new(label, (0..=10).map(|x| (x as f64, f(x as f64))).collect())
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let chart = render_chart("demo", &[line("up", |x| x)], 40, 10);
        assert!(chart.starts_with("demo\n"));
        assert!(chart.contains("legend: o up"));
        assert!(chart.contains("10.000")); // y max label
        assert!(chart.contains("0.000")); // y min label
    }

    #[test]
    fn increasing_series_puts_first_point_at_bottom_left() {
        let chart = render_chart("inc", &[line("up", |x| x)], 30, 8);
        let rows: Vec<&str> = chart.lines().collect();
        // last grid row (before the axis) contains the leftmost glyph
        let bottom = rows[8]; // title + 8 grid rows → index 8 is last grid row
        assert!(bottom.contains('o'), "bottom row: {bottom:?}");
        let top = rows[1];
        assert!(top.trim_end().ends_with('o'), "top row: {top:?}");
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let chart = render_chart("two", &[line("a", |x| x), line("b", |x| 10.0 - x)], 30, 8);
        assert!(chart.contains('o') && chart.contains('*'));
        assert!(chart.contains("o a") && chart.contains("* b"));
    }

    #[test]
    fn flat_series_renders_without_division_by_zero() {
        let chart = render_chart("flat", &[line("c", |_| 3.0)], 30, 8);
        assert!(chart.contains('o'));
        assert!(chart.contains("3.500") && chart.contains("2.500"));
    }

    #[test]
    #[should_panic(expected = "ascending-x")]
    fn unordered_points_panic() {
        let _ = Series::new("bad", vec![(2.0, 1.0), (1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_series_panics() {
        let _ = Series::new("empty", vec![]);
    }
}
