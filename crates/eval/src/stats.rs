//! Statistical significance of accuracy differences.
//!
//! The paper reports raw MAE differences; a production evaluation should
//! also say whether a difference is real. Two predictors scored on the
//! *same* holdout cells give paired per-cell absolute errors, so the
//! paired t-test applies directly. With thousands of cells the t
//! statistic is effectively normal, so the p-value uses the Gaussian
//! CDF (documented approximation; exact Student-t would need an
//! incomplete-beta implementation for no practical gain at these n).

use cf_data::HoldoutCell;
use cf_matrix::Predictor;

/// Result of a paired t-test on per-cell absolute errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedTTest {
    /// Mean of (errors_a − errors_b); negative means `a` is better.
    pub mean_diff: f64,
    /// The t statistic.
    pub t: f64,
    /// Two-sided p-value under the normal approximation.
    pub p_two_sided: f64,
    /// Number of pairs.
    pub n: usize,
}

impl PairedTTest {
    /// `true` when the difference is significant at the given level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_two_sided < alpha
    }
}

/// Per-cell absolute errors of a predictor over a holdout set (midpoint
/// fallback on abstention, matching [`crate::evaluate`]).
pub fn absolute_errors<P: Predictor + ?Sized>(predictor: &P, holdout: &[HoldoutCell]) -> Vec<f64> {
    holdout
        .iter()
        .map(|cell| {
            let p = predictor.predict(cell.user, cell.item).unwrap_or(3.0);
            (p - cell.rating).abs()
        })
        .collect()
}

/// Paired t-test on two equal-length error vectors.
///
/// Returns `None` when fewer than 2 pairs exist or the differences have
/// zero variance (identical predictors — no test to run).
pub fn paired_t_test(errors_a: &[f64], errors_b: &[f64]) -> Option<PairedTTest> {
    assert_eq!(
        errors_a.len(),
        errors_b.len(),
        "paired test needs equal-length samples"
    );
    let n = errors_a.len();
    if n < 2 {
        return None;
    }
    let diffs: Vec<f64> = errors_a.iter().zip(errors_b).map(|(a, b)| a - b).collect();
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1) as f64;
    if var <= 0.0 {
        return None;
    }
    let se = (var / n as f64).sqrt();
    let t = mean / se;
    let p = 2.0 * (1.0 - standard_normal_cdf(t.abs()));
    Some(PairedTTest {
        mean_diff: mean,
        t,
        p_two_sided: p.clamp(0.0, 1.0),
        n,
    })
}

/// Φ(x): the standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7 — far below anything that changes a
/// significance verdict).
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(standard_normal_cdf(6.0) > 0.999_999);
        assert!(standard_normal_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn detects_a_consistent_difference() {
        // b is uniformly worse by 0.1 with small noise
        let a: Vec<f64> = (0..500).map(|i| 0.5 + 0.01 * ((i % 7) as f64)).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.1).collect();
        let t = paired_t_test(&a, &b).unwrap();
        assert!(t.mean_diff < 0.0, "a better → negative diff");
        assert!(t.significant_at(0.001), "p = {}", t.p_two_sided);
    }

    #[test]
    fn no_difference_is_not_significant() {
        // symmetric noise around zero difference
        let a: Vec<f64> = (0..400)
            .map(|i| 0.5 + 0.05 * (((i * 31) % 11) as f64 - 5.0))
            .collect();
        let b: Vec<f64> = (0..400)
            .map(|i| 0.5 + 0.05 * (((i * 17) % 11) as f64 - 5.0))
            .collect();
        let t = paired_t_test(&a, &b).unwrap();
        assert!(!t.significant_at(0.01), "p = {}", t.p_two_sided);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(paired_t_test(&[1.0], &[2.0]).is_none());
        assert!(paired_t_test(&[1.0, 1.0, 1.0], &[1.5, 1.5, 1.5]).is_none()); // zero variance
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = paired_t_test(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn absolute_errors_match_manual_computation() {
        use cf_matrix::{ItemId, UserId};
        struct Fixed;
        impl Predictor for Fixed {
            fn predict(&self, _: UserId, _: ItemId) -> Option<f64> {
                Some(4.0)
            }
            fn name(&self) -> &'static str {
                "fixed"
            }
        }
        let holdout = vec![
            HoldoutCell {
                user: UserId::new(0),
                item: ItemId::new(0),
                rating: 5.0,
            },
            HoldoutCell {
                user: UserId::new(0),
                item: ItemId::new(1),
                rating: 3.0,
            },
        ];
        assert_eq!(absolute_errors(&Fixed, &holdout), vec![1.0, 1.0]);
    }
}
