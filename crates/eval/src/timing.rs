//! Wall-clock measurement of the online phase (Fig. 5's metric).

use std::time::{Duration, Instant};

use cf_data::HoldoutCell;
use cf_matrix::Predictor;

/// Predicts every holdout cell once and returns the elapsed wall time.
///
/// This is the paper's "response time" metric: how long the *online*
/// phase takes to serve a whole testset. The offline phase (fitting) is
/// deliberately excluded, matching §V-D.
pub fn time_predictions<P: Predictor + ?Sized>(predictor: &P, holdout: &[HoldoutCell]) -> Duration {
    let start = Instant::now();
    for cell in holdout {
        // The value is consumed through a black box so the optimizer can't
        // hoist or skip predictions.
        std::hint::black_box(predictor.predict(cell.user, cell.item));
    }
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::{ItemId, UserId};

    struct Slow;
    impl Predictor for Slow {
        fn predict(&self, _: UserId, _: ItemId) -> Option<f64> {
            std::hint::black_box((0..2000).map(|x| x as f64).sum::<f64>());
            Some(3.0)
        }
        fn name(&self) -> &'static str {
            "slow"
        }
    }

    #[test]
    fn time_grows_with_cells() {
        let cell = |i| HoldoutCell {
            user: UserId::new(0),
            item: ItemId::new(i),
            rating: 3.0,
        };
        let small: Vec<_> = (0..50u32).map(cell).collect();
        let large: Vec<_> = (0..5000u32).map(cell).collect();
        let t_small = time_predictions(&Slow, &small);
        let t_large = time_predictions(&Slow, &large);
        assert!(t_large > t_small, "{t_large:?} !> {t_small:?}");
    }

    #[test]
    fn empty_holdout_is_instant() {
        let t = time_predictions(&Slow, &[]);
        assert!(t < Duration::from_millis(50));
    }
}
