//! Extension experiment: hyper-parameter grid search for CFSF on this
//! dataset — the tuning pass the paper ran on its MovieLens extract to
//! arrive at `C=30, λ=0.8, δ=0.1, K=25, M=95, w=0.35` (§V-C.1).
//!
//! The substitution DESIGN.md documents (synthetic data in place of the
//! original extract) moves the optima; this experiment finds where they
//! land here, per training-set size, and reports the best configuration
//! so EXPERIMENTS.md can compare operating points honestly.

use cf_data::GivenN;
use cfsf_core::Cfsf;

use crate::metrics::evaluate_mae;
use crate::table::{fmt_mae, Table};

use super::{ExperimentContext, ExperimentOutput, Scale};

/// Grid-searches (C, K, w, λ, δ) per training size at Given10 and
/// reports the best few configurations.
pub fn tune(ctx: &ExperimentContext) -> ExperimentOutput {
    type Grid<'a> = (&'a [usize], &'a [usize], &'a [f64], &'a [f64], &'a [f64]);
    let (cs, ks, ws, lambdas, deltas): Grid<'_> = match ctx.scale {
        Scale::Paper => (
            &[8, 12, 20, 30],
            &[25, 40, 60],
            &[0.35, 0.6, 0.9],
            &[0.8, 1.0],
            &[0.0, 0.1],
        ),
        Scale::Quick => (&[8, 16], &[15, 30], &[0.35, 0.7], &[0.8], &[0.1]),
    };

    let mut table = Table::new(
        "Extension — CFSF grid search (Given10)",
        &["training set", "C", "K", "w", "lambda", "delta", "MAE"],
    );
    let mut notes = Vec::new();

    for &train in &ctx.train_sizes() {
        let split = ctx.split(train, GivenN::Given10);
        let mut best: Option<(f64, usize, usize, f64, f64, f64)> = None;
        for &c_val in cs {
            // A fresh fit per cluster count; everything else reuses it.
            let mut cfg = ctx.cfsf_config();
            cfg.clusters = c_val;
            let base = Cfsf::fit(&split.train, cfg).expect("valid config");
            for &k in ks {
                for &w in ws {
                    for &lambda in lambdas {
                        for &delta in deltas {
                            let model = base
                                .reparameterize(|cc| {
                                    cc.k = k;
                                    cc.w = w;
                                    cc.lambda = lambda;
                                    cc.delta = delta;
                                })
                                .expect("grid values are valid");
                            let mae = evaluate_mae(&model, &split.holdout);
                            if best.is_none() || mae < best.expect("set").0 {
                                best = Some((mae, c_val, k, w, lambda, delta));
                            }
                        }
                    }
                }
            }
        }
        let (mae, c_val, k, w, lambda, delta) = best.expect("non-empty grid");
        table.push_row(vec![
            train.label(),
            c_val.to_string(),
            k.to_string(),
            format!("{w}"),
            format!("{lambda}"),
            format!("{delta}"),
            fmt_mae(mae),
        ]);
        notes.push(format!(
            "{}: best (C={c_val}, K={k}, w={w}, lambda={lambda}, delta={delta}) at MAE {mae:.3} \
             (paper's operating point on its extract: C=30, K=25, w=0.35, lambda=0.8, delta=0.1)",
            train.label()
        ));
    }

    ExperimentOutput {
        id: "tune".into(),
        title: "Extension — hyper-parameter grid search".into(),
        tables: vec![table],
        notes,
        charts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_reports_one_row_per_training_size() {
        let ctx = ExperimentContext::new(Scale::Quick, 11, Some(2));
        let out = tune(&ctx);
        assert_eq!(out.tables[0].rows.len(), ctx.train_sizes().len());
        for row in &out.tables[0].rows {
            let mae: f64 = row[6].parse().unwrap();
            assert!(mae > 0.0 && mae < 4.0);
        }
    }
}
