//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! None of these appear as figures in the paper, but each isolates one of
//! its claims:
//!
//! - **local vs global** — does the local `M × K` reduction actually buy
//!   latency without losing accuracy? (CFSF vs the SF baseline, which
//!   fuses the same three estimators over the whole matrix.)
//! - **smoothing on/off** — §IV-D motivates smoothing by sparsity and
//!   rating-style diversity.
//! - **SUIR' on/off** — §V-E2 says SUIR' helps "but not significantly".
//! - **iCluster candidate walk vs whole-population ranking** — §IV-E2's
//!   selection shortcut.

use cf_data::GivenN;

use crate::metrics::evaluate_mae;
use crate::table::{fmt_mae, fmt_secs, Table};
use crate::timing::time_predictions;

use super::{ExperimentContext, ExperimentOutput};

/// Runs all four ablations on the largest training set at Given10.
pub fn ablations(ctx: &ExperimentContext) -> ExperimentOutput {
    let train = ctx.largest_train();
    let split = ctx.split(train, GivenN::Given10);
    let base = ctx.fit_cfsf(&split.train);

    let mut table = Table::new(
        "Ablations (largest training set, Given10)",
        &["variant", "MAE", "online time (s)"],
    );
    let mut notes = Vec::new();

    // Baseline CFSF.
    base.clear_caches();
    let t = time_predictions(&base, &split.holdout);
    let mae_base = evaluate_mae(&base, &split.holdout);
    table.push_row(vec!["CFSF (full)".into(), fmt_mae(mae_base), fmt_secs(t)]);

    // 1. Global fusion (SF) against local CFSF.
    let sf = ctx.fit_baseline("SF", &split.train);
    let t_sf = time_predictions(sf.as_ref(), &split.holdout);
    let mae_sf = evaluate_mae(sf.as_ref(), &split.holdout);
    table.push_row(vec![
        "global fusion (SF)".into(),
        fmt_mae(mae_sf),
        fmt_secs(t_sf),
    ]);
    notes.push(format!(
        "local vs global: CFSF MAE {:.3} vs SF {:.3}; the local matrix must not cost accuracy",
        mae_base, mae_sf
    ));

    // 2. Smoothing off.
    let no_smooth = base
        .reparameterize(|c| c.use_smoothing = false)
        .expect("valid");
    no_smooth.clear_caches();
    let t_ns = time_predictions(&no_smooth, &split.holdout);
    let mae_ns = evaluate_mae(&no_smooth, &split.holdout);
    table.push_row(vec!["no smoothing".into(), fmt_mae(mae_ns), fmt_secs(t_ns)]);
    notes.push(format!(
        "smoothing: on {:.3} vs off {:.3} (paper: smoothing combats sparsity/diversity) — {}",
        mae_base,
        mae_ns,
        if mae_base <= mae_ns { "helps" } else { "HURTS" }
    ));

    // 3. SUIR' off (δ = 0).
    let no_suir = base.reparameterize(|c| c.delta = 0.0).expect("valid");
    no_suir.clear_caches();
    let t_nd = time_predictions(&no_suir, &split.holdout);
    let mae_nd = evaluate_mae(&no_suir, &split.holdout);
    table.push_row(vec![
        "delta = 0 (no SUIR')".into(),
        fmt_mae(mae_nd),
        fmt_secs(t_nd),
    ]);
    notes.push(format!(
        "SUIR': with {:.3} vs without {:.3} (paper: small improvement from SUIR')",
        mae_base, mae_nd
    ));

    // 4. iCluster walk vs whole-population candidate pool.
    let whole = base
        .reparameterize(|c| c.candidate_factor = usize::MAX / c.k.max(1))
        .expect("valid");
    whole.clear_caches();
    let t_w = time_predictions(&whole, &split.holdout);
    let mae_w = evaluate_mae(&whole, &split.holdout);
    table.push_row(vec![
        "whole-population candidates".into(),
        fmt_mae(mae_w),
        fmt_secs(t_w),
    ]);
    notes.push(format!(
        "iCluster walk: MAE {:.3} in {:.3}s vs whole-population {:.3} in {:.3}s \
         (the walk should be close in accuracy and cheaper per cold user)",
        mae_base,
        t.as_secs_f64(),
        mae_w,
        t_w.as_secs_f64()
    ));

    ExperimentOutput {
        id: "ablations".into(),
        title: "Ablations".into(),
        tables: vec![table],
        notes,
        charts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn ablations_produce_five_rows() {
        let ctx = ExperimentContext::new(Scale::Quick, 9, Some(2));
        let out = ablations(&ctx);
        assert_eq!(out.tables[0].rows.len(), 5);
        assert_eq!(out.notes.len(), 4);
        for row in &out.tables[0].rows {
            let mae: f64 = row[1].parse().unwrap();
            assert!(mae > 0.0 && mae < 4.0, "MAE {mae}");
        }
    }
}
