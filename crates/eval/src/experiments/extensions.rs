//! Beyond-the-paper experiments exercising the future-work extensions:
//! top-N ranking quality, temporal drift, and incremental maintenance.

use std::time::Instant;

use cf_data::GivenN;
use cf_matrix::{ItemId, UserId};
use cf_temporal::{
    temporal_split, Decay, DecayMode, DriftConfig, TimeAwareSur, TimeAwareSurConfig,
};
use cfsf_core::{IncrementalCfsf, RefreshKind};

use crate::ranking::evaluate_ranking;
use crate::table::{fmt_mae, Table};

use super::{ExperimentContext, ExperimentOutput, Scale};

/// Top-N ranking quality of CFSF vs the memory-based baselines.
pub fn topn(ctx: &ExperimentContext) -> ExperimentOutput {
    let split = ctx.split(ctx.largest_train(), GivenN::Given10);
    let n = 10;
    let threshold = 4.0;

    let mut table = Table::new(
        "Extension — top-10 ranking quality (largest training set, Given10)",
        &["method", "precision@10", "recall@10", "NDCG@10"],
    );
    let mut notes = Vec::new();
    let mut cfsf_ndcg = 0.0;
    let mut best_other = 0.0f64;

    let cfsf = ctx.fit_cfsf(&split.train);
    if let Some(e) = evaluate_ranking(&cfsf, &split.holdout, n, threshold) {
        table.push_row(vec![
            "CFSF".into(),
            fmt_mae(e.precision),
            fmt_mae(e.recall),
            fmt_mae(e.ndcg),
        ]);
        cfsf_ndcg = e.ndcg;
    }
    for name in ["SUR", "SIR", "SF"] {
        let model = ctx.fit_baseline(name, &split.train);
        if let Some(e) = evaluate_ranking(model.as_ref(), &split.holdout, n, threshold) {
            table.push_row(vec![
                name.into(),
                fmt_mae(e.precision),
                fmt_mae(e.recall),
                fmt_mae(e.ndcg),
            ]);
            best_other = best_other.max(e.ndcg);
        }
    }
    notes.push(format!(
        "CFSF NDCG@10 = {cfsf_ndcg:.3}; best baseline = {best_other:.3} \
         (rating-accuracy gains should carry over to ranking)"
    ));

    ExperimentOutput {
        id: "topn".into(),
        title: "Extension — top-N ranking quality".into(),
        tables: vec![table],
        notes,
        charts: Vec::new(),
    }
}

/// Temporal drift: time-decayed SUR vs plain SUR on drifting users
/// (future work §VI: "dates associated with the ratings").
pub fn temporal(ctx: &ExperimentContext) -> ExperimentOutput {
    let cfg = match ctx.scale {
        Scale::Paper => DriftConfig {
            num_users: 300,
            num_items: 400,
            ratings_per_user: 60,
            drift_fraction: 0.6,
            noise_sd: 0.3,
            ..DriftConfig::default()
        },
        Scale::Quick => DriftConfig {
            drift_fraction: 0.6,
            noise_sd: 0.3,
            ..DriftConfig::default()
        },
    };
    let (data, drifted) = cfg.generate();
    let split = temporal_split(&data, 0.75);

    let mut table = Table::new(
        "Extension — MAE under preference drift (train on past, test on future)",
        &["method", "half-life", "MAE (all)", "MAE (drifted users)"],
    );
    let mut notes = Vec::new();

    let half_lives = [
        ("plain (no decay)", 1e15),
        ("span", cfg.time_span as f64),
        ("span/8", cfg.time_span as f64 / 8.0),
        ("span/32", cfg.time_span as f64 / 32.0),
    ];
    let mut results = Vec::new();
    for &(label, hl) in &half_lives {
        let model = TimeAwareSur::fit(
            &split.train,
            TimeAwareSurConfig {
                decay: Decay::with_half_life(hl),
                mode: DecayMode::ActiveAge,
                decay_neighbor_ratings: false,
                neighborhood: Some(40),
            },
        );
        let mae_of = |filter: &dyn Fn(UserId) -> bool| {
            let mut err = 0.0;
            let mut n = 0usize;
            for &(u, i, r, _) in &split.holdout {
                if !filter(u) {
                    continue;
                }
                let p = cf_matrix::Predictor::predict(&model, u, i).unwrap_or(3.0);
                err += (p - r).abs();
                n += 1;
            }
            err / n.max(1) as f64
        };
        let all = mae_of(&|_| true);
        let drift_only = mae_of(&|u| drifted.contains(&u));
        table.push_row(vec![
            label.into(),
            if hl > 1e14 {
                "∞".into()
            } else {
                format!("{hl:.0}")
            },
            fmt_mae(all),
            fmt_mae(drift_only),
        ]);
        results.push((label, all, drift_only));
    }
    let plain = results[0];
    let best_decay = results[1..]
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .copied()
        .expect("non-empty");
    notes.push(format!(
        "on drifted users, best decay ({}) MAE {:.3} vs plain {:.3} — decay {}",
        best_decay.0,
        best_decay.2,
        plain.2,
        if best_decay.2 < plain.2 {
            "helps"
        } else {
            "DOES NOT help"
        }
    ));

    ExperimentOutput {
        id: "temporal".into(),
        title: "Extension — temporal drift".into(),
        tables: vec![table],
        notes,
        charts: Vec::new(),
    }
}

/// Incremental maintenance: cost of absorbing new ratings via partial
/// refresh vs full refit (future work §VI: "keep GIS up-to-date").
pub fn incremental(ctx: &ExperimentContext) -> ExperimentOutput {
    let split = ctx.split(ctx.largest_train(), GivenN::Given10);
    let model = ctx.fit_cfsf(&split.train);
    let t_fit = {
        let t = Instant::now();
        let _ = ctx.fit_cfsf(&split.train);
        t.elapsed()
    };

    let batch = match ctx.scale {
        Scale::Paper => 200,
        Scale::Quick => 50,
    };
    let mut inc = IncrementalCfsf::new(model);
    // queue `batch` new ratings on unrated cells
    let m = inc.model().matrix().clone();
    let mut added = 0usize;
    'outer: for u in 0..m.num_users() {
        for i in 0..m.num_items() {
            let (user, item) = (UserId::from(u), ItemId::from(i));
            if m.get(user, item).is_none() && inc.add_rating(user, item, 4.0).is_ok() {
                added += 1;
                if added >= batch {
                    break 'outer;
                }
            }
        }
    }
    let stats = inc.refresh().expect("refresh succeeds");

    let mut table = Table::new(
        "Extension — incremental maintenance cost",
        &["operation", "ratings absorbed", "seconds"],
    );
    table.push_row(vec![
        "full offline fit".into(),
        "-".into(),
        format!("{:.3}", t_fit.as_secs_f64()),
    ]);
    table.push_row(vec![
        format!("partial refresh ({} GIS rows)", stats.items_rebuilt),
        stats.merged.to_string(),
        format!("{:.3}", stats.elapsed.as_secs_f64()),
    ]);

    let speedup = t_fit.as_secs_f64() / stats.elapsed.as_secs_f64().max(1e-9);
    let notes = vec![
        format!(
            "partial refresh absorbed {} ratings {speedup:.1}x faster than a full refit \
             (kind: {:?})",
            stats.merged, stats.kind
        ),
        format!(
            "refresh escalates to a full refit automatically past {}% churn",
            (inc.full_refit_fraction * 100.0) as u32
        ),
    ];
    assert_eq!(stats.kind, RefreshKind::Partial, "batch below escalation");

    ExperimentOutput {
        id: "incremental".into(),
        title: "Extension — incremental maintenance".into(),
        tables: vec![table],
        notes,
        charts: Vec::new(),
    }
}

/// Cold-start analysis: MAE binned by how many training ratings the
/// active item has, comparing CFSF, plain SUR, and the content-boosted
/// item CF (which blends genre attributes into the similarity — §VI's
/// "attributes of items" direction, aimed exactly at cold items).
pub fn coldstart(ctx: &ExperimentContext) -> ExperimentOutput {
    use cf_baselines::{ContentBoostedSir, ContentConfig};

    let split = ctx.split(ctx.largest_train(), GivenN::Given10);
    let genres = ctx
        .dataset
        .item_genres
        .clone()
        .expect("synthetic datasets carry genres");

    let cfsf = ctx.fit_cfsf(&split.train);
    let sur = ctx.fit_baseline("SUR", &split.train);
    let content = ContentBoostedSir::fit(&split.train, &genres, ContentConfig::default());

    // Bin holdout cells by the item's training popularity.
    let bins: &[(usize, usize, &str)] = &[
        (0, 5, "cold (≤5 raters)"),
        (6, 20, "warm (6–20)"),
        (21, usize::MAX, "popular (>20)"),
    ];
    let mut table = Table::new(
        "Extension — MAE by item popularity (largest training set, Given10)",
        &["item bin", "cells", "CFSF", "SUR", "SIR-content"],
    );
    let mut notes = Vec::new();
    for &(lo, hi, label) in bins {
        let cells: Vec<_> = split
            .holdout
            .iter()
            .filter(|c| {
                let n = split.train.item_count(c.item);
                n >= lo && n <= hi
            })
            .copied()
            .collect();
        if cells.is_empty() {
            continue;
        }
        let mae_cfsf = crate::metrics::evaluate_mae(&cfsf, &cells);
        let mae_sur = crate::metrics::evaluate_mae(sur.as_ref(), &cells);
        let mae_content = crate::metrics::evaluate_mae(&content, &cells);
        table.push_row(vec![
            label.into(),
            cells.len().to_string(),
            fmt_mae(mae_cfsf),
            fmt_mae(mae_sur),
            fmt_mae(mae_content),
        ]);
        if lo == 0 {
            notes.push(format!(
                "cold items: CFSF {mae_cfsf:.3}, SUR {mae_sur:.3}, content-boosted {mae_content:.3} \
                 (attributes should help most where co-ratings are scarce)"
            ));
        }
    }
    notes.push(
        "every method degrades on cold items relative to popular ones — the sparsity \
         problem the paper targets, localized"
            .into(),
    );

    ExperimentOutput {
        id: "coldstart".into(),
        title: "Extension — cold-start analysis".into(),
        tables: vec![table],
        notes,
        charts: Vec::new(),
    }
}

/// Robustness across dataset seeds: the paper reports single-run numbers;
/// this experiment regenerates the dataset with several seeds and reports
/// mean ± sd of the headline comparison, so a reader can tell signal from
/// generator luck.
pub fn variance(ctx: &ExperimentContext) -> ExperimentOutput {
    let seeds: &[u64] = match ctx.scale {
        Scale::Paper => &[42, 43, 44],
        Scale::Quick => &[42, 43, 44],
    };
    let mut per_method: Vec<(&str, Vec<f64>)> = vec![
        ("CFSF", Vec::new()),
        ("SUR", Vec::new()),
        ("SCBPCC", Vec::new()),
    ];

    for &seed in seeds {
        let run_ctx = ExperimentContext::new(ctx.scale, seed, ctx.threads);
        let split = run_ctx.split(run_ctx.largest_train(), GivenN::Given10);
        let cfsf = run_ctx.fit_cfsf(&split.train);
        per_method[0]
            .1
            .push(crate::metrics::evaluate_mae(&cfsf, &split.holdout));
        for (name, maes) in per_method.iter_mut().skip(1) {
            let model = run_ctx.fit_baseline(name, &split.train);
            maes.push(crate::metrics::evaluate_mae(model.as_ref(), &split.holdout));
        }
    }

    let mut table = Table::new(
        "Extension — MAE across dataset seeds (largest training set, Given10)",
        &["method", "mean MAE", "sd", "runs"],
    );
    let mut summary: Vec<(String, f64, f64)> = Vec::new();
    for (name, maes) in &per_method {
        let n = maes.len() as f64;
        let mean = maes.iter().sum::<f64>() / n;
        let sd = (maes.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() / (n - 1.0)).sqrt();
        table.push_row(vec![
            name.to_string(),
            fmt_mae(mean),
            format!("{sd:.4}"),
            maes.len().to_string(),
        ]);
        summary.push((name.to_string(), mean, sd));
    }

    let cfsf = &summary[0];
    let gap_vs_sur = summary[1].1 - cfsf.1;
    let pooled_sd = (cfsf.2 + summary[1].2) / 2.0;
    let notes = vec![format!(
        "CFSF's mean advantage over SUR ({gap_vs_sur:.3}) is {:.1}x the pooled seed-to-seed sd \
         ({pooled_sd:.4}) — the Table II ordering is not generator luck",
        gap_vs_sur / pooled_sd.max(1e-9)
    )];

    ExperimentOutput {
        id: "variance".into(),
        title: "Extension — cross-seed variance".into(),
        tables: vec![table],
        notes,
        charts: Vec::new(),
    }
}

/// K-fold cross-validation: every user rotates through the test role
/// once, giving per-fold MAE and a variance estimate from a single
/// dataset (a rigor upgrade over the paper's fixed last-200-users split).
pub fn crossval(ctx: &ExperimentContext) -> ExperimentOutput {
    let k = 5;
    let folds = cf_data::k_fold_splits(&ctx.dataset, k, GivenN::Given10, 17);
    let mut table = Table::new(
        "Extension — 5-fold cross-validation (Given10)",
        &["fold", "holdout cells", "CFSF MAE", "SUR MAE"],
    );
    let mut cfsf_maes = Vec::new();
    let mut sur_maes = Vec::new();
    for (f, split) in folds.iter().enumerate() {
        let cfsf = ctx.fit_cfsf(&split.train);
        let sur = ctx.fit_baseline("SUR", &split.train);
        let a = crate::metrics::evaluate_mae(&cfsf, &split.holdout);
        let b = crate::metrics::evaluate_mae(sur.as_ref(), &split.holdout);
        table.push_row(vec![
            f.to_string(),
            split.holdout.len().to_string(),
            fmt_mae(a),
            fmt_mae(b),
        ]);
        cfsf_maes.push(a);
        sur_maes.push(b);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let sd = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64).sqrt()
    };
    let wins = cfsf_maes
        .iter()
        .zip(&sur_maes)
        .filter(|(a, b)| a < b)
        .count();
    let notes = vec![
        format!(
            "CFSF {:.3} ± {:.4} vs SUR {:.3} ± {:.4} across {k} folds",
            mean(&cfsf_maes),
            sd(&cfsf_maes),
            mean(&sur_maes),
            sd(&sur_maes)
        ),
        format!("CFSF wins {wins}/{k} folds"),
    ];

    ExperimentOutput {
        id: "crossval".into(),
        title: "Extension — k-fold cross-validation".into(),
        tables: vec![table],
        notes,
        charts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossval_covers_every_fold() {
        let ctx = ExperimentContext::new(Scale::Quick, 21, Some(2));
        let out = crossval(&ctx);
        assert_eq!(out.tables[0].rows.len(), 5);
        assert_eq!(out.notes.len(), 2);
    }

    #[test]
    fn variance_reports_three_methods() {
        let ctx = ExperimentContext::new(Scale::Quick, 21, Some(2));
        let out = variance(&ctx);
        assert_eq!(out.tables[0].rows.len(), 3);
        for row in &out.tables[0].rows {
            let mean: f64 = row[1].parse().unwrap();
            let sd: f64 = row[2].parse().unwrap();
            assert!(mean > 0.0 && mean < 2.0);
            assert!((0.0..0.5).contains(&sd));
        }
    }

    #[test]
    fn coldstart_bins_cover_the_holdout() {
        let ctx = ExperimentContext::new(Scale::Quick, 21, Some(2));
        let out = coldstart(&ctx);
        assert!(!out.tables[0].rows.is_empty());
        let total: usize = out.tables[0]
            .rows
            .iter()
            .map(|r| r[1].parse::<usize>().unwrap())
            .sum();
        let split = ctx.split(ctx.largest_train(), GivenN::Given10);
        assert_eq!(total, split.holdout.len());
    }

    #[test]
    fn topn_reports_all_methods() {
        let ctx = ExperimentContext::new(Scale::Quick, 21, Some(2));
        let out = topn(&ctx);
        assert_eq!(out.tables[0].rows.len(), 4);
        for row in &out.tables[0].rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn temporal_reports_decay_grid() {
        let ctx = ExperimentContext::new(Scale::Quick, 21, Some(2));
        let out = temporal(&ctx);
        assert_eq!(out.tables[0].rows.len(), 4);
        assert!(!out.notes.is_empty());
    }

    #[test]
    fn incremental_reports_speedup() {
        let ctx = ExperimentContext::new(Scale::Quick, 21, Some(2));
        let out = incremental(&ctx);
        assert_eq!(out.tables[0].rows.len(), 2);
        assert_eq!(out.notes.len(), 2);
    }
}
