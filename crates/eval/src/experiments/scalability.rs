//! Fig. 5 — online response time of CFSF vs SCBPCC as the testset grows.
//!
//! The paper fixes Given20, sweeps the evaluated fraction of the 200 test
//! users from 10% to 100% across ML_100/200/300, and reports wall-clock
//! response time of the online phase. The claims we check: response time
//! grows linearly in testset size, and CFSF is a small multiple faster
//! than SCBPCC (≈2.4× at the paper's largest point).

use crate::chart::{render_chart, Series};
use crate::table::{fmt_secs, Table};
use crate::timing::time_predictions;

use super::{sweep_fractions, ExperimentContext, ExperimentOutput};

/// Runs the Fig. 5 measurement.
pub fn fig5(ctx: &ExperimentContext) -> ExperimentOutput {
    let mut table = Table::new(
        "Fig. 5 — response time at Given20 (seconds)",
        &[
            "training set",
            "testset %",
            "holdout cells",
            "CFSF",
            "SCBPCC",
        ],
    );
    let mut notes = Vec::new();
    let mut charts = Vec::new();

    for &train in &ctx.train_sizes() {
        // The training matrix is identical across fractions (the fraction
        // only selects which test users are *evaluated*), so fit once.
        let full = ctx.split_fraction(train, 1.0);
        let cfsf = ctx.fit_cfsf(&full.train);
        let scbpcc = ctx.fit_baseline("SCBPCC", &full.train);

        let mut sizes = Vec::new();
        let mut cfsf_times = Vec::new();
        let mut scb_times = Vec::new();
        for &fraction in &sweep_fractions(ctx.scale) {
            let split = ctx.split_fraction(train, fraction);
            // Cold start per point: Fig. 5 measures each testset size as
            // an independent serving run.
            cfsf.clear_caches();
            let t_cfsf = time_predictions(&cfsf, &split.holdout);
            let t_scb = time_predictions(scbpcc.as_ref(), &split.holdout);
            table.push_row(vec![
                train.label(),
                format!("{:.0}%", fraction * 100.0),
                split.holdout.len().to_string(),
                fmt_secs(t_cfsf),
                fmt_secs(t_scb),
            ]);
            sizes.push(split.holdout.len() as f64);
            cfsf_times.push(t_cfsf.as_secs_f64());
            scb_times.push(t_scb.as_secs_f64());
        }

        if train == ctx.largest_train() {
            charts.push(render_chart(
                &format!(
                    "Fig. 5 — response time vs holdout cells ({})",
                    train.label()
                ),
                &[
                    Series::new(
                        "CFSF",
                        sizes
                            .iter()
                            .copied()
                            .zip(cfsf_times.iter().copied())
                            .collect(),
                    ),
                    Series::new(
                        "SCBPCC",
                        sizes
                            .iter()
                            .copied()
                            .zip(scb_times.iter().copied())
                            .collect(),
                    ),
                ],
                60,
                14,
            ));
        }

        // Shape 1: linear growth — correlation of time vs size.
        let r_cfsf = pearson(&sizes, &cfsf_times);
        let r_scb = pearson(&sizes, &scb_times);
        notes.push(format!(
            "{}: time-vs-size correlation CFSF {:.3}, SCBPCC {:.3} (paper: linear growth)",
            train.label(),
            r_cfsf,
            r_scb
        ));
        // Shape 2: CFSF faster than SCBPCC at the full testset.
        let speedup =
            scb_times.last().expect("non-empty") / cfsf_times.last().expect("non-empty").max(1e-9);
        notes.push(format!(
            "{}: SCBPCC/CFSF time ratio at 100% = {:.1}x (paper: ~2.4x — CFSF faster)",
            train.label(),
            speedup
        ));
    }

    ExperimentOutput {
        id: "fig5".into(),
        title: "Fig. 5 — online scalability".into(),
        tables: vec![table],
        notes,
        charts,
    }
}

/// Pearson correlation of two equal-length series.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut dot = 0.0;
    let mut nx = 0.0;
    let mut ny = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        dot += (x - mx) * (y - my);
        nx += (x - mx) * (x - mx);
        ny += (y - my) * (y - my);
    }
    if nx <= 0.0 || ny <= 0.0 {
        return 0.0;
    }
    dot / (nx.sqrt() * ny.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_detects_linearity() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let anti = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &anti) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&xs, &flat), 0.0);
    }
}
