//! Experiment drivers — one per table/figure of the paper's §V, plus the
//! ablations from DESIGN.md.
//!
//! Each driver takes an [`ExperimentContext`] and returns an
//! [`ExperimentOutput`] containing renderable tables and shape notes
//! (the qualitative claims the paper makes, checked against our runs:
//! "CFSF beats every baseline", "Fig. 3 is U-shaped", ...).

pub mod ablations;
pub mod extensions;
pub mod scalability;
pub mod sweeps;
pub mod tables;
pub mod tuning;

use cf_baselines::{
    AspectConfig, AspectModel, Emdp, EmdpConfig, PdConfig, PersonalityDiagnosis, Scbpcc,
    ScbpccConfig, SfConfig, SimilarityFusion, Sir, SirConfig, Sur, SurConfig,
};
use cf_data::{Dataset, GivenN, Protocol, Split, SyntheticConfig, TrainSize};
use cf_matrix::{Predictor, RatingMatrix};
use cf_similarity::GisConfig;
use cfsf_core::{Cfsf, CfsfConfig};

use crate::Table;

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale: the 500×1000 synthetic MovieLens analogue, 200 test
    /// users, full sweep grids. Minutes of wall time in release mode.
    Paper,
    /// A 200×300 dataset with coarser sweeps; seconds of wall time. Used
    /// by integration tests and for iterating on the harness itself.
    Quick,
}

/// Shared state for one experiment session: the dataset and the scale.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The dataset every experiment draws splits from.
    pub dataset: Dataset,
    /// Run scale.
    pub scale: Scale,
    /// Worker threads (`None` = auto).
    pub threads: Option<usize>,
}

/// One experiment's renderable output.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Stable id ("table2", "fig5", ...), used for CSV filenames.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Qualitative shape observations (paper claim → measured verdict).
    pub notes: Vec<String>,
    /// Rendered ASCII charts (the figure experiments attach one each).
    pub charts: Vec<String>,
}

impl ExperimentContext {
    /// Builds a context at the given scale with a deterministic dataset.
    pub fn new(scale: Scale, seed: u64, threads: Option<usize>) -> Self {
        let dataset = match scale {
            Scale::Paper => SyntheticConfig::movielens().with_seed(seed).generate(),
            Scale::Quick => SyntheticConfig {
                num_users: 200,
                num_items: 300,
                mean_ratings_per_user: 40.0,
                min_ratings_per_user: 21,
                taste_groups: 6,
                genres: 8,
                ..SyntheticConfig::movielens()
            }
            .with_seed(seed)
            .generate(),
        };
        Self {
            dataset,
            scale,
            threads,
        }
    }

    /// The paper's training-set grid (ML_100/200/300), scaled down in
    /// quick mode.
    pub fn train_sizes(&self) -> Vec<TrainSize> {
        match self.scale {
            Scale::Paper => vec![
                TrainSize::Users(100),
                TrainSize::Users(200),
                TrainSize::Users(300),
            ],
            Scale::Quick => vec![
                TrainSize::Users(60),
                TrainSize::Users(100),
                TrainSize::Users(140),
            ],
        }
    }

    /// The largest training set (the paper runs its sweeps on ML_300).
    pub fn largest_train(&self) -> TrainSize {
        *self.train_sizes().last().expect("non-empty grid")
    }

    /// Number of test users (paper: 200).
    pub fn test_users(&self) -> usize {
        match self.scale {
            Scale::Paper => 200,
            Scale::Quick => 60,
        }
    }

    /// Materializes a protocol split.
    pub fn split(&self, train: TrainSize, given: GivenN) -> Split {
        Protocol::new(train, given, self.test_users())
            .split(&self.dataset)
            .expect("context grids are always consistent")
    }

    /// Materializes a Fig. 5 split (Given20, partial test population).
    pub fn split_fraction(&self, train: TrainSize, fraction: f64) -> Split {
        Protocol::new(train, GivenN::Given20, self.test_users())
            .with_test_fraction(fraction)
            .split(&self.dataset)
            .expect("context grids are always consistent")
    }

    /// CFSF configuration at this scale, with a GIS cap generous enough
    /// for the Fig. 2 `M` sweep.
    ///
    /// The paper tuned its operating point (`C=30, K=25, w=0.35, λ=0.8,
    /// δ=0.1`) on its MovieLens extract (§V-C/E). On our synthetic
    /// substitute the `tune` experiment puts the optimum elsewhere
    /// (fewer clusters — with C=30 over 500 users each Eq. 8 deviation
    /// averages fewer than two ratings; larger K; higher w), so the
    /// harness uses the substrate-tuned point below. The deviation and
    /// its cause are documented in EXPERIMENTS.md; the Figs. 2–8 sweeps
    /// cover both operating points. SCBPCC shares the same `C`/`K` since
    /// it uses the same clustering substrate.
    pub fn cfsf_config(&self) -> CfsfConfig {
        let mut c = match self.scale {
            Scale::Paper => CfsfConfig {
                clusters: 12,
                k: 40,
                w: 0.6,
                lambda: 0.9,
                ..CfsfConfig::paper()
            },
            Scale::Quick => CfsfConfig {
                clusters: 8,
                k: 25,
                m: 40,
                w: 0.6,
                lambda: 0.9,
                ..CfsfConfig::paper()
            },
        };
        c.gis = GisConfig {
            max_neighbors: Some(
                sweep_m_values(self.scale)
                    .last()
                    .copied()
                    .unwrap_or(100)
                    .max(c.m),
            ),
            threads: self.threads,
            ..GisConfig::default()
        };
        c.threads = self.threads;
        c
    }

    /// Fits CFSF on a training matrix.
    pub fn fit_cfsf(&self, train: &RatingMatrix) -> Cfsf {
        Cfsf::fit(train, self.cfsf_config()).expect("paper config is valid")
    }

    /// Fits a baseline by its paper label.
    pub fn fit_baseline(&self, name: &str, train: &RatingMatrix) -> Box<dyn Predictor> {
        match name {
            "SIR" => Box::new(Sir::fit(
                train,
                SirConfig {
                    gis: GisConfig {
                        threads: self.threads,
                        max_neighbors: None,
                        ..GisConfig::default()
                    },
                    ..SirConfig::default()
                },
            )),
            "SUR" => Box::new(Sur::fit(train, SurConfig::default())),
            "SF" => Box::new(SimilarityFusion::fit(
                train,
                SfConfig {
                    gis: GisConfig {
                        threads: self.threads,
                        ..GisConfig::default()
                    },
                    ..SfConfig::default()
                },
            )),
            "EMDP" => Box::new(Emdp::fit(
                train,
                EmdpConfig {
                    threads: self.threads,
                    ..EmdpConfig::default()
                },
            )),
            "SCBPCC" => Box::new(Scbpcc::fit(
                train,
                ScbpccConfig {
                    clusters: self.cfsf_config().clusters,
                    k: self.cfsf_config().k,
                    threads: self.threads,
                    ..ScbpccConfig::default()
                },
            )),
            "AM" => Box::new(AspectModel::fit(train, AspectConfig::default())),
            "PD" => Box::new(PersonalityDiagnosis::fit(train, PdConfig::default())),
            other => panic!("unknown baseline {other:?}"),
        }
    }

    /// The Given-N grid (always the paper's three).
    pub fn givens(&self) -> [GivenN; 3] {
        GivenN::paper_grid()
    }
}

/// Sweep grid for `M` (Fig. 2).
pub fn sweep_m_values(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Paper => (1..=10).map(|x| x * 10).collect(), // 10..100
        Scale::Quick => vec![10, 25, 40, 60],
    }
}

/// Sweep grid for `K` (Fig. 3).
pub fn sweep_k_values(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Paper => (1..=10).map(|x| x * 10).collect(),
        Scale::Quick => vec![5, 15, 30, 50],
    }
}

/// Sweep grid for `C` (Fig. 4).
pub fn sweep_c_values(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Paper => (1..=10).map(|x| x * 10).collect(),
        Scale::Quick => vec![4, 12, 24, 40],
    }
}

/// Sweep grid for `λ` and `δ` (Figs. 6–7).
pub fn sweep_unit_values(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Paper => (0..=10).map(|x| x as f64 / 10.0).collect(),
        Scale::Quick => vec![0.0, 0.25, 0.5, 0.75, 1.0],
    }
}

/// Sweep grid for `w` (Fig. 8); avoids the exact 0/1 endpoints the way
/// the paper's x-axis does.
pub fn sweep_w_values(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Paper => (1..=19).map(|x| x as f64 / 20.0).collect(),
        Scale::Quick => vec![0.1, 0.3, 0.5, 0.7, 0.9],
    }
}

/// Fig. 5 testset fractions.
pub fn sweep_fractions(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Paper => (1..=10).map(|x| x as f64 / 10.0).collect(),
        Scale::Quick => vec![0.25, 0.5, 0.75, 1.0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_is_consistent() {
        let ctx = ExperimentContext::new(Scale::Quick, 1, Some(2));
        assert_eq!(ctx.dataset.matrix.num_users(), 200);
        let split = ctx.split(ctx.largest_train(), GivenN::Given5);
        assert!(!split.holdout.is_empty());
        assert_eq!(split.train.num_users(), 200);
    }

    #[test]
    fn sweep_grids_are_monotonic() {
        for scale in [Scale::Paper, Scale::Quick] {
            assert!(sweep_m_values(scale).windows(2).all(|w| w[0] < w[1]));
            assert!(sweep_k_values(scale).windows(2).all(|w| w[0] < w[1]));
            assert!(sweep_c_values(scale).windows(2).all(|w| w[0] < w[1]));
            assert!(sweep_unit_values(scale).windows(2).all(|w| w[0] < w[1]));
            assert!(sweep_w_values(scale).windows(2).all(|w| w[0] < w[1]));
            assert!(sweep_fractions(scale).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn all_baselines_fit_on_quick_data() {
        let ctx = ExperimentContext::new(Scale::Quick, 1, Some(2));
        let split = ctx.split(TrainSize::Users(60), GivenN::Given5);
        for name in ["SIR", "SUR", "PD"] {
            let model = ctx.fit_baseline(name, &split.train);
            assert_eq!(model.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown baseline")]
    fn unknown_baseline_panics() {
        let ctx = ExperimentContext::new(Scale::Quick, 1, Some(2));
        let _ = ctx.fit_baseline("nope", &ctx.dataset.matrix.clone());
    }
}
