//! Tables I, II and III of the paper.

use cf_matrix::MatrixStats;

use crate::metrics::evaluate;
use crate::table::{fmt_mae, Table};

use super::{ExperimentContext, ExperimentOutput};

/// Table I — statistics of the dataset.
pub fn table1(ctx: &ExperimentContext) -> ExperimentOutput {
    let stats = MatrixStats::compute(&ctx.dataset.matrix);
    let mut t = Table::new(
        "Table I — Statistics of the dataset",
        &["statistic", "value"],
    );
    t.push_row(vec!["No. of users".into(), stats.active_users.to_string()]);
    t.push_row(vec!["No. of items".into(), stats.active_items.to_string()]);
    t.push_row(vec![
        "Average no. of rated items per user".into(),
        format!("{:.1}", stats.avg_ratings_per_user),
    ]);
    t.push_row(vec![
        "Density of data".into(),
        format!("{:.2}%", stats.density * 100.0),
    ]);
    t.push_row(vec![
        "No. of rating values".into(),
        stats.distinct_rating_values.to_string(),
    ]);
    t.push_row(vec!["No. of ratings".into(), stats.num_ratings.to_string()]);

    let mut notes = vec![format!(
        "paper reports 500 users, 1000 items, 94.4 ratings/user, 9.44% density, 5 values; \
         measured {} users, {} items, {:.1} ratings/user, {:.2}% density, {} values",
        stats.active_users,
        stats.active_items,
        stats.avg_ratings_per_user,
        stats.density * 100.0,
        stats.distinct_rating_values
    )];
    if stats.min_ratings_per_user >= 40 {
        notes.push("every user rated ≥ 40 items — matches the paper's selection criterion".into());
    }
    ExperimentOutput {
        id: "table1".into(),
        title: "Table I — dataset statistics".into(),
        tables: vec![t],
        notes,
        charts: Vec::new(),
    }
}

/// Shared engine for Tables II and III: MAE of a method set over the
/// (train size × GivenN) grid.
fn mae_grid(ctx: &ExperimentContext, id: &str, title: &str, methods: &[&str]) -> ExperimentOutput {
    let mut t = Table::new(
        title,
        &["training set", "method", "Given5", "Given10", "Given20"],
    );
    // mae[train][method][given]
    let mut cells: Vec<Vec<Vec<f64>>> = Vec::new();

    for &train in &ctx.train_sizes() {
        let mut per_method: Vec<Vec<f64>> = vec![Vec::new(); methods.len() + 1];
        for given in ctx.givens() {
            let split = ctx.split(train, given);
            let cfsf = ctx.fit_cfsf(&split.train);
            per_method[0].push(evaluate(&cfsf, &split.holdout).mae);
            for (k, &name) in methods.iter().enumerate() {
                let model = ctx.fit_baseline(name, &split.train);
                per_method[k + 1].push(evaluate(model.as_ref(), &split.holdout).mae);
            }
        }
        let labels: Vec<&str> = std::iter::once("CFSF")
            .chain(methods.iter().copied())
            .collect();
        for (k, label) in labels.iter().enumerate() {
            t.push_row(vec![
                train.label(),
                label.to_string(),
                fmt_mae(per_method[k][0]),
                fmt_mae(per_method[k][1]),
                fmt_mae(per_method[k][2]),
            ]);
        }
        cells.push(per_method);
    }

    // Significance of the headline comparison: CFSF vs each method on
    // the largest training set at Given10, paired per holdout cell.
    let mut notes = Vec::new();
    {
        let split = ctx.split(ctx.largest_train(), cf_data::GivenN::Given10);
        let cfsf = ctx.fit_cfsf(&split.train);
        let cfsf_errors = crate::stats::absolute_errors(&cfsf, &split.holdout);
        for &name in methods {
            let model = ctx.fit_baseline(name, &split.train);
            let other_errors = crate::stats::absolute_errors(model.as_ref(), &split.holdout);
            if let Some(test) = crate::stats::paired_t_test(&cfsf_errors, &other_errors) {
                notes.push(format!(
                    "{}/Given10: CFSF vs {name}: ΔMAE = {:+.3}, paired t = {:.1}, p = {:.2e} ({})",
                    ctx.largest_train().label(),
                    test.mean_diff,
                    test.t,
                    test.p_two_sided,
                    if !test.significant_at(0.01) {
                        "not significant at 1%"
                    } else if test.mean_diff < 0.0 {
                        "CFSF significantly better"
                    } else {
                        "baseline significantly better"
                    }
                ));
            }
        }
    }
    let mut wins = 0usize;
    let mut total = 0usize;
    for per_method in &cells {
        for g in 0..3 {
            let cfsf = per_method[0][g];
            for other in &per_method[1..] {
                total += 1;
                if cfsf < other[g] {
                    wins += 1;
                }
            }
        }
    }
    notes.push(format!(
        "CFSF achieves the lowest MAE in {wins}/{total} cells (paper: all cells)"
    ));
    // MAE decreases as Given grows for CFSF
    let monotone_given = cells
        .iter()
        .all(|pm| pm[0][0] >= pm[0][1] && pm[0][1] >= pm[0][2]);
    notes.push(format!(
        "CFSF MAE decreases from Given5 to Given20 on every training set: {monotone_given} (paper: yes)"
    ));
    // MAE decreases as the training set grows (compare first vs last)
    let first = &cells[0][0];
    let last = &cells[cells.len() - 1][0];
    let monotone_train = (0..3).all(|g| last[g] <= first[g]);
    notes.push(format!(
        "CFSF MAE is lower on the largest training set than the smallest at every GivenN: {monotone_train} (paper: yes)"
    ));

    ExperimentOutput {
        id: id.into(),
        title: title.into(),
        tables: vec![t],
        notes,
        charts: Vec::new(),
    }
}

/// Table II — MAE of CFSF vs the traditional memory-based approaches
/// (item-based PCC = SIR, user-based PCC = SUR).
pub fn table2(ctx: &ExperimentContext) -> ExperimentOutput {
    mae_grid(
        ctx,
        "table2",
        "Table II — MAE on the dataset for SIR, SUR and CFSF",
        &["SUR", "SIR"],
    )
}

/// Table III — MAE of CFSF vs the state-of-the-art comparators.
pub fn table3(ctx: &ExperimentContext) -> ExperimentOutput {
    mae_grid(
        ctx,
        "table3",
        "Table III — MAE for the state-of-the-art CF approaches",
        &["AM", "EMDP", "SCBPCC", "SF", "PD"],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn table1_reports_all_rows() {
        let ctx = ExperimentContext::new(Scale::Quick, 3, Some(2));
        let out = table1(&ctx);
        assert_eq!(out.tables[0].rows.len(), 6);
        assert!(!out.notes.is_empty());
    }

    #[test]
    fn table2_grid_has_nine_method_rows() {
        let ctx = ExperimentContext::new(Scale::Quick, 3, Some(2));
        let out = table2(&ctx);
        // 3 train sizes × 3 methods
        assert_eq!(out.tables[0].rows.len(), 9);
        // every MAE parses and is plausible
        for row in &out.tables[0].rows {
            for cell in &row[2..] {
                let v: f64 = cell.parse().unwrap();
                assert!((0.0..=4.0).contains(&v), "MAE {v}");
            }
        }
    }
}
