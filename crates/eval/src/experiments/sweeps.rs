//! Parameter-sensitivity figures: Fig. 2 (M), Fig. 3 (K), Fig. 4 (C),
//! Fig. 6 (λ), Fig. 7 (δ), Fig. 8 (w).
//!
//! All sweeps run on the largest training set (the paper's ML_300) across
//! Given5/10/20, exactly like the figures.

use cf_data::GivenN;
use cfsf_core::CfsfConfig;

use crate::chart::{render_chart, Series};
use crate::metrics::evaluate_mae;
use crate::table::{fmt_mae, Table};

/// Sweep x-axis values must be chartable.
pub(crate) trait AsF64: Copy {
    fn as_f64(self) -> f64;
}
impl AsF64 for usize {
    fn as_f64(self) -> f64 {
        self as f64
    }
}
impl AsF64 for f64 {
    fn as_f64(self) -> f64 {
        self
    }
}

use super::{
    sweep_c_values, sweep_k_values, sweep_m_values, sweep_unit_values, sweep_w_values,
    ExperimentContext, ExperimentOutput,
};

/// Engine shared by all sweep figures: for every swept value, evaluate a
/// re-parameterized (or re-fitted) CFSF on all three GivenN splits.
fn sweep<T: AsF64 + std::fmt::Display>(
    ctx: &ExperimentContext,
    id: &str,
    title: &str,
    param_name: &str,
    values: &[T],
    apply: impl Fn(&mut CfsfConfig, T),
) -> (ExperimentOutput, Vec<Vec<f64>>) {
    let train = ctx.largest_train();
    let mut table = Table::new(title, &[param_name, "Given5", "Given10", "Given20"]);
    // series[given][point]
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 3];

    // One split + base model per GivenN, swept via reparameterize (which
    // refits only when the parameter is offline-side, e.g. C).
    let splits: Vec<_> = ctx.givens().iter().map(|&g| ctx.split(train, g)).collect();
    let bases: Vec<_> = splits.iter().map(|s| ctx.fit_cfsf(&s.train)).collect();

    for &v in values {
        let mut row = vec![format!("{v}")];
        for (g, (split, base)) in splits.iter().zip(&bases).enumerate() {
            let model = base
                .reparameterize(|c| apply(c, v))
                .expect("sweep values are valid");
            let mae = evaluate_mae(&model, &split.holdout);
            series[g].push(mae);
            row.push(fmt_mae(mae));
        }
        table.push_row(row);
    }

    let chart_series: Vec<Series> = series
        .iter()
        .enumerate()
        .map(|(g, s)| {
            Series::new(
                format!("Given{}", [5, 10, 20][g]),
                values
                    .iter()
                    .map(|v| v.as_f64())
                    .zip(s.iter().copied())
                    .collect(),
            )
        })
        .collect();
    let chart = render_chart(
        &format!("{title} — MAE vs {param_name}"),
        &chart_series,
        60,
        14,
    );

    let out = ExperimentOutput {
        id: id.into(),
        title: title.into(),
        tables: vec![table],
        notes: Vec::new(),
        charts: vec![chart],
    };
    (out, series)
}

/// Index of the minimum of a series.
fn argmin(series: &[f64]) -> usize {
    series
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty series")
}

/// Fig. 2 — accuracy as the number of similar items `M` varies.
pub fn fig2_m(ctx: &ExperimentContext) -> ExperimentOutput {
    let values = sweep_m_values(ctx.scale);
    let (mut out, series) = sweep(
        ctx,
        "fig2",
        "Fig. 2 — MAE with M similar items (largest training set)",
        "M",
        &values,
        |c, v| c.m = v,
    );
    // Paper: high MAE for small M, flattening once M passes ~60.
    for (g, s) in series.iter().enumerate() {
        let small = s[0];
        let large = *s.last().expect("non-empty");
        out.notes.push(format!(
            "Given{}: MAE at smallest M = {:.3}, at largest M = {:.3} (paper: small M is worse) — {}",
            [5, 10, 20][g],
            small,
            large,
            if small >= large { "matches" } else { "DIFFERS" }
        ));
    }
    out
}

/// Fig. 3 — accuracy as the number of like-minded users `K` varies.
pub fn fig3_k(ctx: &ExperimentContext) -> ExperimentOutput {
    let values = sweep_k_values(ctx.scale);
    let (mut out, series) = sweep(
        ctx,
        "fig3",
        "Fig. 3 — MAE with K like-minded users (largest training set)",
        "K",
        &values,
        |c, v| c.k = v,
    );
    // Paper: minimum in the 20–40 band; larger K drags in unrelated users.
    for (g, s) in series.iter().enumerate() {
        let best = values[argmin(s)];
        out.notes.push(format!(
            "Given{}: best K = {best} (paper: minimum for K in [20, 40])",
            [5, 10, 20][g]
        ));
    }
    out
}

/// Fig. 4 — accuracy as the number of user clusters `C` varies. Each
/// point refits the offline phase (cluster structure changes).
pub fn fig4_c(ctx: &ExperimentContext) -> ExperimentOutput {
    let values = sweep_c_values(ctx.scale);
    let (mut out, series) = sweep(
        ctx,
        "fig4",
        "Fig. 4 — MAE with C user clusters (largest training set)",
        "C",
        &values,
        |c, v| c.clusters = v,
    );
    for (g, s) in series.iter().enumerate() {
        let best = values[argmin(s)];
        out.notes.push(format!(
            "Given{}: best C = {best} (paper: minimum around C = 30; too many clusters hurt)",
            [5, 10, 20][g]
        ));
    }
    out
}

/// Fig. 6 — sensitivity of the fusion weight λ.
pub fn fig6_lambda(ctx: &ExperimentContext) -> ExperimentOutput {
    let values = sweep_unit_values(ctx.scale);
    let (mut out, series) = sweep(
        ctx,
        "fig6",
        "Fig. 6 — sensitivity of lambda (largest training set)",
        "lambda",
        &values,
        |c, v| c.lambda = v,
    );
    for (g, s) in series.iter().enumerate() {
        let best = values[argmin(s)];
        out.notes.push(format!(
            "Given{}: best lambda = {best} (paper: MAE dips then rises, minimum at 0.8 — SUR' matters more than SIR')",
            [5, 10, 20][g]
        ));
    }
    out
}

/// Fig. 7 — sensitivity of the SUIR' weight δ.
pub fn fig7_delta(ctx: &ExperimentContext) -> ExperimentOutput {
    let values = sweep_unit_values(ctx.scale);
    let (mut out, series) = sweep(
        ctx,
        "fig7",
        "Fig. 7 — sensitivity of delta (largest training set)",
        "delta",
        &values,
        |c, v| c.delta = v,
    );
    for (g, s) in series.iter().enumerate() {
        let best = values[argmin(s)];
        let rises_to_one = *s.last().expect("non-empty") > s[argmin(s)];
        out.notes.push(format!(
            "Given{}: best delta = {best}, MAE at delta=1 is worse: {rises_to_one} \
             (paper: minimum at 0.1, rising thereafter)",
            [5, 10, 20][g]
        ));
    }
    out
}

/// Fig. 8 — sensitivity of the smoothing-discount w.
pub fn fig8_w(ctx: &ExperimentContext) -> ExperimentOutput {
    let values = sweep_w_values(ctx.scale);
    let (mut out, series) = sweep(
        ctx,
        "fig8",
        "Fig. 8 — sensitivity of w (largest training set)",
        "w",
        &values,
        |c, v| c.w = v,
    );
    for (g, s) in series.iter().enumerate() {
        let best = values[argmin(s)];
        out.notes.push(format!(
            "Given{}: best w = {best} (paper: high accuracy for w in [0.2, 0.4])",
            [5, 10, 20][g]
        ));
    }
    out
}

/// Beyond-the-paper sweep: GivenN far outside {5,10,20}, checking that
/// more revealed ratings keep helping (the trend the paper extrapolates).
pub fn given_sweep(ctx: &ExperimentContext) -> ExperimentOutput {
    let train = ctx.largest_train();
    let counts: &[usize] = match ctx.scale {
        super::Scale::Paper => &[2, 5, 10, 20, 30],
        super::Scale::Quick => &[2, 5, 10],
    };
    let mut table = Table::new(
        "Extension — MAE as the number of revealed ratings grows",
        &["GivenN", "MAE"],
    );
    let mut series = Vec::new();
    for &n in counts {
        let split = ctx.split(train, GivenN::Custom(n));
        if split.holdout.is_empty() {
            continue;
        }
        let model = ctx.fit_cfsf(&split.train);
        let mae = evaluate_mae(&model, &split.holdout);
        table.push_row(vec![n.to_string(), fmt_mae(mae)]);
        series.push(mae);
    }
    let trend_down = series.first() >= series.last();
    ExperimentOutput {
        id: "given_sweep".into(),
        title: "Extension — GivenN sweep".into(),
        tables: vec![table],
        notes: vec![format!(
            "MAE at Given2 ≥ MAE at the largest GivenN: {trend_down} (more evidence should help)"
        )],
        charts: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scale;

    #[test]
    fn m_sweep_produces_full_grid() {
        let ctx = ExperimentContext::new(Scale::Quick, 5, Some(2));
        let out = fig2_m(&ctx);
        assert_eq!(out.tables[0].rows.len(), sweep_m_values(Scale::Quick).len());
        assert_eq!(out.notes.len(), 3);
        for row in &out.tables[0].rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0 && v < 4.0);
            }
        }
    }

    #[test]
    fn argmin_finds_minimum() {
        assert_eq!(argmin(&[3.0, 1.0, 2.0]), 1);
        assert_eq!(argmin(&[1.0]), 0);
    }
}
