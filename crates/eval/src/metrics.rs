//! Accuracy metrics over holdout cells. MAE is Eq. 15 of the paper.

use cf_data::HoldoutCell;
use cf_matrix::Predictor;

/// Result of scoring a predictor over a holdout set.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Mean absolute error (Eq. 15); lower is better.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Fraction of cells the predictor answered itself (did not need the
    /// harness-level midpoint fallback).
    pub coverage: f64,
    /// Number of holdout cells scored.
    pub cells: usize,
}

/// Scores `predictor` over the holdout cells.
///
/// The paper's MAE is computed over *every* holdout cell; if a predictor
/// abstains on a cell (returns `None`) the scale midpoint (3.0 on
/// MovieLens) stands in, and `coverage` records how often that happened.
pub fn evaluate<P: Predictor + ?Sized>(predictor: &P, holdout: &[HoldoutCell]) -> Evaluation {
    assert!(!holdout.is_empty(), "holdout set is empty");
    let mut abs = 0.0;
    let mut sq = 0.0;
    let mut answered = 0usize;
    for cell in holdout {
        let pred = match predictor.predict(cell.user, cell.item) {
            Some(v) => {
                answered += 1;
                v
            }
            None => 3.0,
        };
        let e = pred - cell.rating;
        abs += e.abs();
        sq += e * e;
    }
    let n = holdout.len() as f64;
    Evaluation {
        mae: abs / n,
        rmse: (sq / n).sqrt(),
        coverage: answered as f64 / n,
        cells: holdout.len(),
    }
}

/// MAE only — see [`evaluate`].
pub fn evaluate_mae<P: Predictor + ?Sized>(predictor: &P, holdout: &[HoldoutCell]) -> f64 {
    evaluate(predictor, holdout).mae
}

/// RMSE only — see [`evaluate`].
pub fn evaluate_rmse<P: Predictor + ?Sized>(predictor: &P, holdout: &[HoldoutCell]) -> f64 {
    evaluate(predictor, holdout).rmse
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_matrix::{ItemId, UserId};

    struct Fixed(f64);
    impl Predictor for Fixed {
        fn predict(&self, _: UserId, _: ItemId) -> Option<f64> {
            Some(self.0)
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    struct Abstain;
    impl Predictor for Abstain {
        fn predict(&self, _: UserId, _: ItemId) -> Option<f64> {
            None
        }
        fn name(&self) -> &'static str {
            "abstain"
        }
    }

    fn holdout() -> Vec<HoldoutCell> {
        vec![
            HoldoutCell {
                user: UserId::new(0),
                item: ItemId::new(0),
                rating: 4.0,
            },
            HoldoutCell {
                user: UserId::new(0),
                item: ItemId::new(1),
                rating: 2.0,
            },
        ]
    }

    #[test]
    fn mae_and_rmse_match_hand_computation() {
        let e = evaluate(&Fixed(3.0), &holdout());
        assert!((e.mae - 1.0).abs() < 1e-12);
        assert!((e.rmse - 1.0).abs() < 1e-12);
        assert_eq!(e.coverage, 1.0);
        assert_eq!(e.cells, 2);

        let e = evaluate(&Fixed(4.0), &holdout());
        assert!((e.mae - 1.0).abs() < 1e-12); // |0| and |2| → 1.0
        assert!((e.rmse - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn abstentions_use_midpoint_and_lower_coverage() {
        let e = evaluate(&Abstain, &holdout());
        assert_eq!(e.coverage, 0.0);
        assert!((e.mae - 1.0).abs() < 1e-12); // |3-4|, |3-2|
    }

    #[test]
    fn perfect_predictor_scores_zero() {
        struct Oracle;
        impl Predictor for Oracle {
            fn predict(&self, _: UserId, item: ItemId) -> Option<f64> {
                Some(if item.index() == 0 { 4.0 } else { 2.0 })
            }
            fn name(&self) -> &'static str {
                "oracle"
            }
        }
        let e = evaluate(&Oracle, &holdout());
        assert_eq!(e.mae, 0.0);
        assert_eq!(e.rmse, 0.0);
    }

    #[test]
    #[should_panic(expected = "holdout set is empty")]
    fn empty_holdout_panics() {
        let _ = evaluate(&Fixed(3.0), &[]);
    }
}
