//! `cfsf-experiments` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p cf-eval --bin cfsf-experiments -- all
//! cargo run --release -p cf-eval --bin cfsf-experiments -- table3 fig5 --quick
//! ```
//!
//! Flags:
//! - `--quick`      small dataset + coarse sweeps (seconds instead of minutes)
//! - `--out DIR`    where CSVs are written (default `results/`)
//! - `--seed N`     dataset seed (default 42)
//! - `--threads N`  worker threads (default: all cores)
//! - `--stats`      also write the runtime metrics snapshot (offline phase
//!   timings, online latency quantiles, cache hit rates) to
//!   `<out>/obs_snapshot.json` and print it

use std::path::PathBuf;
use std::time::Instant;

use cf_eval::experiments::{
    ablations, extensions, scalability, sweeps, tables, tuning, ExperimentOutput,
};
use cf_eval::{ExperimentContext, Scale};

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "given",
    "ablations",
    "tune",
    "topn",
    "temporal",
    "incremental",
    "coldstart",
    "variance",
    "crossval",
];

fn main() {
    let mut selected: Vec<String> = Vec::new();
    let mut scale = Scale::Paper;
    let mut out_dir = PathBuf::from("results");
    let mut seed = 42u64;
    let mut threads: Option<usize> = None;
    let mut stats = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--paper" => scale = Scale::Paper,
            "--stats" => stats = true,
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a value")))
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"))
            }
            "--threads" => {
                threads = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--threads needs an integer")),
                )
            }
            "all" => selected.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            "--help" | "-h" => usage(""),
            name if EXPERIMENTS.contains(&name) => selected.push(name.to_string()),
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if selected.is_empty() {
        usage("no experiment selected");
    }
    selected.dedup();

    std::fs::create_dir_all(&out_dir).expect("create output directory");

    println!(
        "# CFSF experiments ({} scale, seed {seed})\n",
        if scale == Scale::Paper {
            "paper"
        } else {
            "quick"
        }
    );
    let t0 = Instant::now();
    let ctx = ExperimentContext::new(scale, seed, threads);
    println!(
        "dataset: {} ({} ratings, density {:.2}%)\n",
        ctx.dataset.name,
        ctx.dataset.matrix.num_ratings(),
        ctx.dataset.matrix.density() * 100.0
    );

    let mut all_markdown = String::new();
    for name in &selected {
        let started = Instant::now();
        let output = run_experiment(name, &ctx);
        let elapsed = started.elapsed();
        let md = render(&output, elapsed);
        print!("{md}");
        all_markdown.push_str(&md);
        for (idx, table) in output.tables.iter().enumerate() {
            let suffix = if output.tables.len() > 1 {
                format!("_{idx}")
            } else {
                String::new()
            };
            let path = out_dir.join(format!("{}{suffix}.csv", output.id));
            std::fs::write(&path, table.to_csv()).expect("write CSV");
        }
    }
    std::fs::write(out_dir.join("summary.md"), &all_markdown).expect("write summary");
    println!(
        "\nwrote CSVs + summary.md to {} ({:.1}s total)",
        out_dir.display(),
        t0.elapsed().as_secs_f64()
    );

    if stats {
        let path = out_dir.join("obs_snapshot.json");
        cf_obs::write_snapshot_file(&path).expect("write stats snapshot");
        print!("{}", cf_obs::global().snapshot().to_json());
        println!("stats snapshot written to {}", path.display());
    }
}

fn run_experiment(name: &str, ctx: &ExperimentContext) -> ExperimentOutput {
    match name {
        "table1" => tables::table1(ctx),
        "table2" => tables::table2(ctx),
        "table3" => tables::table3(ctx),
        "fig2" => sweeps::fig2_m(ctx),
        "fig3" => sweeps::fig3_k(ctx),
        "fig4" => sweeps::fig4_c(ctx),
        "fig5" => scalability::fig5(ctx),
        "fig6" => sweeps::fig6_lambda(ctx),
        "fig7" => sweeps::fig7_delta(ctx),
        "fig8" => sweeps::fig8_w(ctx),
        "given" => sweeps::given_sweep(ctx),
        "ablations" => ablations::ablations(ctx),
        "tune" => tuning::tune(ctx),
        "topn" => extensions::topn(ctx),
        "temporal" => extensions::temporal(ctx),
        "incremental" => extensions::incremental(ctx),
        "coldstart" => extensions::coldstart(ctx),
        "variance" => extensions::variance(ctx),
        "crossval" => extensions::crossval(ctx),
        other => unreachable!("validated above: {other}"),
    }
}

fn render(output: &ExperimentOutput, elapsed: std::time::Duration) -> String {
    let mut md = String::new();
    md.push_str(&format!(
        "\n## {} ({:.1}s)\n\n",
        output.title,
        elapsed.as_secs_f64()
    ));
    for table in &output.tables {
        md.push_str(&table.to_markdown());
        md.push('\n');
    }
    for chart in &output.charts {
        md.push_str("```text\n");
        md.push_str(chart);
        md.push_str("```\n\n");
    }
    if !output.notes.is_empty() {
        md.push_str("Shape checks:\n");
        for note in &output.notes {
            md.push_str(&format!("- {note}\n"));
        }
        md.push('\n');
    }
    md
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}\n");
    }
    eprintln!(
        "usage: cfsf-experiments [EXPERIMENT..|all] [--quick|--paper] [--out DIR] [--seed N] [--threads N]\n\
         experiments: {}",
        EXPERIMENTS.join(", ")
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}
