//! # cf-eval — evaluation harness for the CFSF reproduction
//!
//! Everything needed to regenerate the paper's evaluation section:
//!
//! - [`metrics`] — MAE (Eq. 15), RMSE, coverage,
//! - [`timing`] — wall-clock measurement of the online phase (Fig. 5),
//! - [`table`] — markdown/CSV rendering of experiment outputs,
//! - [`experiments`] — one driver per paper table/figure (Table I–III,
//!   Fig. 2–8) plus the ablations DESIGN.md calls out,
//! - the `cfsf-experiments` binary that runs them
//!   (`cargo run --release -p cf-eval --bin cfsf-experiments -- all`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod experiments;
pub mod metrics;
pub mod ranking;
pub mod stats;
pub mod table;
pub mod timing;

pub use chart::{render_chart, Series};
pub use experiments::{ExperimentContext, Scale};
pub use metrics::{evaluate, evaluate_mae, evaluate_rmse, Evaluation};
pub use ranking::{evaluate_ranking, RankingEvaluation};
pub use stats::{absolute_errors, paired_t_test, PairedTTest};
pub use table::Table;
pub use timing::time_predictions;
