//! Hardened blocking-socket helpers shared by every TCP loop in the
//! workspace: the telemetry endpoint ([`crate::serve`]) and the sharded
//! request-serving tier (`cf-serve`).
//!
//! Three latent bugs lived in the original `serve.rs` socket loop, and
//! this module is their fix at the root so no copy of the loop can
//! re-inherit them:
//!
//! 1. **Nonblocking leak.** The accept listener runs nonblocking (so it
//!    can poll a stop flag), and on some platforms accepted streams
//!    inherit that mode — which makes `set_read_timeout` a no-op: every
//!    read returns `WouldBlock` immediately and the loop treats a
//!    perfectly healthy slow client as done. [`harden`] explicitly puts
//!    the stream back into blocking mode before arming the timeouts.
//! 2. **Timeout routed as a complete request.** A read timeout mid-head
//!    used to fall through to the router with whatever prefix had
//!    arrived. [`read_head`] reports [`HeadOutcome::TimedOut`] so the
//!    caller can answer `408` instead of serving a truncated request.
//! 3. **O(n²) terminator scan.** The `\r\n\r\n` search re-walked the
//!    whole buffer after every chunk. [`read_head`] keeps a scan offset
//!    and only examines new bytes (minus a 3-byte overlap for a
//!    terminator straddling a chunk boundary), so the scan is O(n)
//!    total no matter how finely a client drips bytes.

use std::io::Read;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The HTTP head terminator the incremental scan looks for.
const TERMINATOR: &[u8; 4] = b"\r\n\r\n";

/// How a head read over a hardened stream ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadOutcome {
    /// The `\r\n\r\n` terminator arrived; the value is the offset one
    /// past it (the head occupies `buf[..offset]`, any extra bytes after
    /// it belong to a body this server does not read).
    Complete(usize),
    /// The deadline expired before the terminator arrived. The buffer
    /// holds the partial head; the right answer is `408`, not routing.
    TimedOut,
    /// The buffer exceeded the caller's limit with no terminator; the
    /// right answer is `431`, not routing the oversized prefix.
    TooLarge,
    /// The peer closed the connection before the terminator. An empty
    /// buffer is a port probe; a non-empty one is a malformed request.
    Closed,
}

/// Puts an accepted stream into the known-good serving state: **blocking
/// mode** (accepted sockets can inherit the listener's nonblocking flag,
/// which silently disarms read timeouts) with `timeout` armed for both
/// reads and writes.
pub fn harden(stream: &TcpStream, timeout: Duration) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    Ok(())
}

/// `true` for the two kinds an armed read/write timeout surfaces as
/// (`WouldBlock` on Unix, `TimedOut` on Windows).
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads an HTTP request head (everything through `\r\n\r\n`) from a
/// [`harden`]ed stream into `buf`, returning how the read ended — the
/// caller maps each [`HeadOutcome`] to a response status instead of
/// guessing from buffer contents.
///
/// `deadline` bounds the *whole* head, not one read: a client dripping a
/// byte per socket-timeout tick makes progress on every read and would
/// otherwise hold the connection forever. Reads past `max_bytes` without
/// a terminator stop early with [`HeadOutcome::TooLarge`].
pub fn read_head(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    max_bytes: usize,
    deadline: Instant,
) -> std::io::Result<HeadOutcome> {
    let mut chunk = [0u8; 512];
    // Next scan starts here; backs up 3 bytes per chunk so a terminator
    // split across chunks is still seen exactly once.
    let mut scan_from = 0usize;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(HeadOutcome::Closed),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if let Some(off) = find_terminator(&buf[scan_from..]) {
                    return Ok(HeadOutcome::Complete(scan_from + off + TERMINATOR.len()));
                }
                if buf.len() > max_bytes {
                    return Ok(HeadOutcome::TooLarge);
                }
                scan_from = buf.len().saturating_sub(TERMINATOR.len() - 1);
                if Instant::now() >= deadline {
                    return Ok(HeadOutcome::TimedOut);
                }
            }
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    return Ok(HeadOutcome::TimedOut);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Offset of the first `\r\n\r\n` in `tail`, if present.
fn find_terminator(tail: &[u8]) -> Option<usize> {
    tail.windows(TERMINATOR.len()).position(|w| w == TERMINATOR)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn complete_head_reports_terminator_offset() {
        let (mut client, mut server) = pair();
        harden(&server, Duration::from_millis(200)).unwrap();
        client
            .write_all(b"GET / HTTP/1.1\r\n\r\nbodybytes")
            .unwrap();
        let mut buf = Vec::new();
        let out = read_head(
            &mut server,
            &mut buf,
            8192,
            Instant::now() + Duration::from_secs(1),
        )
        .unwrap();
        assert_eq!(out, HeadOutcome::Complete(18));
        assert!(buf.starts_with(b"GET / HTTP/1.1\r\n\r\n"));
    }

    #[test]
    fn terminator_straddling_chunks_is_found_once() {
        // Force the terminator across the 512-byte chunk boundary.
        let (mut client, mut server) = pair();
        harden(&server, Duration::from_millis(200)).unwrap();
        let mut req = b"GET /".to_vec();
        req.resize(510, b'x'); // head so far: 510 bytes, no terminator
        req.extend_from_slice(b"\r\n\r\n");
        client.write_all(&req).unwrap();
        let mut buf = Vec::new();
        let out = read_head(
            &mut server,
            &mut buf,
            8192,
            Instant::now() + Duration::from_secs(1),
        )
        .unwrap();
        assert_eq!(out, HeadOutcome::Complete(514));
    }

    #[test]
    fn stalled_partial_head_times_out() {
        let (mut client, mut server) = pair();
        harden(&server, Duration::from_millis(50)).unwrap();
        client.write_all(b"GET /metr").unwrap();
        let mut buf = Vec::new();
        let out = read_head(
            &mut server,
            &mut buf,
            8192,
            Instant::now() + Duration::from_millis(150),
        )
        .unwrap();
        assert_eq!(out, HeadOutcome::TimedOut);
        assert_eq!(buf, b"GET /metr");
    }

    #[test]
    fn oversized_head_is_rejected() {
        let (mut client, mut server) = pair();
        harden(&server, Duration::from_millis(200)).unwrap();
        let big = vec![b'A'; 4096];
        client.write_all(&big).unwrap();
        let mut buf = Vec::new();
        let out = read_head(
            &mut server,
            &mut buf,
            1024,
            Instant::now() + Duration::from_secs(1),
        )
        .unwrap();
        assert_eq!(out, HeadOutcome::TooLarge);
    }

    #[test]
    fn clean_close_is_reported() {
        let (client, mut server) = pair();
        harden(&server, Duration::from_millis(200)).unwrap();
        drop(client);
        let mut buf = Vec::new();
        let out = read_head(
            &mut server,
            &mut buf,
            8192,
            Instant::now() + Duration::from_secs(1),
        )
        .unwrap();
        assert_eq!(out, HeadOutcome::Closed);
        assert!(buf.is_empty());
    }
}
