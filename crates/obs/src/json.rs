//! A tiny hand-rolled JSON writer.
//!
//! The workspace resolves dependencies offline, so `cf-obs` cannot pull in
//! `serde_json`; snapshots only ever serialize a flat tree of maps, numbers
//! and strings, which this covers in full. Output is pretty-printed with
//! two-space indentation and `": "` key separators so snapshot files stay
//! diffable in `results/`.

/// Incremental pretty-printing JSON writer.
///
/// Usage is strictly sequential: `begin_object` / `key` / value /
/// `end_object`, then [`Writer::finish`]. The writer tracks nesting depth
/// and whether a comma is needed; it does not validate that the caller
/// produces well-formed JSON beyond that.
pub struct Writer {
    out: String,
    depth: usize,
    /// True when the next `key`/value at this level must be preceded by a comma.
    need_comma: bool,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer {
            out: String::new(),
            depth: 0,
            need_comma: false,
        }
    }

    fn indent(&mut self) {
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }

    /// Opens a `{`. Valid at the top level or directly after a `key`.
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.depth += 1;
        self.need_comma = false;
    }

    /// Closes the innermost `{`.
    pub fn end_object(&mut self) {
        self.depth -= 1;
        if self.need_comma {
            // The object had at least one member; close on a fresh line.
            self.out.push('\n');
            self.indent();
        }
        self.out.push('}');
        self.need_comma = true;
    }

    /// Opens a `[`. Valid at the top level or directly after a `key`.
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.depth += 1;
        self.need_comma = false;
    }

    /// Closes the innermost `[`.
    pub fn end_array(&mut self) {
        self.depth -= 1;
        if self.need_comma {
            self.out.push('\n');
            self.indent();
        }
        self.out.push(']');
        self.need_comma = true;
    }

    /// Starts the next array element (comma / newline / indent
    /// bookkeeping). Call before each element value inside an array.
    pub fn elem(&mut self) {
        if self.need_comma {
            self.out.push(',');
        }
        self.out.push('\n');
        self.indent();
        self.need_comma = false;
    }

    /// Writes `"key": ` (escaped), handling commas and newlines.
    pub fn key(&mut self, k: &str) {
        if self.need_comma {
            self.out.push(',');
        }
        self.out.push('\n');
        self.indent();
        self.string_raw(k);
        self.out.push_str(": ");
        self.need_comma = false;
    }

    /// Writes an unsigned integer value.
    pub fn number_u64(&mut self, v: u64) {
        self.out.push_str(&v.to_string());
        self.need_comma = true;
    }

    /// Writes a signed integer value.
    pub fn number_i64(&mut self, v: i64) {
        self.out.push_str(&v.to_string());
        self.need_comma = true;
    }

    /// Writes a float value; non-finite floats become `null` (JSON has no
    /// NaN/Inf), and integral floats keep a `.0` so the type is stable.
    pub fn number_f64(&mut self, v: f64) {
        if v.is_finite() {
            let s = format!("{v}");
            self.out.push_str(&s);
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                self.out.push_str(".0");
            }
        } else {
            self.out.push_str("null");
        }
        self.need_comma = true;
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.out.push_str(if v { "true" } else { "false" });
        self.need_comma = true;
    }

    /// Writes a literal `null`.
    pub fn null(&mut self) {
        self.out.push_str("null");
        self.need_comma = true;
    }

    /// Writes a string value with escaping.
    pub fn string(&mut self, v: &str) {
        self.string_raw(v);
        self.need_comma = true;
    }

    /// Splices pre-rendered JSON verbatim in value position. The caller
    /// owns well-formedness of the fragment; leading/trailing whitespace
    /// is trimmed so nested pretty output stays tidy.
    pub fn raw(&mut self, v: &str) {
        self.out.push_str(v.trim());
        self.need_comma = true;
    }

    fn string_raw(&mut self, v: &str) {
        self.out.push('"');
        for c in v.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Terminates the document with a trailing newline and returns it.
    pub fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_nested_objects_with_escaping() {
        let mut w = Writer::new();
        w.begin_object();
        w.key("counters");
        w.begin_object();
        w.key("a\"b");
        w.number_u64(3);
        w.key("neg");
        w.number_i64(-7);
        w.end_object();
        w.key("mean");
        w.number_f64(2.0);
        w.key("note");
        w.string("line1\nline2");
        w.end_object();
        let s = w.finish();
        assert!(s.contains("\"a\\\"b\": 3"), "{s}");
        assert!(s.contains("\"neg\": -7"), "{s}");
        assert!(s.contains("\"mean\": 2.0"), "{s}");
        assert!(s.contains("\"note\": \"line1\\nline2\""), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn arrays_bools_and_nulls_round_out_the_grammar() {
        let mut w = Writer::new();
        w.begin_object();
        w.key("shards");
        w.begin_array();
        w.elem();
        w.begin_object();
        w.key("up");
        w.bool(true);
        w.end_object();
        w.elem();
        w.null();
        w.end_array();
        w.key("empty");
        w.begin_array();
        w.end_array();
        w.end_object();
        let s = w.finish();
        assert!(s.contains("\"up\": true"), "{s}");
        assert!(s.contains("},\n"), "{s}");
        assert!(s.contains("null\n"), "{s}");
        assert!(s.contains("\"empty\": []"), "{s}");
    }

    #[test]
    fn empty_object_is_compact() {
        let mut w = Writer::new();
        w.begin_object();
        w.end_object();
        assert_eq!(w.finish(), "{}\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = Writer::new();
        w.begin_object();
        w.key("bad");
        w.number_f64(f64::NAN);
        w.end_object();
        assert!(w.finish().contains("\"bad\": null"));
    }
}
