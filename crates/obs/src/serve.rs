//! Std-only live telemetry endpoint (`std::net::TcpListener`, no deps).
//!
//! [`MetricsServer::bind`] spawns one background thread that serves
//! `GET` requests:
//!
//! - `/metrics` — Prometheus text format ([`crate::prom`]), derived
//!   gauges refreshed just before rendering,
//! - `/stats.json` — the existing JSON snapshot, dotted names intact,
//! - `/traces` — the captured slow / degraded / head-sampled traces as
//!   indented span trees ([`crate::trace::render`]),
//! - `/` — a plain-text index of the above.
//!
//! The listener runs nonblocking with a short sleep so the server can
//! notice the stop flag; dropping the handle shuts the thread down and
//! joins it. One connection is served at a time — this is an operator
//! scrape endpoint (Prometheus polls every few seconds), not a serving
//! path, so simplicity beats concurrency here.
//!
//! Accepted streams go through [`crate::net::harden`] (back to blocking
//! mode, timeouts armed) and the head is read by
//! [`crate::net::read_head`]: a stalled client gets `408`, an oversized
//! head gets `431`, and a head cut off by the peer gets `400` — a
//! truncated or overlong prefix is never routed as if it were a
//! complete request. Every answered request increments
//! `obs.serve.requests` plus a per-status `obs.serve.responses.*`
//! counter, so the 2xx/4xx/5xx split stays consistent with the error
//! paths.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::net::HeadOutcome;
use crate::sync::RecoverMutex;

/// Extra scrape content spliced into the endpoint payloads. The fleet
/// aggregator in `cf-serve` implements this so the router's `/metrics`
/// and `/stats.json` carry per-shard and merged fleet series without
/// `cf_obs` knowing anything about routers.
pub trait ScrapeExtra: Send + Sync {
    /// Extra Prometheus text appended to `/metrics`. Lines must be
    /// complete (`\n`-terminated) series in the exposition format.
    fn prometheus(&self) -> String {
        String::new()
    }

    /// Extra top-level `/stats.json` sections as `(key, raw JSON value)`
    /// pairs, spliced after the standard sections.
    fn stats_sections(&self) -> Vec<(String, String)> {
        Vec::new()
    }
}

fn extra_slot() -> &'static RecoverMutex<Option<Arc<dyn ScrapeExtra>>> {
    static EXTRA: OnceLock<RecoverMutex<Option<Arc<dyn ScrapeExtra>>>> = OnceLock::new();
    EXTRA.get_or_init(|| RecoverMutex::new(None))
}

/// Installs (or replaces) the process-wide scrape extension.
pub fn set_scrape_extra(extra: Arc<dyn ScrapeExtra>) {
    *extra_slot().lock() = Some(extra);
}

/// Removes the scrape extension (tests / shutdown).
pub fn clear_scrape_extra() {
    *extra_slot().lock() = None;
}

fn scrape_extra() -> Option<Arc<dyn ScrapeExtra>> {
    extra_slot().lock().clone()
}

/// How long the accept loop sleeps between polls of the stop flag.
const POLL: Duration = Duration::from_millis(25);
/// Per-read/write socket timeout — a stalled scraper must not wedge the
/// server thread.
const IO_TIMEOUT: Duration = Duration::from_millis(500);
/// Overall budget for one request head. Distinct from [`IO_TIMEOUT`]: a
/// client dripping a byte per tick resets the socket timeout every read
/// and would otherwise hold the connection forever.
const HEAD_DEADLINE: Duration = Duration::from_millis(1000);
/// Request heads beyond this are answered `431`, never routed.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Handle to a running telemetry server; dropping it stops the thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9898"`; port `0` picks a free one
    /// — read it back via [`local_addr`](Self::local_addr)) and starts
    /// serving in a background thread.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("cf-obs-serve".into())
            .spawn(move || accept_loop(listener, &stop_flag))?;
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The actually-bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the server thread to stop and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // One slow or malformed client must not take the
                // endpoint down; errors are counted, not propagated.
                if serve_connection(stream).is_err() {
                    crate::counter!("obs.serve.conn_errors").inc();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => {
                crate::counter!("obs.serve.accept_errors").inc();
                std::thread::sleep(POLL);
            }
        }
    }
}

fn serve_connection(mut stream: TcpStream) -> std::io::Result<()> {
    // Accepted streams can inherit the listener's nonblocking mode, which
    // would make the timeouts below no-ops; harden() pins the stream to
    // blocking + timed-out before the first read.
    crate::net::harden(&stream, IO_TIMEOUT)?;

    let mut buf = Vec::with_capacity(512);
    let outcome = crate::net::read_head(
        &mut stream,
        &mut buf,
        MAX_REQUEST_BYTES,
        Instant::now() + HEAD_DEADLINE,
    )?;

    let mut head_only = false;
    let (status, content_type, body) = match outcome {
        HeadOutcome::Complete(_) => {
            let head = String::from_utf8_lossy(&buf);
            let mut parts = head.lines().next().unwrap_or("").split_whitespace();
            let method = parts.next().unwrap_or("");
            let path = parts.next().unwrap_or("");
            head_only = method == "HEAD";
            // Self-metrics: the telemetry plane watches its own scrape
            // cost, so an expensive fleet aggregation shows up here.
            let scrape_started = Instant::now();
            let routed = route(method, path);
            crate::histogram!("obs.serve.scrape_ns").record_duration(scrape_started.elapsed());
            routed
        }
        HeadOutcome::TimedOut => (
            "408 Request Timeout",
            "text/plain; charset=utf-8",
            "request head did not complete in time\n".into(),
        ),
        HeadOutcome::TooLarge => (
            "431 Request Header Fields Too Large",
            "text/plain; charset=utf-8",
            "request head exceeds the size limit\n".into(),
        ),
        HeadOutcome::Closed => {
            if buf.is_empty() {
                // Port probe / liveness check: connect then close, no
                // bytes. Not a request — nothing to count or answer.
                return Ok(());
            }
            (
                "400 Bad Request",
                "text/plain; charset=utf-8",
                "connection closed before the request head completed\n".into(),
            )
        }
    };
    // Error responses are requests too: the counter and the per-status
    // breakdown must agree with what clients actually received.
    crate::counter!("obs.serve.requests").inc();
    record_response_status(status);

    let mut response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if !head_only {
        response.push_str(&body);
    }
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Per-status response counters. One literal `counter!` site per status:
/// the macro caches its handle per call site, so a single dynamic-name
/// site would bind every status to whichever fired first.
fn record_response_status(status: &str) {
    match status.get(..3).unwrap_or("") {
        "200" => crate::counter!("obs.serve.responses.200").inc(),
        "400" => crate::counter!("obs.serve.responses.400").inc(),
        "404" => crate::counter!("obs.serve.responses.404").inc(),
        "405" => crate::counter!("obs.serve.responses.405").inc(),
        "408" => crate::counter!("obs.serve.responses.408").inc(),
        "431" => crate::counter!("obs.serve.responses.431").inc(),
        _ => crate::counter!("obs.serve.responses.other").inc(),
    }
}

fn route(method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" && method != "HEAD" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            crate::counter!("obs.serve.endpoint.metrics").inc();
            // One snapshot pass: the derived gauges are recomputed from
            // exactly the counters this scrape renders.
            let snap = crate::quality::coherent_snapshot();
            let mut body = crate::prom::render_prometheus(&snap);
            if let Some(extra) = scrape_extra() {
                body.push_str(&extra.prometheus());
            }
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
        }
        "/stats.json" => {
            crate::counter!("obs.serve.endpoint.stats_json").inc();
            let snap = crate::quality::coherent_snapshot();
            let sections = scrape_extra()
                .map(|extra| extra.stats_sections())
                .unwrap_or_default();
            let refs: Vec<(&str, &str)> = sections
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            (
                "200 OK",
                "application/json; charset=utf-8",
                snap.to_json_with(&refs),
            )
        }
        "/traces" => {
            crate::counter!("obs.serve.endpoint.traces").inc();
            (
                "200 OK",
                "text/plain; charset=utf-8",
                crate::trace::render_current(),
            )
        }
        "/" => {
            crate::counter!("obs.serve.endpoint.index").inc();
            (
                "200 OK",
                "text/plain; charset=utf-8",
                "cfsf telemetry\n\n/metrics     Prometheus text format\n/stats.json  JSON snapshot\n/traces      captured request traces\n"
                    .into(),
            )
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Read};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("write");
        let mut reader = std::io::BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).expect("status line");
        let mut line = String::new();
        let mut content_len = 0usize;
        loop {
            line.clear();
            reader.read_line(&mut line).expect("header");
            let trimmed = line.trim();
            if trimmed.is_empty() {
                break;
            }
            if let Some(v) = trimmed
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .and_then(|v| v.parse().ok())
            {
                content_len = v;
            }
        }
        let mut body = vec![0u8; content_len];
        reader.read_exact(&mut body).expect("body");
        (
            status.trim().to_string(),
            String::from_utf8(body).expect("utf8"),
        )
    }

    #[test]
    fn serves_metrics_stats_and_traces() {
        crate::counter!("serve_test.counter").add(5);
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("cfsf_serve_test_counter_total 5"), "{body}");

        let (status, body) = get(addr, "/stats.json");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"serve_test.counter\": 5"), "{body}");

        let (status, _body) = get(addr, "/traces");
        assert!(status.contains("200"), "{status}");

        let (status, _) = get(addr, "/nope");
        assert!(status.contains("404"), "{status}");

        server.shutdown();
    }

    #[test]
    fn scrape_self_metrics_and_extra_sections_are_served() {
        struct Fleet;
        impl ScrapeExtra for Fleet {
            fn prometheus(&self) -> String {
                "cfsf_fleet_demo{shard=\"0\"} 1\n".to_string()
            }
            fn stats_sections(&self) -> Vec<(String, String)> {
                vec![("fleet".to_string(), "{\"shards\": 2}".to_string())]
            }
        }
        set_scrape_extra(Arc::new(Fleet));
        let server = MetricsServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("cfsf_fleet_demo{shard=\"0\"} 1"), "{body}");

        let (_, body) = get(addr, "/stats.json");
        assert!(body.contains("\"fleet\": {\"shards\": 2}"), "{body}");

        // The first scrape recorded its own duration and endpoint hit,
        // so the second scrape must show the telemetry self-metrics.
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("cfsf_obs_serve_scrape_ns"), "{body}");
        assert!(
            body.contains("cfsf_obs_serve_endpoint_metrics_total"),
            "{body}"
        );

        clear_scrape_extra();
        server.shutdown();
    }
}
