//! Declared service-level objectives with multi-window error-budget
//! burn rates.
//!
//! An SLO here is a *budgeted bad-event ratio*: "p999 ≤ X ms" is
//! expressed as "at most 1‰ of requests may be slower than X ms", and
//! "degrade rate ≤ Y‰" as "at most Y‰ of predictions may be served from
//! the ladder's fallback region". Both reduce to a pair of cumulative
//! monotone quantities — bad events and total events — that the
//! mergeable snapshot form ([`MergeSnapshot`]) carries exactly, which is
//! what makes the math fleet-safe: the router evaluates objectives over
//! the *merged* histograms, so a shard cannot hide a tail by being small.
//!
//! Bad-event counts for latency objectives come from the log-bucket
//! histogram via [`HistogramBuckets::count_over`]: because bucket
//! boundaries are deterministic and shared fleet-wide, the "slower than
//! X" count after a merge equals the sum of the per-shard counts —
//! no re-binning error.
//!
//! **Burn rate** follows the SRE convention: the observed bad-event
//! ratio over a trailing window divided by the budgeted ratio. Burn 1.0
//! (gauged as 1000 milli) means the budget is being consumed exactly at
//! the sustainable pace; 14 means a page. The engine keeps a bounded
//! ring of cumulative ticks and differences them per window, so rates
//! need no per-request storage — two scrapes of mergeable counters are
//! enough.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crate::merge::MergeSnapshot;

/// Default burn-rate windows: 1 minute, 5 minutes, 1 hour.
pub const DEFAULT_WINDOWS: [Duration; 3] = [
    Duration::from_secs(60),
    Duration::from_secs(300),
    Duration::from_secs(3600),
];

/// Upper bound on retained ticks; beyond it the oldest are dropped.
const MAX_TICKS: usize = 4096;

/// What counts as a bad event for one objective.
#[derive(Debug, Clone)]
pub enum SloKind {
    /// Samples of `histogram` above `max_ns` are bad; at most
    /// `budget_pm` per mille of samples may be bad. "p999 ≤ X" is
    /// `budget_pm: 1`.
    Latency {
        /// Histogram name in the (merged) snapshot.
        histogram: String,
        /// Threshold in nanoseconds.
        max_ns: u64,
        /// Budgeted bad ratio, per mille.
        budget_pm: u32,
    },
    /// `bad` counters (summed) over `total` counters (summed) must stay
    /// within `budget_pm` per mille.
    Ratio {
        /// Counter names whose sum is the bad-event count.
        bad: Vec<String>,
        /// Counter names whose sum is the total-event count.
        total: Vec<String>,
        /// Budgeted bad ratio, per mille.
        budget_pm: u32,
    },
}

impl SloKind {
    /// The objective's budgeted bad ratio in per mille.
    pub fn budget_pm(&self) -> u32 {
        match self {
            SloKind::Latency { budget_pm, .. } | SloKind::Ratio { budget_pm, .. } => *budget_pm,
        }
    }
}

/// One declared objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Stable snake_case name, used in gauge names and the report.
    pub name: String,
    /// The objective's bad-event definition and budget.
    pub kind: SloKind,
}

/// The default serving objectives: request p999 ≤ `p999_max_ms`
/// (expressed as ≤1‰ of requests slower than the threshold) and a
/// degrade-to-fallback rate ≤ `degrade_budget_pm`.
pub fn serving_slos(p999_max_ms: u64, degrade_budget_pm: u32) -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "latency_p999".to_string(),
            kind: SloKind::Latency {
                histogram: crate::trace::REQUEST_HISTOGRAM.to_string(),
                max_ns: p999_max_ms.saturating_mul(1_000_000),
                budget_pm: 1,
            },
        },
        SloSpec {
            name: "degrade_rate".to_string(),
            kind: SloKind::Ratio {
                bad: crate::quality::FALLBACK_RUNGS
                    .iter()
                    .map(|r| format!("online.degrade.{r}"))
                    .collect(),
                total: crate::quality::RUNGS
                    .iter()
                    .map(|r| format!("online.degrade.{r}"))
                    .collect(),
                budget_pm: degrade_budget_pm,
            },
        },
    ]
}

/// Cumulative (bad, total) extracted from one snapshot for one spec.
#[derive(Debug, Clone, Copy, Default)]
struct CumSample {
    bad: u64,
    total: u64,
}

#[derive(Debug)]
struct Tick {
    at: Instant,
    samples: Vec<CumSample>,
}

/// Evaluates a set of [`SloSpec`]s against a stream of cumulative
/// mergeable snapshots, producing burn-rate gauges and a JSON report.
/// Callers pass `now` explicitly so evaluation is deterministic in tests
/// and the engine never reads the clock itself.
pub struct SloEngine {
    specs: Vec<SloSpec>,
    windows: Vec<Duration>,
    history: VecDeque<Tick>,
}

fn window_label(w: Duration) -> String {
    let s = w.as_secs();
    if s >= 3600 && s.is_multiple_of(3600) {
        format!("{}h", s / 3600)
    } else if s >= 60 && s.is_multiple_of(60) {
        format!("{}m", s / 60)
    } else {
        format!("{s}s")
    }
}

fn extract(spec: &SloSpec, snap: &MergeSnapshot) -> CumSample {
    match &spec.kind {
        SloKind::Latency {
            histogram, max_ns, ..
        } => match snap.histograms.get(histogram) {
            Some(h) => CumSample {
                bad: h.count_over(*max_ns),
                total: h.count,
            },
            None => CumSample::default(),
        },
        SloKind::Ratio { bad, total, .. } => {
            let sum = |names: &[String]| {
                names
                    .iter()
                    .map(|n| snap.counters.get(n).copied().unwrap_or(0))
                    .fold(0u64, u64::saturating_add)
            };
            CumSample {
                bad: sum(bad),
                total: sum(total),
            }
        }
    }
}

fn bad_pm(bad: u64, total: u64) -> i64 {
    if total == 0 {
        0
    } else {
        ((bad as f64 / total as f64) * 1000.0).round() as i64
    }
}

fn burn_milli(bad: u64, total: u64, budget_pm: u32) -> i64 {
    if total == 0 {
        return 0;
    }
    let ratio = bad as f64 / total as f64;
    let budget = budget_pm as f64 / 1000.0;
    if budget <= 0.0 {
        // A zero budget: any bad event is an infinite burn; clamp.
        return if bad > 0 { i64::MAX } else { 0 };
    }
    ((ratio / budget) * 1000.0).round().min(i64::MAX as f64) as i64
}

impl SloEngine {
    /// An engine over `specs`, computing burn rates for `windows`.
    pub fn new(specs: Vec<SloSpec>, windows: Vec<Duration>) -> Self {
        let mut windows = windows;
        windows.sort();
        windows.dedup();
        SloEngine {
            specs,
            windows,
            history: VecDeque::new(),
        }
    }

    /// The declared objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Records one cumulative snapshot taken at `now`. Call on every
    /// aggregator poll; storage is bounded (per-spec scalars per tick,
    /// pruned past the longest window).
    pub fn observe(&mut self, snap: &MergeSnapshot, now: Instant) {
        let samples = self.specs.iter().map(|s| extract(s, snap)).collect();
        self.history.push_back(Tick { at: now, samples });
        let horizon = self.windows.last().copied().unwrap_or(Duration::ZERO);
        // Keep exactly one tick at-or-past the horizon as the baseline
        // for the longest window; everything older is dead weight.
        while self.history.len() > 2 {
            let second_oldest_at = self.history[1].at;
            if now.saturating_duration_since(second_oldest_at) >= horizon {
                self.history.pop_front();
            } else {
                break;
            }
        }
        while self.history.len() > MAX_TICKS {
            self.history.pop_front();
        }
    }

    /// Burn-rate / budget gauges for every spec × window as of `now`:
    ///
    /// - `slo.<name>.burn_milli.<window>` — window burn rate × 1000
    ///   (1000 = consuming budget exactly at the sustainable pace),
    /// - `slo.<name>.bad_pm.<window>` — observed bad ratio per mille,
    /// - `slo.<name>.attainment_pm` — cumulative good ratio per mille,
    /// - `slo.<name>.budget_pm` — the declared budget (for dashboards).
    pub fn gauges(&self, now: Instant) -> Vec<(String, i64)> {
        let mut out = Vec::new();
        let Some(latest) = self.history.back() else {
            return out;
        };
        for (i, spec) in self.specs.iter().enumerate() {
            let budget = spec.kind.budget_pm();
            let cur = latest.samples.get(i).copied().unwrap_or_default();
            out.push((format!("slo.{}.budget_pm", spec.name), budget as i64));
            out.push((
                format!("slo.{}.attainment_pm", spec.name),
                1000 - bad_pm(cur.bad, cur.total),
            ));
            for &w in &self.windows {
                let label = window_label(w);
                let base = self.baseline(w, now);
                let base = base
                    .and_then(|t| t.samples.get(i).copied())
                    .unwrap_or_default();
                let db = cur.bad.saturating_sub(base.bad);
                let dt = cur.total.saturating_sub(base.total);
                out.push((format!("slo.{}.bad_pm.{label}", spec.name), bad_pm(db, dt)));
                out.push((
                    format!("slo.{}.burn_milli.{label}", spec.name),
                    burn_milli(db, dt, budget),
                ));
            }
        }
        out
    }

    /// The newest tick old enough to cover window `w`. `None` when
    /// uptime is shorter than the window — callers use a zero baseline
    /// then, because every cumulative event so far happened inside it.
    fn baseline(&self, w: Duration, now: Instant) -> Option<&Tick> {
        self.history
            .iter()
            .rev()
            .find(|t| now.saturating_duration_since(t.at) >= w)
    }

    /// Writes the current gauges into the global registry so they appear
    /// on `/metrics` next to everything else.
    pub fn publish(&self, now: Instant) {
        for (name, v) in self.gauges(now) {
            crate::global().gauge(&name).set(v);
        }
    }

    /// Renders the full SLO report as JSON — the `BENCH_slo.json`
    /// payload the router's `--slo-report` path dumps.
    pub fn report_json(&self, now: Instant) -> String {
        let mut w = crate::json::Writer::new();
        w.begin_object();
        w.key("version");
        w.number_u64(1);
        w.key("windows");
        w.begin_object();
        for &win in &self.windows {
            w.key(&window_label(win));
            w.number_u64(win.as_secs());
        }
        w.end_object();
        w.key("objectives");
        w.begin_object();
        let latest = self.history.back();
        for (i, spec) in self.specs.iter().enumerate() {
            w.key(&spec.name);
            w.begin_object();
            w.key("kind");
            match &spec.kind {
                SloKind::Latency {
                    histogram, max_ns, ..
                } => {
                    w.string("latency");
                    w.key("histogram");
                    w.string(histogram);
                    w.key("max_ns");
                    w.number_u64(*max_ns);
                }
                SloKind::Ratio { bad, total, .. } => {
                    w.string("ratio");
                    w.key("bad_counters");
                    w.number_u64(bad.len() as u64);
                    w.key("total_counters");
                    w.number_u64(total.len() as u64);
                }
            }
            w.key("budget_pm");
            w.number_u64(spec.kind.budget_pm() as u64);
            let cur = latest
                .and_then(|t| t.samples.get(i).copied())
                .unwrap_or_default();
            w.key("cumulative");
            w.begin_object();
            w.key("bad");
            w.number_u64(cur.bad);
            w.key("total");
            w.number_u64(cur.total);
            w.key("bad_pm");
            w.number_i64(bad_pm(cur.bad, cur.total));
            w.key("attainment_pm");
            w.number_i64(1000 - bad_pm(cur.bad, cur.total));
            w.end_object();
            w.key("burn");
            w.begin_object();
            for &win in &self.windows {
                let base = self
                    .baseline(win, now)
                    .and_then(|t| t.samples.get(i).copied())
                    .unwrap_or_default();
                let db = cur.bad.saturating_sub(base.bad);
                let dt = cur.total.saturating_sub(base.total);
                w.key(&window_label(win));
                w.begin_object();
                w.key("bad_pm");
                w.number_i64(bad_pm(db, dt));
                w.key("burn_milli");
                w.number_i64(burn_milli(db, dt, spec.kind.budget_pm()));
                w.end_object();
            }
            w.end_object();
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn latency_spec(max_ns: u64, budget_pm: u32) -> SloSpec {
        SloSpec {
            name: "lat".to_string(),
            kind: SloKind::Latency {
                histogram: "req_ns".to_string(),
                max_ns,
                budget_pm,
            },
        }
    }

    fn snap_with_latencies(values: &[u64]) -> MergeSnapshot {
        let reg = Registry::new();
        let h = reg.histogram("req_ns");
        for &v in values {
            h.record(v);
        }
        MergeSnapshot::of(&reg)
    }

    #[test]
    fn burn_rate_reflects_window_deltas_not_cumulative_totals() {
        let mut eng = SloEngine::new(
            vec![latency_spec(1_000_000, 10)], // ≤1ms for 99%: budget 10‰
            vec![Duration::from_secs(60)],
        );
        let t0 = Instant::now();
        // First minute: all fast.
        eng.observe(&snap_with_latencies(&[100_000; 100]), t0);
        // Second minute: 100 more requests, 50 of them slow.
        let mut vals = vec![100_000u64; 50];
        vals.extend([100_000; 100]);
        vals.extend([50_000_000u64; 50]);
        let t1 = t0 + Duration::from_secs(60);
        eng.observe(&snap_with_latencies(&vals), t1);

        let g: std::collections::BTreeMap<String, i64> = eng.gauges(t1).into_iter().collect();
        // Window delta: 100 new requests, 50 bad → 500‰ bad, budget 10‰
        // → burn 50× → 50_000 milli.
        assert_eq!(g["slo.lat.bad_pm.1m"], 500);
        assert_eq!(g["slo.lat.burn_milli.1m"], 50_000);
        assert_eq!(g["slo.lat.budget_pm"], 10);
        // Cumulative: 50 bad of 200 → 250‰ → attainment 750‰.
        assert_eq!(g["slo.lat.attainment_pm"], 750);
    }

    #[test]
    fn zero_traffic_windows_burn_nothing() {
        let mut eng = SloEngine::new(vec![latency_spec(1_000, 1)], vec![Duration::from_secs(60)]);
        let t0 = Instant::now();
        eng.observe(&snap_with_latencies(&[]), t0);
        let g: std::collections::BTreeMap<String, i64> = eng
            .gauges(t0 + Duration::from_secs(120))
            .into_iter()
            .collect();
        assert_eq!(g["slo.lat.burn_milli.1m"], 0);
        assert_eq!(g["slo.lat.attainment_pm"], 1000);
    }

    #[test]
    fn ratio_objective_sums_counters() {
        let reg = Registry::new();
        reg.counter("deg.bad").add(5);
        reg.counter("deg.ok").add(95);
        let snap = MergeSnapshot::of(&reg);
        let mut eng = SloEngine::new(
            vec![SloSpec {
                name: "deg".to_string(),
                kind: SloKind::Ratio {
                    bad: vec!["deg.bad".to_string()],
                    total: vec!["deg.bad".to_string(), "deg.ok".to_string()],
                    budget_pm: 50,
                },
            }],
            vec![Duration::from_secs(60)],
        );
        let t0 = Instant::now();
        eng.observe(&snap, t0);
        let g: std::collections::BTreeMap<String, i64> = eng.gauges(t0).into_iter().collect();
        // 5 bad / 100 total = 50‰ = exactly the budget → burn 1000 milli.
        assert_eq!(g["slo.deg.bad_pm.1m"], 50);
        assert_eq!(g["slo.deg.burn_milli.1m"], 1000);
    }

    #[test]
    fn history_is_pruned_past_the_longest_window() {
        let mut eng = SloEngine::new(vec![latency_spec(1_000, 1)], vec![Duration::from_secs(60)]);
        let t0 = Instant::now();
        for i in 0..500 {
            eng.observe(&snap_with_latencies(&[10]), t0 + Duration::from_secs(i));
        }
        assert!(
            eng.history.len() < 70,
            "ticks past the horizon must be pruned, got {}",
            eng.history.len()
        );
    }

    #[test]
    fn report_json_names_objectives_windows_and_burn() {
        let mut eng = SloEngine::new(
            serving_slos(5, 100),
            vec![Duration::from_secs(60), Duration::from_secs(3600)],
        );
        let reg = Registry::new();
        reg.histogram(crate::trace::REQUEST_HISTOGRAM).record(1_000);
        reg.counter("online.degrade.full").add(10);
        reg.counter("online.degrade.global_mean").add(1);
        let t0 = Instant::now();
        eng.observe(&MergeSnapshot::of(&reg), t0);
        let json = eng.report_json(t0);
        for needle in [
            "\"latency_p999\"",
            "\"degrade_rate\"",
            "\"1m\"",
            "\"1h\"",
            "\"burn_milli\"",
            "\"attainment_pm\"",
            "\"budget_pm\": 100",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn publish_writes_gauges_into_the_global_registry() {
        let mut eng = SloEngine::new(vec![latency_spec(1_000_000, 1)], DEFAULT_WINDOWS.to_vec());
        let t0 = Instant::now();
        eng.observe(&snap_with_latencies(&[500, 700]), t0);
        eng.publish(t0);
        let snap = crate::global().snapshot();
        assert_eq!(snap.gauges["slo.lat.attainment_pm"], 1000);
        assert!(snap.gauges.contains_key("slo.lat.burn_milli.5m"));
    }
}
