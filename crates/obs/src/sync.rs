//! Synchronization shim: the one seam between production locking and the
//! `loom-lite` model checker.
//!
//! The serving stack leans on hand-rolled concurrent structures (the
//! sharded second-chance neighbor cache, the slow-trace reservoir, the
//! poisoned-shard self-reset). Stress tests cannot explore interleavings,
//! so the riskiest cores are written **generically over this module's
//! [`Shim`] trait**: production instantiates them with [`StdShim`] (plain
//! `std::sync` primitives, zero overhead), while `cf-analysis`
//! instantiates the *same logic* with scheduler-instrumented primitives
//! and exhaustively explores thread interleavings.
//!
//! Design constraints:
//!
//! - the API mirrors the narrow slice of `std::sync` the cores actually
//!   use — nothing speculative;
//! - poisoning is a first-class observable ([`ShimRwLock::read`] reports
//!   it instead of handing out a tainted guard) because the poisoned-shard
//!   self-reset is one of the model-checked behaviors;
//! - atomics take an explicit [`Ordering`] parameter (re-exported here so
//!   cores need no direct `std::sync::atomic` import): the std impl
//!   passes it straight through, while the checked shim *models* it —
//!   `Relaxed` loads may observe any value from a bounded store buffer of
//!   stale writes, and only `Acquire`/`Release`/`SeqCst` edges create
//!   happens-before. Counter/flag call sites say `Relaxed` and are now
//!   explored under the reorderings that ordering actually permits;
//! - [`ShimCell`] wraps plain (non-atomic) shared data. The std impl is
//!   an uncontended mutex access (this crate forbids `unsafe`, see
//!   [`StdCell`]); the checked shim tracks every access with a
//!   FastTrack-style happens-before race detector, so models can mark
//!   data whose safety argument is "the surrounding protocol serializes
//!   access" and have that argument machine-checked.
//!
//! [`RecoverMutex`] is also exported on its own as the repo's sanctioned
//! replacement for bare `std::sync::Mutex` in `crates/core`/`crates/obs`
//! (`cf-analysis` lint rule `bare-sync-prim`): its `lock()` recovers from
//! poisoning instead of panicking, so one panicking holder cannot
//! cascade into every later lock site.

use std::ops::{Deref, DerefMut};

pub use std::sync::atomic::Ordering;

/// Marker returned when a lock acquisition observed poison. The caller
/// decides the recovery policy (reset the data, recover the guard, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Poisoned;

/// Atomic boolean as the cores use it (second-chance reference bits).
pub trait ShimAtomicBool: Send + Sync + 'static {
    /// A fresh atomic holding `v`.
    fn new(v: bool) -> Self;
    /// Reads the value under `order`.
    fn load(&self, order: Ordering) -> bool;
    /// Writes the value under `order`.
    fn store(&self, v: bool, order: Ordering);
    /// Writes `v`, returning the previous value.
    fn swap(&self, v: bool, order: Ordering) -> bool;
}

/// Atomic `u64` as the cores use it (reservoir admission bar, logical
/// clocks in models).
pub trait ShimAtomicU64: Send + Sync + 'static {
    /// A fresh atomic holding `v`.
    fn new(v: u64) -> Self;
    /// Reads the value under `order`.
    fn load(&self, order: Ordering) -> u64;
    /// Writes the value under `order`.
    fn store(&self, v: u64, order: Ordering);
    /// Adds `v`, returning the previous value.
    fn fetch_add(&self, v: u64, order: Ordering) -> u64;
}

/// Plain shared data with *externally guaranteed* exclusivity: the
/// holder promises some protocol (a lock, an RCU epoch, single-writer
/// hand-off) serializes conflicting accesses. [`StdCell`] trusts the
/// promise at zero cost; the checked shim's `LLCell` verifies it with a
/// happens-before race detector and fails the model run on a violation.
pub trait ShimCell<T: Copy + Send + 'static>: Send + Sync {
    /// A fresh cell holding `v`.
    ///
    /// `#[track_caller]` so the checked shim can name the construction
    /// and access sites in race reports.
    #[track_caller]
    fn new(v: T) -> Self;
    /// Reads the value (a *plain* read — not atomic).
    #[track_caller]
    fn get(&self) -> T;
    /// Writes the value (a *plain* write — not atomic).
    #[track_caller]
    fn set(&self, v: T);
}

/// Mutual exclusion with poison *recovery* (never a poison panic).
pub trait ShimMutex<T: Send>: Send + Sync {
    /// The guard type; dereferences to the protected data.
    type Guard<'a>: DerefMut<Target = T>
    where
        Self: 'a,
        T: 'a;
    /// A fresh mutex protecting `value`.
    fn new(value: T) -> Self;
    /// Acquires the lock; a poisoned lock is recovered as-is (the data is
    /// assumed self-consistent or derived — the caller's contract).
    fn lock_recover(&self) -> Self::Guard<'_>;
}

/// Reader-writer lock with observable poisoning, matching the sharded
/// cache's recovery protocol: `read`/`write` *report* poison (no guard),
/// `write_recover` claims the lock regardless, `clear_poison` +
/// `is_poisoned` manage the flag, and `poison` is test/model
/// instrumentation simulating a panicking holder.
pub trait ShimRwLock<T: Send + Sync>: Send + Sync {
    /// Shared-access guard.
    type ReadGuard<'a>: Deref<Target = T>
    where
        Self: 'a,
        T: 'a;
    /// Exclusive-access guard.
    type WriteGuard<'a>: DerefMut<Target = T>
    where
        Self: 'a,
        T: 'a;
    /// A fresh lock protecting `value`.
    fn new(value: T) -> Self;
    /// Shared acquisition; `Err(Poisoned)` when a holder panicked (no
    /// guard is handed out — the caller runs its reset protocol).
    fn read(&self) -> Result<Self::ReadGuard<'_>, Poisoned>;
    /// Exclusive acquisition; `Err(Poisoned)` as for [`Self::read`].
    fn write(&self) -> Result<Self::WriteGuard<'_>, Poisoned>;
    /// Exclusive acquisition that ignores (but does not clear) poison —
    /// the reset path's re-entry point.
    fn write_recover(&self) -> Self::WriteGuard<'_>;
    /// Clears the poison flag.
    fn clear_poison(&self);
    /// Whether a holder panicked since the last [`Self::clear_poison`].
    fn is_poisoned(&self) -> bool;
    /// Instrumentation: poison the lock as a panicking writer would
    /// (tests and the model checker; never called on serving paths).
    fn poison(&self);
}

/// The family of synchronization primitives a schedulable core is generic
/// over. Production code uses [`StdShim`]; `cf-analysis` provides a
/// scheduler-instrumented implementation.
pub trait Shim: Send + Sync + 'static {
    /// Atomic boolean.
    type AtomicBool: ShimAtomicBool;
    /// Atomic `u64`.
    type AtomicU64: ShimAtomicU64;
    /// Mutex over `T`.
    type Mutex<T: Send + 'static>: ShimMutex<T>;
    /// Reader-writer lock over `T`.
    type RwLock<T: Send + Sync + 'static>: ShimRwLock<T>;
    /// Race-tracked plain data cell over `T`.
    type Cell<T: Copy + Send + 'static>: ShimCell<T>;
}

// --------------------------------------------------------------------------
// Std implementation
// --------------------------------------------------------------------------

/// The production [`Shim`]: plain `std::sync` primitives with relaxed
/// atomics and poison-recovering locks.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdShim;

impl ShimAtomicBool for std::sync::atomic::AtomicBool {
    fn new(v: bool) -> Self {
        Self::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> bool {
        self.load(order)
    }
    #[inline]
    fn store(&self, v: bool, order: Ordering) {
        self.store(v, order)
    }
    #[inline]
    fn swap(&self, v: bool, order: Ordering) -> bool {
        self.swap(v, order)
    }
}

impl ShimAtomicU64 for std::sync::atomic::AtomicU64 {
    fn new(v: u64) -> Self {
        Self::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        self.load(order)
    }
    #[inline]
    fn store(&self, v: u64, order: Ordering) {
        self.store(v, order)
    }
    #[inline]
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        self.fetch_add(v, order)
    }
}

/// Production [`ShimCell`]: an uncontended [`RecoverMutex`] access.
///
/// This crate is `#![forbid(unsafe_code)]`, so the loom-style "bare
/// `UnsafeCell`, the checker proved exclusivity" implementation is off
/// the table. The holder's protocol guarantees conflicting accesses are
/// serialized (verified under the checked shim's `LLCell` race
/// detector), which means this mutex is *never contended*: each access
/// costs one uncontended lock/unlock, not a queue. Cores that need a
/// truly free plain access on a proven-hot path should use an atomic
/// instead.
#[derive(Debug, Default)]
pub struct StdCell<T>(RecoverMutex<T>);

impl<T: Copy + Send + 'static> ShimCell<T> for StdCell<T> {
    fn new(v: T) -> Self {
        Self(RecoverMutex::new(v))
    }
    #[inline]
    fn get(&self) -> T {
        *self.0.lock()
    }
    #[inline]
    fn set(&self, v: T) {
        *self.0.lock() = v;
    }
}

/// A `std::sync::Mutex` whose `lock()` recovers from poisoning instead of
/// panicking. The repo-sanctioned mutex for derived/telemetry state in
/// `crates/core` and `crates/obs`: one panicking holder must not turn
/// every later lock site into a second panic.
#[derive(Debug, Default)]
pub struct RecoverMutex<T>(std::sync::Mutex<T>);

impl<T> RecoverMutex<T> {
    /// A fresh mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering the data as-is if a previous holder
    /// panicked. Callers protect data that is either self-consistent at
    /// every await-free step or purely derived (caches, telemetry).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Send> ShimMutex<T> for RecoverMutex<T> {
    type Guard<'a>
        = std::sync::MutexGuard<'a, T>
    where
        T: 'a;
    fn new(value: T) -> Self {
        Self::new(value)
    }
    fn lock_recover(&self) -> Self::Guard<'_> {
        self.lock()
    }
}

impl<T: Send + Sync> ShimRwLock<T> for std::sync::RwLock<T> {
    type ReadGuard<'a>
        = std::sync::RwLockReadGuard<'a, T>
    where
        T: 'a;
    type WriteGuard<'a>
        = std::sync::RwLockWriteGuard<'a, T>
    where
        T: 'a;

    fn new(value: T) -> Self {
        Self::new(value)
    }

    fn read(&self) -> Result<Self::ReadGuard<'_>, Poisoned> {
        self.read().map_err(|p| {
            drop(p); // release the tainted guard before reporting
            Poisoned
        })
    }

    fn write(&self) -> Result<Self::WriteGuard<'_>, Poisoned> {
        self.write().map_err(|p| {
            drop(p);
            Poisoned
        })
    }

    fn write_recover(&self) -> Self::WriteGuard<'_> {
        self.write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn clear_poison(&self) {
        self.clear_poison();
    }

    fn is_poisoned(&self) -> bool {
        self.is_poisoned()
    }

    fn poison(&self) {
        // Poison exactly as production would: panic while holding the
        // write lock. The unwind is contained here; the poison flag is
        // the only side effect. The closure captures only `&self`.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::panic::panic_any(PoisonToken);
        }));
        debug_assert!(result.is_err());
    }
}

/// Panic payload used by [`ShimRwLock::poison`] instrumentation, so panic
/// hooks can tell an intentional poison from a real failure.
pub struct PoisonToken;

impl Shim for StdShim {
    type AtomicBool = std::sync::atomic::AtomicBool;
    type AtomicU64 = std::sync::atomic::AtomicU64;
    type Mutex<T: Send + 'static> = RecoverMutex<T>;
    type RwLock<T: Send + Sync + 'static> = std::sync::RwLock<T>;
    type Cell<T: Copy + Send + 'static> = StdCell<T>;
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::RwLock;

    #[test]
    fn recover_mutex_survives_poisoning() {
        let m = RecoverMutex::new(7u32);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("holder dies");
        }));
        assert!(r.is_err());
        // lock() recovers the data instead of propagating the poison.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn std_rwlock_poison_protocol_round_trips() {
        let l: RwLock<u32> = ShimRwLock::new(3);
        assert!(ShimRwLock::read(&l).is_ok());
        ShimRwLock::poison(&l);
        assert!(ShimRwLock::is_poisoned(&l));
        assert!(ShimRwLock::read(&l).is_err());
        assert!(ShimRwLock::write(&l).is_err());
        // Recovery path: claim the lock regardless, repair, clear.
        {
            let mut g = l.write_recover();
            *g = 9;
        }
        ShimRwLock::clear_poison(&l);
        assert!(!ShimRwLock::is_poisoned(&l));
        assert_eq!(*ShimRwLock::read(&l).unwrap(), 9);
    }

    #[test]
    fn std_atomics_round_trip() {
        let b = <std::sync::atomic::AtomicBool as ShimAtomicBool>::new(false);
        assert!(!ShimAtomicBool::swap(&b, true, Ordering::Relaxed));
        assert!(ShimAtomicBool::load(&b, Ordering::Acquire));
        let u = <std::sync::atomic::AtomicU64 as ShimAtomicU64>::new(5);
        assert_eq!(ShimAtomicU64::fetch_add(&u, 2, Ordering::Relaxed), 5);
        assert_eq!(ShimAtomicU64::load(&u, Ordering::Relaxed), 7);
        ShimAtomicU64::store(&u, 1, Ordering::Release);
        assert_eq!(ShimAtomicU64::load(&u, Ordering::SeqCst), 1);
    }

    #[test]
    fn std_cell_round_trips() {
        let c: StdCell<(u64, u32)> = ShimCell::new((1, 2));
        assert_eq!(ShimCell::get(&c), (1, 2));
        ShimCell::set(&c, (3, 4));
        assert_eq!(ShimCell::get(&c), (3, 4));
    }
}
