//! Prometheus text-format (0.0.4) rendering of a registry [`Snapshot`].
//!
//! cf-obs metric names are dotted (`online.predict_ns`) and stay dotted
//! in JSON snapshots; Prometheus requires `[a-zA-Z_:][a-zA-Z0-9_:]*`, so
//! the exporter normalizes on the way out: dots (and any other invalid
//! byte) become underscores and every series gains a `cfsf_` prefix —
//! `online.predict_ns` exports as `cfsf_online_predict_ns`. Label values
//! are escaped per the exposition format (`\\`, `\"`, `\n`) and
//! [`unescape_label_value`] inverts the escaping exactly (round-trip
//! tested).
//!
//! Mapping:
//! - counters → `# TYPE <name>_total counter`,
//! - gauges → `# TYPE <name> gauge`,
//! - histograms → `# TYPE <name> summary` with `quantile` labels for
//!   min/p50/p95/p99/p999/max plus `_sum` and `_count` (the histogram stores
//!   log buckets, not cumulative `le` buckets, so a summary is the
//!   honest translation),
//! - trace exemplars ([`crate::trace::exemplars`]) → a
//!   `cfsf_trace_exemplar` gauge family labelled with the source metric,
//!   value octave and trace id, linking latency buckets to captured
//!   traces the `/traces` endpoint can show.

use crate::trace;
use crate::Snapshot;
use std::fmt::Write;

/// Converts a dotted cf-obs metric name into a Prometheus-safe one:
/// every byte outside `[a-zA-Z0-9_:]` becomes `_`, and the result is
/// prefixed with `cfsf_` (which also fixes leading digits).
pub fn normalize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("cfsf_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the Prometheus exposition format:
/// backslash, double quote and newline get backslash-escaped.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Inverts [`escape_label_value`]. Unknown escape sequences are kept
/// verbatim (backslash included) rather than dropped.
pub fn unescape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn write_f64(out: &mut String, v: f64) {
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{v:.0}");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Formats one labeled series line, normalizing the metric name and
/// escaping every label value — the helper the fleet aggregator renders
/// per-shard series with (`cfsf_fleet_x{shard="3"} 7`).
pub fn format_series(name: &str, labels: &[(&str, &str)], value: u64) -> String {
    let mut out = normalize_metric_name(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
        }
        out.push('}');
    }
    let _ = write!(out, " {value}");
    out.push('\n');
    out
}

/// Renders one histogram summary family with fixed extra labels on every
/// series (quantile lines, `_sum`, `_count`).
pub fn format_summary(name: &str, labels: &[(&str, &str)], h: &crate::HistogramSnapshot) -> String {
    let pname = normalize_metric_name(name);
    let mut label_text = String::new();
    for (k, v) in labels {
        let _ = write!(label_text, "{k}=\"{}\",", escape_label_value(v));
    }
    let mut out = String::new();
    for (q, v) in [
        ("0", h.min),
        ("0.5", h.p50),
        ("0.95", h.p95),
        ("0.99", h.p99),
        ("0.999", h.p999),
        ("1", h.max),
    ] {
        let _ = writeln!(out, "{pname}{{{label_text}quantile=\"{q}\"}} {v}");
    }
    if label_text.is_empty() {
        let _ = writeln!(out, "{pname}_sum {}", h.sum);
        let _ = writeln!(out, "{pname}_count {}", h.count);
    } else {
        let trimmed = label_text.trim_end_matches(',');
        let _ = writeln!(out, "{pname}_sum{{{trimmed}}} {}", h.sum);
        let _ = writeln!(out, "{pname}_count{{{trimmed}}} {}", h.count);
    }
    out
}

/// Renders `snap` (plus the current trace exemplars) as Prometheus text
/// exposition format 0.0.4 — the `/metrics` payload.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);

    for (name, value) in &snap.counters {
        let pname = normalize_metric_name(name);
        let _ = writeln!(out, "# HELP {pname}_total cf-obs counter {name}");
        let _ = writeln!(out, "# TYPE {pname}_total counter");
        let _ = writeln!(out, "{pname}_total {value}");
    }

    for (name, value) in &snap.gauges {
        let pname = normalize_metric_name(name);
        let _ = writeln!(out, "# HELP {pname} cf-obs gauge {name}");
        let _ = writeln!(out, "# TYPE {pname} gauge");
        let _ = writeln!(out, "{pname} {value}");
    }

    for (name, h) in &snap.histograms {
        let pname = normalize_metric_name(name);
        let _ = writeln!(out, "# HELP {pname} cf-obs histogram {name}");
        let _ = writeln!(out, "# TYPE {pname} summary");
        out.push_str(&format_summary(name, &[], h));
    }

    let exemplars = trace::exemplars();
    if !exemplars.is_empty() {
        let _ = writeln!(
            out,
            "# HELP cfsf_trace_exemplar captured trace id standing in for a histogram value octave"
        );
        let _ = writeln!(out, "# TYPE cfsf_trace_exemplar gauge");
        for (metric, octave, ex) in &exemplars {
            let mut line = format!(
                "cfsf_trace_exemplar{{metric=\"{}\",octave=\"{octave}\",trace_id=\"{}\"}} ",
                escape_label_value(metric),
                ex.trace_id
            );
            write_f64(&mut line, ex.value as f64);
            let _ = writeln!(out, "{line}");
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn normalize_replaces_dots_and_invalid_bytes() {
        assert_eq!(
            normalize_metric_name("online.predict_ns"),
            "cfsf_online_predict_ns"
        );
        assert_eq!(
            normalize_metric_name("online.degrade.user_mean"),
            "cfsf_online_degrade_user_mean"
        );
        assert_eq!(normalize_metric_name("weird name-1%"), "cfsf_weird_name_1_");
        assert_eq!(normalize_metric_name("9starts.digit"), "cfsf_9starts_digit");
        // Result must match the Prometheus metric-name grammar.
        let n = normalize_metric_name("a.b-c d/e");
        assert!(n
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
        assert!(!n.starts_with(|c: char| c.is_ascii_digit()));
    }

    #[test]
    fn label_escaping_round_trips() {
        let cases = [
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "new\nline",
            "mix \\\"\n\\n end",
            "",
            "trailing\\",
        ];
        for case in cases {
            let escaped = escape_label_value(case);
            assert!(!escaped.contains('\n'), "escaped must be single-line");
            assert_eq!(
                unescape_label_value(&escaped),
                case,
                "round-trip failed for {case:?} via {escaped:?}"
            );
        }
    }

    #[test]
    fn json_snapshot_keeps_dotted_names() {
        let r = Registry::new();
        r.counter("online.predictions").inc();
        let json = r.snapshot().to_json();
        assert!(json.contains("\"online.predictions\""), "{json}");
        assert!(!json.contains("cfsf_online_predictions"), "{json}");
    }

    #[test]
    fn render_emits_counter_gauge_and_summary_series() {
        let r = Registry::new();
        r.counter("online.predictions").add(42);
        r.gauge("online.cache.hit_ratio_pm").set(937);
        for v in [100u64, 200, 50_000] {
            r.histogram("online.predict_ns").record(v);
        }
        let text = render_prometheus(&r.snapshot());

        assert!(text.contains("# TYPE cfsf_online_predictions_total counter"));
        assert!(text.contains("cfsf_online_predictions_total 42"));
        assert!(text.contains("# TYPE cfsf_online_cache_hit_ratio_pm gauge"));
        assert!(text.contains("cfsf_online_cache_hit_ratio_pm 937"));
        assert!(text.contains("# TYPE cfsf_online_predict_ns summary"));
        assert!(text.contains("cfsf_online_predict_ns{quantile=\"0.99\"}"));
        assert!(text.contains("cfsf_online_predict_ns_count 3"));
        assert!(text.contains("cfsf_online_predict_ns_sum 50300"));
        // No dotted names may leak into the exposition text.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let series = line.split(&[' ', '{'][..]).next().unwrap_or("");
            assert!(!series.contains('.'), "dotted series leaked: {line}");
        }
    }
}
